// Storage packing: "to move information around in storage so as to remove
// any unused spaces between the sets of contiguous locations."
//
// The engine slides every live block of a Compactible heap to the lowest
// free address, producing one hole at the top of storage.  It charges a
// configurable move cost (hardware facility iii: CPU copy loop vs fast
// autonomous storage-to-storage channel) and notifies the owner of each
// relocation so stored descriptors can be updated — the relocatability
// problem the paper opens with.  Heaps holding free storage outside their
// coalesced structure (segregated quick lists) are flushed first via
// Compactible::PrepareForCompaction.

#ifndef SRC_ALLOC_COMPACTION_H_
#define SRC_ALLOC_COMPACTION_H_

#include <functional>

#include "src/alloc/compactible.h"
#include "src/mem/channel.h"
#include "src/mem/core_store.h"

namespace dsa {

class EventTracer;

struct CompactionResult {
  std::size_t blocks_moved{0};
  WordCount words_moved{0};
  Cycles move_cycles{0};      // total transfer cost
  Cycles cpu_cycles{0};       // portion that occupied the CPU (0 for autonomous channel)
  std::size_t holes_before{0};
  std::size_t holes_after{0};
};

class CompactionEngine {
 public:
  // Called for every moved block so owners can update their descriptors
  // (segment tables, codewords) — there must be no other stored absolute
  // addresses, per the paper's relocation discussion.
  using RelocationCallback = std::function<void(PhysicalAddress from, PhysicalAddress to,
                                                WordCount size)>;

  explicit CompactionEngine(PackingChannel channel) : channel_(channel) {}

  // Attaches the shared event tracer; every compaction pass emits one
  // kCompaction record (blocks moved, words moved).
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }

  // Compacts `heap` in place.  When `store` is non-null the block contents
  // are physically moved too (and verified by tests).
  CompactionResult Compact(Compactible* heap, CoreStore* store,
                           const RelocationCallback& on_relocate = nullptr);

  const PackingChannel& channel() const { return channel_; }

 private:
  PackingChannel channel_;
  EventTracer* tracer_{nullptr};
};

}  // namespace dsa

#endif  // SRC_ALLOC_COMPACTION_H_
