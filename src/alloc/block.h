// A contiguous extent of physical working storage.

#ifndef SRC_ALLOC_BLOCK_H_
#define SRC_ALLOC_BLOCK_H_

#include "src/core/types.h"

namespace dsa {

struct Block {
  PhysicalAddress addr;
  WordCount size{0};

  WordCount end() const { return addr.value + size; }

  bool Contains(PhysicalAddress p) const {
    return p.value >= addr.value && p.value < addr.value + size;
  }

  bool operator==(const Block&) const = default;
};

}  // namespace dsa

#endif  // SRC_ALLOC_BLOCK_H_
