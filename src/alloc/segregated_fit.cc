#include "src/alloc/segregated_fit.h"

#include <algorithm>
#include <bit>

#include "src/alloc/cost.h"
#include "src/core/assert.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace dsa {

namespace {

SizeClassMap MakeMap(const SegregatedFitConfig& config) {
  return config.single_class ? SizeClassMap::SingleClass() : SizeClassMap(config.classes);
}

}  // namespace

SegregatedFitAllocator::SegregatedFitAllocator(WordCount capacity, SegregatedFitConfig config)
    : capacity_(capacity),
      config_(config),
      map_(MakeMap(config)),
      watermark_words_(config.park_watermark_words != 0 ? config.park_watermark_words
                                                        : capacity / 64),
      class_free_(map_.size()),
      binmap_((map_.size() + 63) / 64, 0),
      quick_(map_.size()) {
  DSA_ASSERT(capacity_ > 0, "allocator needs nonzero capacity");
  DSA_ASSERT(config_.min_split_remainder >= 1, "min_split_remainder must be >= 1");
  blocks_.emplace(0, Rec{capacity_, 0, State::kFree});
  InsertClassEntry(0, capacity_);
}

bool SegregatedFitAllocator::QuickEligible(std::size_t cls, WordCount size) const {
  return config_.quick_list_capacity > 0 && size <= config_.quick_size_max &&
         cls < quick_.size();
}

std::size_t SegregatedFitAllocator::NextNonEmptyClass(std::size_t from,
                                                      Cycles* cost) const {
  for (std::size_t w = from / 64; w < binmap_.size(); ++w) {
    *cost += alloc_cost::kClassIndex;  // one binmap word read
    std::uint64_t word = binmap_[w];
    if (w == from / 64) {
      word &= ~std::uint64_t{0} << (from % 64);
    }
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    }
  }
  return class_free_.size();
}

SegregatedFitAllocator::BlockMap::iterator SegregatedFitAllocator::SearchClasses(
    std::size_t cls, WordCount size, Cycles* cost) {
  // Own class: blocks here may be smaller than the request, so scan
  // address-ordered first fit.
  *cost += alloc_cost::kProbe;  // inspect the class head
  for (const auto& [addr, block_size] : class_free_[cls]) {
    *cost += alloc_cost::kProbe;
    if (block_size >= size) {
      return blocks_.find(addr);
    }
  }
  // Escalate: every block in a higher class exceeds every size the
  // request's class can hold, so the next nonempty class's first
  // (lowest-addressed) block is guaranteed to fit — and taking the lowest
  // address keeps allocations packed toward the bottom of storage, which
  // preserves the high wilderness as one large hole.
  const std::size_t next = NextNonEmptyClass(cls + 1, cost);
  if (next < class_free_.size()) {
    *cost += alloc_cost::kProbe;
    return blocks_.find(class_free_[next].begin()->first);
  }
  return blocks_.end();
}

WordCount SegregatedFitAllocator::CarveFrom(BlockMap::iterator it, WordCount size,
                                            Cycles* cost) {
  const std::uint64_t addr = it->first;
  const WordCount block_size = it->second.size;
  RemoveFromClassList(addr, block_size);
  *cost += alloc_cost::kCarve;
  WordCount granted = block_size;
  if (block_size - size >= config_.min_split_remainder) {
    // Split: the allocation keeps the low end, the remainder re-joins its
    // class as a fresh free block (no merge possible — it sits inside what
    // was a maximal free extent).
    const WordCount remainder = block_size - size;
    blocks_.emplace_hint(std::next(it), addr + size, Rec{remainder, 0, State::kFree});
    InsertClassEntry(addr + size, remainder);
    *cost += alloc_cost::kCarve;
    granted = size;
  }
  it->second = Rec{granted, size, State::kLive};
  return granted;
}

std::optional<Block> SegregatedFitAllocator::Allocate(WordCount size) {
  DSA_ASSERT(size > 0, "cannot allocate zero words");
  ++stats_.allocations;
  stats_.words_requested += size;
  Cycles cost = alloc_cost::kClassIndex;
  const std::size_t cls = map_.ClassFor(size);

  // Quick-list hit: newest parked block of the class that fits, taken whole
  // (the slack is bounded by the class width and avoids a split + a later
  // merge — the quick list's entire bargain).
  if (QuickEligible(cls, size)) {
    auto& parked = quick_[cls];
    for (std::size_t i = parked.size(); i-- > 0;) {
      cost += alloc_cost::kProbe;
      const auto it = blocks_.find(parked[i]);
      if (it->second.size >= size) {
        const std::uint64_t addr = it->first;
        const WordCount granted = it->second.size;
        parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(i));
        parked_words_ -= granted;
        it->second = Rec{granted, size, State::kLive};
        live_words_ += size;
        reserved_words_ += granted;
        ++quick_stats_.quick_hits;
        stats_.words_allocated += granted;
        stats_.alloc_cycles += cost;
        DSA_TRACE_EMIT(tracer_, EventKind::kAlloc, addr, size);
        return Block{PhysicalAddress{addr}, granted};
      }
    }
  }

  auto it = SearchClasses(cls, size, &cost);
  if (it != blocks_.end() && parked_words_ > 0 &&
      config_.escalation_drain_factor > 0 &&
      it->second.size >= size * config_.escalation_drain_factor) {
    // The only fit is a block far larger than the request — about to carve
    // the wilderness.  Coalesce the parked words first; they may merge into
    // a tighter fit (and the drain was owed eventually anyway).
    cost += DrainQuickLists();
    it = SearchClasses(cls, size, &cost);
  }
  if (it == blocks_.end()) {
    // Class miss: run the deferred coalescing now and retry — parked words
    // merged back may produce a big-enough block.
    DSA_TRACE_EMIT(tracer_, EventKind::kSizeClassMiss, cls, size);
    ++quick_stats_.class_misses;
    if (parked_words_ > 0) {
      cost += DrainQuickLists();
      it = SearchClasses(cls, size, &cost);
    }
  }
  if (it == blocks_.end()) {
    ++stats_.failures;
    stats_.alloc_cycles += cost;
    return std::nullopt;
  }

  const std::uint64_t addr = it->first;
  const WordCount granted = CarveFrom(it, size, &cost);
  live_words_ += size;
  reserved_words_ += granted;
  stats_.words_allocated += granted;
  stats_.alloc_cycles += cost;
  DSA_TRACE_EMIT(tracer_, EventKind::kAlloc, addr, size);
  return Block{PhysicalAddress{addr}, granted};
}

void SegregatedFitAllocator::Free(PhysicalAddress addr) {
  auto it = blocks_.find(addr.value);
  DSA_ASSERT(it != blocks_.end() && it->second.state == State::kLive,
             "free of unknown block");
  const WordCount size = it->second.size;
  const WordCount requested = it->second.requested;
  live_words_ -= requested;
  reserved_words_ -= size;
  ++stats_.frees;
  DSA_TRACE_EMIT(tracer_, EventKind::kFree, addr.value, requested);

  Cycles cost = alloc_cost::kClassIndex;
  const std::size_t cls = map_.ClassFor(size);
  if (QuickEligible(cls, size)) {
    if (quick_[cls].size() >= config_.quick_list_capacity) {
      // Class quick list full: flush it (Dyma's overflow rule), then park.
      cost += DrainClassQuickList(cls);
    }
    it->second = Rec{size, 0, State::kParked};
    quick_[cls].push_back(addr.value);
    parked_words_ += size;
    ++quick_stats_.quick_parks;
    cost += alloc_cost::kProbe;
    if (parked_words_ > watermark_words_) {
      cost += DrainQuickLists();
    }
  } else {
    it->second.requested = 0;
    cost += InsertFree(it);
  }
  stats_.free_cycles += cost;
}

Cycles SegregatedFitAllocator::InsertFree(BlockMap::iterator it) {
  Cycles cost = alloc_cost::kProbe;  // write the block's own tags
  std::uint64_t start = it->first;
  WordCount size = it->second.size;

  // Right neighbour via the successor entry — the boundary-tag header that
  // sits at this block's end word.
  auto right = std::next(it);
  if (right != blocks_.end() && right->second.state == State::kFree &&
      start + size == right->first) {
    size += right->second.size;
    RemoveFromClassList(right->first, right->second.size);
    blocks_.erase(right);
    ++quick_stats_.merges;
    cost += alloc_cost::kMerge;
  }
  // Left neighbour via the predecessor entry — the footer just below this
  // block's first word.
  if (it != blocks_.begin()) {
    auto left = std::prev(it);
    if (left->second.state == State::kFree && left->first + left->second.size == start) {
      size += left->second.size;
      start = left->first;
      RemoveFromClassList(left->first, left->second.size);
      blocks_.erase(it);
      it = left;
      ++quick_stats_.merges;
      cost += alloc_cost::kMerge;
    }
  }
  it->second = Rec{size, 0, State::kFree};
  InsertClassEntry(start, size);
  cost += alloc_cost::kProbe;
  return cost;
}

void SegregatedFitAllocator::InsertClassEntry(std::uint64_t addr, WordCount size) {
  const std::size_t cls = map_.ClassFor(size);
  class_free_[cls].emplace(addr, size);
  binmap_[cls / 64] |= std::uint64_t{1} << (cls % 64);
}

Cycles SegregatedFitAllocator::DrainClassQuickList(std::size_t cls) {
  Cycles cost = 0;
  std::uint64_t blocks = 0;
  WordCount words = 0;
  const std::uint64_t merges_before = quick_stats_.merges;
  for (const std::uint64_t addr : quick_[cls]) {
    auto it = blocks_.find(addr);
    parked_words_ -= it->second.size;
    words += it->second.size;
    ++blocks;
    it->second.requested = 0;
    cost += InsertFree(it);
  }
  quick_[cls].clear();
  if (blocks > 0) {
    ++quick_stats_.drains;
    quick_stats_.drained_blocks += blocks;
    DSA_TRACE_EMIT(tracer_, EventKind::kDeferredCoalesce, blocks, words,
                   quick_stats_.merges - merges_before);
  }
  return cost;
}

Cycles SegregatedFitAllocator::DrainQuickLists() {
  Cycles cost = 0;
  std::uint64_t blocks = 0;
  WordCount words = 0;
  const std::uint64_t merges_before = quick_stats_.merges;
  for (std::size_t cls = 0; cls < quick_.size(); ++cls) {
    for (const std::uint64_t addr : quick_[cls]) {
      auto it = blocks_.find(addr);
      parked_words_ -= it->second.size;
      words += it->second.size;
      ++blocks;
      it->second.requested = 0;
      cost += InsertFree(it);
    }
    quick_[cls].clear();
  }
  if (blocks > 0) {
    ++quick_stats_.drains;
    quick_stats_.drained_blocks += blocks;
    DSA_TRACE_EMIT(tracer_, EventKind::kDeferredCoalesce, blocks, words,
                   quick_stats_.merges - merges_before);
  }
  return cost;
}

void SegregatedFitAllocator::RemoveFromClassList(std::uint64_t addr, WordCount size) {
  const std::size_t cls = map_.ClassFor(size);
  auto& cls_map = class_free_[cls];
  const auto erased = cls_map.erase(addr);
  DSA_ASSERT(erased == 1, "free block missing from its class list");
  if (cls_map.empty()) {
    binmap_[cls / 64] &= ~(std::uint64_t{1} << (cls % 64));
  }
}

std::string SegregatedFitAllocator::name() const {
  std::string n = "segregated-fit";
  if (config_.single_class) {
    n += "/single";
  }
  if (config_.quick_list_capacity == 0) {
    n += "/eager";
  }
  return n;
}

std::vector<WordCount> SegregatedFitAllocator::HoleSizes() const {
  std::vector<WordCount> holes;
  WordCount run = 0;
  for (const auto& [addr, rec] : blocks_) {
    if (rec.state == State::kLive) {
      if (run > 0) {
        holes.push_back(run);
        run = 0;
      }
    } else {
      run += rec.size;
    }
  }
  if (run > 0) {
    holes.push_back(run);
  }
  return holes;
}

std::vector<Block> SegregatedFitAllocator::LiveBlocks() const {
  std::vector<Block> live;
  for (const auto& [addr, rec] : blocks_) {
    if (rec.state == State::kLive) {
      live.push_back(Block{PhysicalAddress{addr}, rec.size});
    }
  }
  return live;
}

void SegregatedFitAllocator::Relocate(PhysicalAddress from, PhysicalAddress to) {
  if (from == to) {
    return;
  }
  auto it = blocks_.find(from.value);
  DSA_ASSERT(it != blocks_.end() && it->second.state == State::kLive,
             "relocate of unknown block");
  DSA_ASSERT(parked_words_ == 0, "relocate with parked blocks (PrepareForCompaction skipped)");
  const WordCount size = it->second.size;
  const WordCount requested = it->second.requested;
  // Free the block eagerly; slide-down packing guarantees the destination
  // now starts a maximal free extent that holds the whole block.
  InsertFree(it);
  auto dst = blocks_.find(to.value);
  DSA_ASSERT(dst != blocks_.end() && dst->second.state == State::kFree &&
                 dst->second.size >= size,
             "relocation destination is not free");
  RemoveFromClassList(to.value, dst->second.size);
  if (dst->second.size > size) {
    const WordCount remainder = dst->second.size - size;
    blocks_.emplace_hint(std::next(dst), to.value + size, Rec{remainder, 0, State::kFree});
    InsertClassEntry(to.value + size, remainder);
  }
  dst->second = Rec{size, requested, State::kLive};
}

std::size_t SegregatedFitAllocator::parked_blocks() const {
  std::size_t count = 0;
  for (const auto& parked : quick_) {
    count += parked.size();
  }
  return count;
}

void SegregatedFitAllocator::PublishMetrics(MetricsRegistry* registry,
                                            const std::string& prefix) const {
  for (std::size_t cls = 0; cls < class_free_.size(); ++cls) {
    const std::string base =
        prefix + ".class" + (cls < 10 ? "0" : "") + std::to_string(cls);
    registry->GetCounter(base + ".free_blocks")->Set(class_free_[cls].size());
    registry->GetCounter(base + ".parked_blocks")->Set(quick_[cls].size());
  }
  registry->GetCounter(prefix + ".quick_hits")->Set(quick_stats_.quick_hits);
  registry->GetCounter(prefix + ".quick_parks")->Set(quick_stats_.quick_parks);
  registry->GetCounter(prefix + ".class_misses")->Set(quick_stats_.class_misses);
  registry->GetCounter(prefix + ".drains")->Set(quick_stats_.drains);
  registry->GetCounter(prefix + ".merges")->Set(quick_stats_.merges);
  registry->GetCounter(prefix + ".parked_words")->Set(parked_words_);
}

bool SegregatedFitAllocator::CheckInvariants(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };

  // 1. The block map tiles [0, capacity) with no gaps or overlaps.
  std::uint64_t cursor = 0;
  WordCount live = 0;
  WordCount reserved = 0;
  WordCount parked = 0;
  WordCount free = 0;
  const Rec* prev = nullptr;
  for (const auto& [addr, rec] : blocks_) {
    if (addr != cursor) {
      return fail("block map gap/overlap at address " + std::to_string(addr));
    }
    if (rec.size == 0) {
      return fail("zero-sized block at " + std::to_string(addr));
    }
    cursor += rec.size;
    switch (rec.state) {
      case State::kLive:
        live += rec.requested;
        reserved += rec.size;
        if (rec.requested == 0 || rec.requested > rec.size) {
          return fail("live block with inconsistent requested size at " +
                      std::to_string(addr));
        }
        break;
      case State::kFree:
        free += rec.size;
        if (prev != nullptr && prev->state == State::kFree) {
          return fail("adjacent free blocks left unmerged at " + std::to_string(addr));
        }
        break;
      case State::kParked:
        parked += rec.size;
        break;
    }
    prev = &blocks_.at(addr);
  }
  if (cursor != capacity_) {
    return fail("block map does not reach capacity");
  }

  // 2. Byte conservation across deferred coalescing.
  if (reserved + free + parked != capacity_) {
    return fail("words not conserved: reserved + free + parked != capacity");
  }
  if (live != live_words_ || reserved != reserved_words_ || parked != parked_words_) {
    return fail("words counters disagree with the block map");
  }

  // 3. Index membership: every free block in exactly its class list, every
  //    parked block on exactly one quick list, and nothing on both.
  std::size_t indexed_free = 0;
  for (std::size_t cls = 0; cls < class_free_.size(); ++cls) {
    const bool bit = (binmap_[cls / 64] >> (cls % 64)) & 1;
    if (bit != !class_free_[cls].empty()) {
      return fail("binmap bit out of sync for class " + std::to_string(cls));
    }
    for (const auto& [addr, size] : class_free_[cls]) {
      const auto it = blocks_.find(addr);
      if (it == blocks_.end() || it->second.state != State::kFree ||
          it->second.size != size || map_.ClassFor(size) != cls) {
        return fail("class list entry out of sync at " + std::to_string(addr));
      }
      ++indexed_free;
    }
  }
  std::size_t indexed_parked = 0;
  for (std::size_t cls = 0; cls < quick_.size(); ++cls) {
    for (const std::uint64_t addr : quick_[cls]) {
      const auto it = blocks_.find(addr);
      if (it == blocks_.end() || it->second.state != State::kParked ||
          map_.ClassFor(it->second.size) != cls) {
        return fail("quick list entry out of sync at " + std::to_string(addr));
      }
      ++indexed_parked;
    }
  }
  std::size_t free_blocks = 0;
  std::size_t parked_count = 0;
  for (const auto& [addr, rec] : blocks_) {
    free_blocks += rec.state == State::kFree;
    parked_count += rec.state == State::kParked;
  }
  if (indexed_free != free_blocks) {
    return fail("free block count disagrees with the class lists");
  }
  if (indexed_parked != parked_count) {
    return fail("parked block count disagrees with the quick lists");
  }
  return true;
}

void SegregatedFitAllocator::SaveState(SnapshotWriter* w) const {
  w->U64(blocks_.size());
  for (const auto& [addr, rec] : blocks_) {
    w->U64(addr);
    w->U64(rec.size);
    w->U64(rec.requested);
    w->U8(static_cast<std::uint8_t>(rec.state));
  }
  w->U64(quick_.size());
  for (const auto& list : quick_) {
    w->U64(list.size());
    for (std::uint64_t addr : list) {
      w->U64(addr);
    }
  }
  w->U64(live_words_);
  w->U64(reserved_words_);
  w->U64(parked_words_);
  SaveAllocatorStats(w, stats_);
  w->U64(quick_stats_.quick_hits);
  w->U64(quick_stats_.quick_parks);
  w->U64(quick_stats_.class_misses);
  w->U64(quick_stats_.drains);
  w->U64(quick_stats_.drained_blocks);
  w->U64(quick_stats_.merges);
}

void SegregatedFitAllocator::LoadState(SnapshotReader* r) {
  const std::uint64_t block_count = r->Count(capacity_);
  BlockMap blocks;
  for (std::uint64_t i = 0; i < block_count && r->ok(); ++i) {
    const std::uint64_t addr = r->U64();
    Rec rec;
    rec.size = r->U64();
    rec.requested = r->U64();
    const std::uint8_t raw_state = r->U8();
    if (!r->ok()) {
      return;
    }
    if (raw_state > static_cast<std::uint8_t>(State::kParked)) {
      r->Fail(SnapshotErrorKind::kBadValue, "unknown block state");
      return;
    }
    rec.state = static_cast<State>(raw_state);
    if (!blocks.emplace(addr, rec).second) {
      r->Fail(SnapshotErrorKind::kBadValue, "duplicate block address");
      return;
    }
  }
  const std::uint64_t class_count = r->U64();
  if (r->ok() && class_count != quick_.size()) {
    r->Fail(SnapshotErrorKind::kBadValue, "size-class count mismatch");
    return;
  }
  std::vector<std::vector<std::uint64_t>> quick(quick_.size());
  for (std::size_t cls = 0; cls < quick.size() && r->ok(); ++cls) {
    const std::uint64_t entries = r->Count(capacity_);
    quick[cls].reserve(entries);
    for (std::uint64_t i = 0; i < entries && r->ok(); ++i) {
      quick[cls].push_back(r->U64());
    }
  }
  const WordCount live_words = r->U64();
  const WordCount reserved_words = r->U64();
  const WordCount parked_words = r->U64();
  AllocatorStats stats;
  LoadAllocatorStats(r, &stats);
  QuickStats quick_stats;
  quick_stats.quick_hits = r->U64();
  quick_stats.quick_parks = r->U64();
  quick_stats.class_misses = r->U64();
  quick_stats.drains = r->U64();
  quick_stats.drained_blocks = r->U64();
  quick_stats.merges = r->U64();
  if (!r->ok()) {
    return;
  }
  blocks_ = std::move(blocks);
  quick_ = std::move(quick);
  live_words_ = live_words;
  reserved_words_ = reserved_words;
  parked_words_ = parked_words;
  stats_ = stats;
  quick_stats_ = quick_stats;
  // Rebuild the derived indexes from the block map, then run the full
  // structural audit; a corrupt payload that survived the checksum (or a
  // hand-edited snapshot) surfaces as a typed error here, never an abort.
  for (auto& list : class_free_) {
    list.clear();
  }
  std::fill(binmap_.begin(), binmap_.end(), 0);
  for (const auto& [addr, rec] : blocks_) {
    if (rec.state == State::kFree) {
      InsertClassEntry(addr, rec.size);
    }
  }
  std::string violation;
  if (!CheckInvariants(&violation)) {
    r->Fail(SnapshotErrorKind::kBadValue, "allocator invariants violated: " + violation);
  }
}

}  // namespace dsa
