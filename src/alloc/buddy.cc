#include "src/alloc/buddy.h"

#include <bit>

#include "src/alloc/cost.h"
#include "src/core/assert.h"
#include "src/obs/tracer.h"

namespace dsa {

BuddyAllocator::BuddyAllocator(WordCount capacity, int min_order)
    : capacity_(capacity), min_order_(min_order) {
  DSA_ASSERT(capacity_ > 0 && std::has_single_bit(capacity_),
             "buddy capacity must be a power of two");
  DSA_ASSERT(min_order_ >= 0 && min_order_ < kMaxOrders, "min_order out of range");
  max_order_ = std::bit_width(capacity_) - 1;
  DSA_ASSERT(min_order_ <= max_order_, "min_order exceeds capacity order");
  free_.resize(static_cast<std::size_t>(max_order_) + 1);
  free_[static_cast<std::size_t>(max_order_)].insert(0);
}

int BuddyAllocator::OrderFor(WordCount size) const {
  DSA_ASSERT(size > 0, "cannot size an empty request");
  int order = std::bit_width(size - 1);  // ceil(log2(size))
  if (order < min_order_) {
    order = min_order_;
  }
  return order;
}

std::optional<Block> BuddyAllocator::Allocate(WordCount size) {
  ++stats_.allocations;
  stats_.words_requested += size;
  const int order = OrderFor(size);
  if (order > max_order_) {
    ++stats_.failures;
    return std::nullopt;
  }
  // Find the smallest order >= `order` with a free block; each level
  // inspected is one probe.
  stats_.alloc_cycles += alloc_cost::kClassIndex;
  int found = -1;
  for (int k = order; k <= max_order_; ++k) {
    stats_.alloc_cycles += alloc_cost::kProbe;
    if (!free_[static_cast<std::size_t>(k)].empty()) {
      found = k;
      break;
    }
  }
  if (found < 0) {
    ++stats_.failures;
    return std::nullopt;
  }
  // Pop the lowest-addressed block and split down to the target order.
  auto& found_set = free_[static_cast<std::size_t>(found)];
  std::uint64_t addr = *found_set.begin();
  found_set.erase(found_set.begin());
  for (int k = found; k > order; --k) {
    const std::uint64_t half = std::uint64_t{1} << (k - 1);
    free_[static_cast<std::size_t>(k - 1)].insert(addr + half);  // upper buddy stays free
    stats_.alloc_cycles += alloc_cost::kCarve;
  }
  const WordCount granted = WordCount{1} << order;
  live_.emplace(addr, LiveBlock{order, size});
  live_words_ += size;
  reserved_words_ += granted;
  stats_.words_allocated += granted;
  DSA_TRACE_EMIT(tracer_, EventKind::kAlloc, addr, granted);
  return Block{PhysicalAddress{addr}, granted};
}

void BuddyAllocator::Free(PhysicalAddress addr) {
  auto it = live_.find(addr.value);
  DSA_ASSERT(it != live_.end(), "buddy free of unknown block");
  int order = it->second.order;
  live_words_ -= it->second.requested;
  reserved_words_ -= WordCount{1} << order;
  live_.erase(it);
  ++stats_.frees;
  DSA_TRACE_EMIT(tracer_, EventKind::kFree, addr.value, WordCount{1} << order);

  // Coalesce with the buddy while it is free, up to the top order.  Each
  // round probes one level's set (tree descent) and merging costs one tag
  // rewrite.
  std::uint64_t block = addr.value;
  while (order < max_order_) {
    auto& level = free_[static_cast<std::size_t>(order)];
    stats_.free_cycles += alloc_cost::TreeDescent(level.size());
    const std::uint64_t buddy = block ^ (std::uint64_t{1} << order);
    auto buddy_it = level.find(buddy);
    if (buddy_it == level.end()) {
      break;
    }
    level.erase(buddy_it);
    stats_.free_cycles += alloc_cost::kMerge;
    block = std::min(block, buddy);
    ++order;
  }
  free_[static_cast<std::size_t>(order)].insert(block);
}

std::vector<WordCount> BuddyAllocator::HoleSizes() const {
  // Report *coalesced* holes: adjacent free buddy blocks that happen to abut
  // (but are not buddies) still form one contiguous hole from the point of
  // view of an external observer measuring fragmentation.
  std::map<std::uint64_t, WordCount> holes;
  for (int k = 0; k <= max_order_; ++k) {
    for (std::uint64_t a : free_[static_cast<std::size_t>(k)]) {
      holes.emplace(a, WordCount{1} << k);
    }
  }
  std::vector<WordCount> sizes;
  std::uint64_t run_start = 0;
  WordCount run_size = 0;
  for (const auto& [a, s] : holes) {
    if (run_size > 0 && run_start + run_size == a) {
      run_size += s;
    } else {
      if (run_size > 0) {
        sizes.push_back(run_size);
      }
      run_start = a;
      run_size = s;
    }
  }
  if (run_size > 0) {
    sizes.push_back(run_size);
  }
  return sizes;
}

std::size_t BuddyAllocator::FreeBlocksAtOrder(int order) const {
  DSA_ASSERT(order >= 0 && order <= max_order_, "order out of range");
  return free_[static_cast<std::size_t>(order)].size();
}

}  // namespace dsa
