#include "src/alloc/placement.h"

#include "src/core/assert.h"

namespace dsa {

std::optional<PhysicalAddress> FirstFitPlacement::Choose(const FreeList& holes, WordCount size) {
  std::uint64_t examined = 0;
  for (const auto& [start, hole_size] : holes) {
    ++examined;
    if (hole_size >= size) {
      CountSearch(examined);
      return PhysicalAddress{start};
    }
  }
  CountSearch(examined);
  return std::nullopt;
}

std::optional<PhysicalAddress> NextFitPlacement::Choose(const FreeList& holes, WordCount size) {
  std::uint64_t examined = 0;
  // Walk from the rover to the end, then wrap to the beginning.
  auto scan = [&](FreeList::const_iterator from,
                  FreeList::const_iterator to) -> std::optional<PhysicalAddress> {
    for (auto it = from; it != to; ++it) {
      ++examined;
      if (it->second >= size) {
        rover_ = it->first + size;  // advance past this allocation
        return PhysicalAddress{it->first};
      }
    }
    return std::nullopt;
  };
  auto start_it = holes.begin();
  while (start_it != holes.end() && start_it->first + start_it->second <= rover_) {
    ++start_it;
  }
  if (auto found = scan(start_it, holes.end())) {
    CountSearch(examined);
    return found;
  }
  if (auto found = scan(holes.begin(), start_it)) {
    CountSearch(examined);
    return found;
  }
  CountSearch(examined);
  return std::nullopt;
}

void NextFitPlacement::NoteFree(PhysicalAddress addr, WordCount size) {
  (void)addr;
  (void)size;
  // The classic roving pointer is left in place on free; coalescing may have
  // removed the hole it pointed into, which the wrap-around scan tolerates.
}

std::optional<PhysicalAddress> BestFitPlacement::Choose(const FreeList& holes, WordCount size) {
  // One probe of the free list's size index (O(log holes)); ties on size
  // resolve to the lowest address, exactly as the former full scan did.
  CountSearch(1);
  return holes.SmallestHoleAtLeast(size);
}

std::optional<PhysicalAddress> WorstFitPlacement::Choose(const FreeList& holes, WordCount size) {
  // One probe of the size index for the largest hole (O(log holes)).
  CountSearch(1);
  return holes.LargestHoleAtLeast(size);
}

std::optional<PhysicalAddress> TwoEndedPlacement::Choose(const FreeList& holes, WordCount size) {
  std::uint64_t examined = 0;
  if (size >= large_threshold_) {
    // Large: first fit from the bottom of storage.
    for (const auto& [start, hole_size] : holes) {
      ++examined;
      if (hole_size >= size) {
        CountSearch(examined);
        return PhysicalAddress{start};
      }
    }
    CountSearch(examined);
    return std::nullopt;
  }
  // Small: carve from the top of the highest-addressed hole that fits, so
  // small blocks accumulate at the high end of storage.
  for (auto it = holes.end(); it != holes.begin();) {
    --it;
    ++examined;
    if (it->second >= size) {
      CountSearch(examined);
      return PhysicalAddress{it->first + it->second - size};
    }
  }
  CountSearch(examined);
  return std::nullopt;
}

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementStrategyKind kind,
                                                     WordCount large_threshold) {
  switch (kind) {
    case PlacementStrategyKind::kFirstFit:
      return std::make_unique<FirstFitPlacement>();
    case PlacementStrategyKind::kNextFit:
      return std::make_unique<NextFitPlacement>();
    case PlacementStrategyKind::kBestFit:
      return std::make_unique<BestFitPlacement>();
    case PlacementStrategyKind::kWorstFit:
      return std::make_unique<WorstFitPlacement>();
    case PlacementStrategyKind::kTwoEnded:
      return std::make_unique<TwoEndedPlacement>(large_threshold);
    case PlacementStrategyKind::kBuddy:
    case PlacementStrategyKind::kRiceChain:
    case PlacementStrategyKind::kSegregatedFit:
    case PlacementStrategyKind::kSlabPool:
      break;  // whole-allocator designs; see MakeAllocator in allocator_factory.h
  }
  DSA_ASSERT(false, "MakePlacementPolicy: kind is a whole-allocator design, not a policy");
  return nullptr;
}

}  // namespace dsa
