// The Rice University computer's storage allocation scheme (Appendix A.4,
// after Iliffe & Jodeit).
//
// Segments are placed sequentially in contiguous blocks.  A block that
// "loses its significance" is designated inactive and threaded onto a chain
// (in the real machine, through its own first word).  Allocation searches
// the chain sequentially for a block of sufficient size; any leftover
// replaces the original block in the chain.  On failure, adjacent inactive
// blocks are combined; if that also fails, a replacement algorithm is
// applied iteratively until a sufficient block is released.

#ifndef SRC_ALLOC_RICE_CHAIN_H_
#define SRC_ALLOC_RICE_CHAIN_H_

#include <functional>
#include <list>
#include <map>

#include "src/alloc/allocator.h"

namespace dsa {

class RiceChainAllocator : public Allocator {
 public:
  // The replacement hook models the paper's "replacement algorithm ...
  // applied iteratively until a block of sufficient size is released": it
  // must either Free() at least one active block (and return true) or give
  // up (return false).  Without a hook, allocation simply fails.
  using ReplacementHook = std::function<bool(RiceChainAllocator* allocator)>;

  explicit RiceChainAllocator(WordCount capacity);

  void set_replacement_hook(ReplacementHook hook) { replacement_hook_ = std::move(hook); }

  std::optional<Block> Allocate(WordCount size) override;
  void Free(PhysicalAddress addr) override;

  std::string name() const override { return "rice-chain"; }
  WordCount capacity() const override { return capacity_; }
  WordCount live_words() const override { return live_words_; }
  WordCount reserved_words() const override { return live_words_; }
  std::vector<WordCount> HoleSizes() const override;
  const AllocatorStats& stats() const override { return stats_; }

  // Live blocks in address order, e.g. for choosing replacement victims.
  std::vector<Block> LiveBlocks() const;

  std::size_t chain_length() const { return chain_.size(); }
  std::uint64_t combines() const { return combines_; }
  std::uint64_t chain_blocks_examined() const { return chain_blocks_examined_; }
  std::uint64_t replacement_invocations() const { return replacement_invocations_; }

 private:
  // Sequential chain search; carves on success.
  std::optional<Block> TryAllocate(WordCount size);
  // "Finding groups of adjacent inactive blocks which can be combined."
  // Returns true if any blocks merged.
  bool CombineAdjacent();

  WordCount capacity_;
  std::list<Block> chain_;  // inactive blocks, most recently freed first
  std::map<std::uint64_t, WordCount> live_;
  WordCount live_words_{0};
  AllocatorStats stats_;
  ReplacementHook replacement_hook_;
  std::uint64_t combines_{0};
  std::uint64_t chain_blocks_examined_{0};
  std::uint64_t replacement_invocations_{0};
};

}  // namespace dsa

#endif  // SRC_ALLOC_RICE_CHAIN_H_
