// The common allocator interface plus shared accounting, so placement
// experiments can sweep heterogeneous designs (policy-parameterised
// free-list allocators, buddy, Rice chain) through one harness.

#ifndef SRC_ALLOC_ALLOCATOR_H_
#define SRC_ALLOC_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/alloc/block.h"
#include "src/core/snapshot.h"
#include "src/core/types.h"
#include "src/obs/event.h"
#include "src/stats/fragmentation.h"

namespace dsa {

class EventTracer;

struct AllocatorStats {
  std::uint64_t allocations{0};
  std::uint64_t failures{0};
  std::uint64_t frees{0};
  WordCount words_requested{0};  // what callers asked for
  WordCount words_allocated{0};  // what the allocator actually handed out (buddy rounds up)
  // Deterministic bookkeeping cost under the shared tariff of
  // src/alloc/cost.h; bench_alloc's latency metric (never wall-clock).
  Cycles alloc_cycles{0};
  Cycles free_cycles{0};

  double MeanAllocCycles() const {
    return allocations == 0
               ? 0.0
               : static_cast<double>(alloc_cycles) / static_cast<double>(allocations);
  }
  double MeanFreeCycles() const {
    return frees == 0 ? 0.0 : static_cast<double>(free_cycles) / static_cast<double>(frees);
  }
};

inline void SaveAllocatorStats(SnapshotWriter* w, const AllocatorStats& stats) {
  w->U64(stats.allocations);
  w->U64(stats.failures);
  w->U64(stats.frees);
  w->U64(stats.words_requested);
  w->U64(stats.words_allocated);
  w->U64(stats.alloc_cycles);
  w->U64(stats.free_cycles);
}

inline void LoadAllocatorStats(SnapshotReader* r, AllocatorStats* stats) {
  AllocatorStats loaded;
  loaded.allocations = r->U64();
  loaded.failures = r->U64();
  loaded.frees = r->U64();
  loaded.words_requested = r->U64();
  loaded.words_allocated = r->U64();
  loaded.alloc_cycles = r->U64();
  loaded.free_cycles = r->U64();
  if (r->ok()) {
    *stats = loaded;
  }
}

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Allocates `size` words.  Returns the block actually reserved (which may
  // be larger than `size` for rounding designs) or nullopt when the request
  // cannot be satisfied.
  virtual std::optional<Block> Allocate(WordCount size) = 0;

  // Releases a previously allocated block by its starting address.
  virtual void Free(PhysicalAddress addr) = 0;

  virtual std::string name() const = 0;
  virtual WordCount capacity() const = 0;

  // Live words as requested by callers (excludes rounding waste).
  virtual WordCount live_words() const = 0;
  // Words currently reserved (includes rounding waste).
  virtual WordCount reserved_words() const = 0;

  // Current free extents, for fragmentation analysis.
  virtual std::vector<WordCount> HoleSizes() const = 0;

  virtual const AllocatorStats& stats() const = 0;

  FragmentationReport Fragmentation() const {
    return ReportFromHoles(capacity(), live_words(), reserved_words(), HoleSizes());
  }

  // Attaches the shared event tracer; concrete allocators emit alloc/free
  // records for every satisfied request (stamped by the tracer's clock —
  // allocation itself is timeless in this model).
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }

 protected:
  EventTracer* tracer_{nullptr};
};

}  // namespace dsa

#endif  // SRC_ALLOC_ALLOCATOR_H_
