// The contract between the compaction engine and a heap it can pack.
//
// Any allocator that tracks live blocks by address and can relocate them
// may be compacted; the engine itself only needs the live-block inventory,
// a relocation primitive, and a pre-pack hook for designs holding free
// storage outside their coalesced structure (the segregated allocator's
// quick lists must drain before packing, or parked words would be slid
// over as if live).

#ifndef SRC_ALLOC_COMPACTIBLE_H_
#define SRC_ALLOC_COMPACTIBLE_H_

#include <cstddef>
#include <vector>

#include "src/alloc/block.h"
#include "src/core/types.h"

namespace dsa {

class Compactible {
 public:
  virtual ~Compactible() = default;

  // Live blocks in ascending address order (the slide-down packing order).
  virtual std::vector<Block> LiveBlocks() const = 0;

  // Atomically relocates the live block at `from` to `to`; the destination
  // must be free.  Owners of stored absolute addresses are notified by the
  // engine's RelocationCallback, not here.
  virtual void Relocate(PhysicalAddress from, PhysicalAddress to) = 0;

  // Called once before packing begins.  Implementations flush any deferred
  // free-storage state (quick lists, pending merges) so every free word is
  // visible as a hole.
  virtual void PrepareForCompaction() {}

  // Current number of free extents (for the engine's before/after report).
  virtual std::size_t HoleCount() const = 0;
};

}  // namespace dsa

#endif  // SRC_ALLOC_COMPACTIBLE_H_
