// Segregated size-class allocator with per-class quick lists and deferred
// coalescing — the variable-unit design that won in practice after the
// paper's survey (dlmalloc's bins, dgd's schunks/lchunks split, the CSAPP
// segregated-list allocators).
//
// Free storage is indexed two ways:
//
//   * segregated free lists — one address-ordered list per size class (see
//     size_class.h), so a request probes its own class first and escalates
//     to larger classes only on a miss.  Any block in a class above the
//     request's class is guaranteed to fit, so escalation consults a binmap
//     (one bit per class, dlmalloc's binmap idiom) and jumps straight to
//     the next nonempty class, taking its lowest-addressed block;
//   * quick lists — small frees are *parked* per class without coalescing.
//     A later request of the same class takes a parked block whole in O(1),
//     skipping both the tree search and the split.  Parked blocks rejoin
//     the coalesced world lazily: when a class search misses (the paper's
//     "combining ... when a request cannot be satisfied", made per-class)
//     or when total parked words cross a watermark.
//
// The heap layout lives in one address-ordered block map covering every
// word of storage (live, free, and parked blocks tile [0, capacity)).
// Neighbouring map entries stand in for the boundary-tag header/footer
// words a real allocator would write at the block edges: from a block's
// position, both neighbours are reachable in constant time, so each
// coalescing merge is O(1) — the tariff charged is alloc_cost::kMerge per
// merge, exactly what tag surgery costs on a real heap.
//
// Determinism: every container iterated is address-ordered (std::map /
// std::set) or an explicitly ordered vector (quick lists, scanned LIFO), so
// identical traces produce identical placements, stats, and events on every
// platform and at any sweep width.

#ifndef SRC_ALLOC_SEGREGATED_FIT_H_
#define SRC_ALLOC_SEGREGATED_FIT_H_

#include <map>
#include <string>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/alloc/compactible.h"
#include "src/alloc/size_class.h"

namespace dsa {

class MetricsRegistry;

struct SegregatedFitConfig {
  SizeClassMapConfig classes{};
  // One class spanning every size (with quick lists off this degenerates to
  // address-ordered first fit — the parity anchor in the property tests).
  bool single_class{false};
  // Parked blocks held per class before that class's quick list flushes;
  // 0 disables quick lists entirely (every free coalesces eagerly).
  std::size_t quick_list_capacity{4};
  // Only blocks of at most this many words park on quick lists; larger
  // frees coalesce eagerly (holding big blocks uncoalesced starves the
  // upper classes and scatters the heap for little reuse benefit).
  WordCount quick_size_max{24};
  // Total parked words that trigger a full drain; 0 means capacity / 64.
  WordCount park_watermark_words{0};
  // Smallest remainder worth splitting off as a new free block; smaller
  // remainders ride along with the allocation as internal waste (unusable
  // slivers on the free lists only scatter the heap).
  WordCount min_split_remainder{12};
  // When the best the search found is at least this many times the
  // request (typically the wilderness block), drain the quick lists and
  // re-search first: parked words may coalesce into a tighter fit and
  // spare the large block.  0 disables the pre-split drain.
  WordCount escalation_drain_factor{3};
};

class SegregatedFitAllocator : public Allocator, public Compactible {
 public:
  explicit SegregatedFitAllocator(WordCount capacity, SegregatedFitConfig config = {});

  std::optional<Block> Allocate(WordCount size) override;
  void Free(PhysicalAddress addr) override;

  std::string name() const override;
  WordCount capacity() const override { return capacity_; }
  WordCount live_words() const override { return live_words_; }
  WordCount reserved_words() const override { return reserved_words_; }
  // Free extents as the storage actually holds them: maximal runs of
  // non-live words.  Parked blocks are free storage (one drain away from
  // any shape a request needs), so adjacent parked/free blocks report as
  // one hole — the coalesced view a failing request would see.
  std::vector<WordCount> HoleSizes() const override;
  const AllocatorStats& stats() const override { return stats_; }

  // Compactible: packing slides live blocks down; quick lists must drain
  // first so every free word is visible as a hole.
  std::vector<Block> LiveBlocks() const override;
  void Relocate(PhysicalAddress from, PhysicalAddress to) override;
  void PrepareForCompaction() override { DrainQuickLists(); }
  std::size_t HoleCount() const override { return HoleSizes().size(); }

  // Flushes every parked block into the coalesced free lists (emits one
  // kDeferredCoalesce event).  Returns the charged bookkeeping cycles.
  Cycles DrainQuickLists();

  struct QuickStats {
    std::uint64_t quick_hits{0};    // allocations served whole from a quick list
    std::uint64_t quick_parks{0};   // frees parked without coalescing
    std::uint64_t class_misses{0};  // searches that found no block in any class
    std::uint64_t drains{0};        // quick-list flushes (miss, watermark, overflow)
    std::uint64_t drained_blocks{0};
    std::uint64_t merges{0};        // boundary-tag merges performed
  };
  const QuickStats& quick_stats() const { return quick_stats_; }

  WordCount parked_words() const { return parked_words_; }
  std::size_t parked_blocks() const;
  const SizeClassMap& size_classes() const { return map_; }

  // Registers/updates per-class occupancy gauges plus the quick-list
  // counters under `<prefix>.` (e.g. "alloc.class03.free_blocks").
  void PublishMetrics(MetricsRegistry* registry, const std::string& prefix) const;

  // Exhaustive structural audit for the property tests: the block map tiles
  // [0, capacity), every free/parked block is indexed exactly once, no
  // block is on both a quick list and a free list, adjacent free blocks do
  // not exist (eager merges ran), and every words counter reconciles.
  bool CheckInvariants(std::string* error = nullptr) const;

  // Checkpoint serialization: the block map (address order), the quick lists
  // (park order — scan order is LIFO over these), and every counter.  The
  // per-class free lists and the binmap are rebuilt on load, after which the
  // full CheckInvariants audit runs and any violation is reported through
  // the reader.  The allocator must be constructed with the same capacity
  // and config the snapshot was taken under.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  enum class State : std::uint8_t { kLive, kFree, kParked };
  struct Rec {
    WordCount size{0};       // extent of the block
    WordCount requested{0};  // caller's request (live blocks only)
    State state{State::kFree};
  };
  using BlockMap = std::map<std::uint64_t, Rec>;

  // First fit within the request's class, first block of the next nonempty
  // higher class (found via the binmap).  Returns blocks_.end() on miss;
  // charges probes to *cost.
  BlockMap::iterator SearchClasses(std::size_t cls, WordCount size, Cycles* cost);
  // Lowest nonempty class index >= from, or class count if none; charges
  // one class-index lookup per binmap word examined.
  std::size_t NextNonEmptyClass(std::size_t from, Cycles* cost) const;
  // Adds a free block to its class list and sets the class's binmap bit.
  void InsertClassEntry(std::uint64_t addr, WordCount size);
  // Carves `size` words from the free block at `it` (splitting when the
  // remainder is worth keeping) and returns the granted extent.
  WordCount CarveFrom(BlockMap::iterator it, WordCount size, Cycles* cost);
  // Flips the block at `it` to free and merges both neighbours; the block
  // must not be on any index.  Returns the charged cycles.
  Cycles InsertFree(BlockMap::iterator it);
  // Flushes one class's quick list (overflow path); no event.
  Cycles DrainClassQuickList(std::size_t cls);
  void RemoveFromClassList(std::uint64_t addr, WordCount size);
  bool QuickEligible(std::size_t cls, WordCount size) const;

  WordCount capacity_;
  SegregatedFitConfig config_;
  SizeClassMap map_;
  WordCount watermark_words_;
  BlockMap blocks_;
  // Per-class (addr -> size) of free blocks; sizes duplicate blocks_ so an
  // in-class scan touches one node per probe.
  std::vector<std::map<std::uint64_t, WordCount>> class_free_;
  // Bit per class, set iff class_free_[cls] is nonempty; escalation skips
  // empty classes in word-sized jumps instead of probing every head.
  std::vector<std::uint64_t> binmap_;
  // Per-class parked block addresses in park order (scanned newest-first).
  std::vector<std::vector<std::uint64_t>> quick_;
  WordCount live_words_{0};
  WordCount reserved_words_{0};
  WordCount parked_words_{0};
  AllocatorStats stats_;
  QuickStats quick_stats_;
};

}  // namespace dsa

#endif  // SRC_ALLOC_SEGREGATED_FIT_H_
