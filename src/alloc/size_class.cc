#include "src/alloc/size_class.h"

#include <bit>
#include <limits>

#include "src/core/assert.h"

namespace dsa {

SizeClassMap::SizeClassMap(SizeClassMapConfig config) {
  DSA_ASSERT(config.linear_step >= 1, "size classes need a nonzero step");
  DSA_ASSERT(config.linear_max >= config.linear_step &&
                 config.linear_max % config.linear_step == 0,
             "linear_max must be a positive multiple of linear_step");
  DSA_ASSERT((config.linear_max & (config.linear_max - 1)) == 0,
             "linear_max must be a power of two (it seeds the geometric region)");
  DSA_ASSERT(config.geometric_max >= config.linear_max &&
                 (config.geometric_max & (config.geometric_max - 1)) == 0,
             "geometric_max must be a power of two at or above the linear region");
  DSA_ASSERT(config.geometric_subdivisions >= 1 &&
                 (config.geometric_subdivisions &
                  (config.geometric_subdivisions - 1)) == 0 &&
                 config.geometric_subdivisions <= config.linear_max,
             "geometric_subdivisions must be a power of two <= linear_max");

  for (WordCount bound = config.linear_step; bound <= config.linear_max;
       bound += config.linear_step) {
    bounds_.push_back(bound);
  }
  for (WordCount base = config.linear_max; base < config.geometric_max;
       base *= 2) {
    const WordCount band = base / config.geometric_subdivisions;
    for (WordCount i = 1; i <= config.geometric_subdivisions; ++i) {
      bounds_.push_back(base + i * band);
    }
  }
  bounds_.push_back(std::numeric_limits<WordCount>::max());

  linear_max_ = config.linear_max;
  linear_classes_ = static_cast<std::size_t>(config.linear_max / config.linear_step);
  linear_max_log2_ = std::bit_width(config.linear_max) - 1;
  subdivisions_ = static_cast<std::size_t>(config.geometric_subdivisions);
  subdivisions_log2_ = std::bit_width(config.geometric_subdivisions) - 1;

  linear_map_.resize(static_cast<std::size_t>(linear_max_) + 1, 0);
  std::size_t cls = 0;
  for (WordCount size = 1; size <= linear_max_; ++size) {
    while (size > bounds_[cls]) {
      ++cls;
    }
    linear_map_[static_cast<std::size_t>(size)] = cls;
  }
}

SizeClassMap::SizeClassMap(std::vector<WordCount> bounds) : bounds_(std::move(bounds)) {}

SizeClassMap SizeClassMap::SingleClass() {
  return SizeClassMap(std::vector<WordCount>{std::numeric_limits<WordCount>::max()});
}

std::size_t SizeClassMap::ClassFor(WordCount size) const {
  DSA_ASSERT(size >= 1, "zero-word requests have no class");
  if (bounds_.size() == 1) {
    return 0;
  }
  if (size <= linear_max_) {
    return linear_map_[static_cast<std::size_t>(size)];
  }
  // size lies in (2^k, 2^(k+1)] with k >= log2(linear_max); that range is
  // cut into `subdivisions_` bands of width 2^k / subdivisions_, so the
  // band index is a shift.  The final class is unbounded.
  const int k = std::bit_width(size - 1) - 1;
  const WordCount base = WordCount{1} << k;
  const std::size_t band =
      static_cast<std::size_t>((size - base - 1) >> (k - subdivisions_log2_));
  const std::size_t cls =
      linear_classes_ +
      static_cast<std::size_t>(k - linear_max_log2_) * subdivisions_ + band;
  return cls < bounds_.size() - 1 ? cls : bounds_.size() - 1;
}

}  // namespace dsa
