#include "src/alloc/compaction.h"

#include "src/obs/tracer.h"

namespace dsa {

CompactionResult CompactionEngine::Compact(Compactible* heap, CoreStore* store,
                                           const RelocationCallback& on_relocate) {
  CompactionResult result;
  result.holes_before = heap->HoleCount();
  heap->PrepareForCompaction();

  WordCount next_free = 0;
  for (const Block& block : heap->LiveBlocks()) {
    const PhysicalAddress from = block.addr;
    const PhysicalAddress to{next_free};
    if (from != to) {
      heap->Relocate(from, to);
      if (store != nullptr) {
        // memmove semantics: slide-down moves may overlap their own tail.
        store->Move(from, to, block.size, /*cycles_per_word_copied=*/1);
      }
      const Cycles cost = channel_.MoveCost(block.size);
      result.move_cycles += cost;
      if (!channel_.autonomous) {
        result.cpu_cycles += cost;
      }
      ++result.blocks_moved;
      result.words_moved += block.size;
      if (on_relocate) {
        on_relocate(from, to, block.size);
      }
    }
    next_free += block.size;
  }

  result.holes_after = heap->HoleCount();
  DSA_TRACE_EMIT(tracer_, EventKind::kCompaction, result.blocks_moved, result.words_moved);
  return result;
}

}  // namespace dsa
