// The size-class map of the segregated-fit allocator family.
//
// Requests are binned into classes: a linear region of `linear_step`-wide
// classes up to `linear_max` (where most requests of a measured size mix
// land), then a geometric region up to `geometric_max` where every
// power-of-two range (2^k, 2^(k+1)] is subdivided into
// `geometric_subdivisions` equal-width classes (dlmalloc-style: narrow
// bins keep the in-class size slack at 1/subdivisions instead of 2x, which
// is what lets a first-fit-in-class scan approximate best fit), then one
// unbounded class for everything larger.  A precomputed index table makes
// class lookup O(1) for the linear region; the geometric region resolves
// with one bit-width computation and one divide by a power of two.  The
// class of a request and the class of a free block use the same function,
// so a block in any class above the request's is guaranteed to fit (its
// size exceeds every size in lower classes).

#ifndef SRC_ALLOC_SIZE_CLASS_H_
#define SRC_ALLOC_SIZE_CLASS_H_

#include <cstddef>
#include <vector>

#include "src/core/types.h"

namespace dsa {

struct SizeClassMapConfig {
  WordCount linear_step{16};       // class width in the linear region
  WordCount linear_max{256};       // last linear upper bound (multiple of step)
  WordCount geometric_max{65536};  // last bounded upper bound (power of two)
  // Classes per power-of-two range above linear_max (power of two,
  // <= linear_max); 4 bounds in-class slack at 25%.
  WordCount geometric_subdivisions{4};
};

class SizeClassMap {
 public:
  explicit SizeClassMap(SizeClassMapConfig config = {});

  // A degenerate map with one class spanning every size.  With it (and
  // eager coalescing) the segregated allocator's in-class first-fit scan
  // degenerates to a plain address-ordered first fit — the parity anchor
  // against VariableAllocator/FirstFitPlacement.
  static SizeClassMap SingleClass();

  // O(1): table lookup in the linear region, bit-width + power-of-two
  // divide above it.
  std::size_t ClassFor(WordCount size) const;

  // Largest size the class holds (inclusive); the last class is unbounded.
  WordCount UpperBound(std::size_t cls) const { return bounds_[cls]; }

  std::size_t size() const { return bounds_.size(); }

 private:
  explicit SizeClassMap(std::vector<WordCount> bounds);

  std::vector<WordCount> bounds_;        // inclusive upper bound per class
  std::vector<std::size_t> linear_map_;  // size -> class for sizes <= linear_max
  WordCount linear_max_{0};
  std::size_t linear_classes_{0};
  int linear_max_log2_{0};
  std::size_t subdivisions_{1};
  int subdivisions_log2_{0};
};

}  // namespace dsa

#endif  // SRC_ALLOC_SIZE_CLASS_H_
