// Placement strategies: "some strategy is needed for deciding where to put
// the information, assuming that a choice of available spaces exists.  The
// question arises only for systems which have a nonuniform unit of storage
// allocation."
//
// A policy chooses where inside the free list to satisfy a request; the
// VariableAllocator then carves that range.  Policies also count how many
// holes they inspected per request, because search cost is one of the
// bookkeeping differences the paper weighs (best-fit vs the two-ended
// strategy "which involves less bookkeeping").

#ifndef SRC_ALLOC_PLACEMENT_H_
#define SRC_ALLOC_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/alloc/free_list.h"
#include "src/core/strategy.h"
#include "src/core/types.h"

namespace dsa {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Returns an address such that [addr, addr+size) lies inside a hole of
  // `holes`, or nullopt when no hole fits.
  virtual std::optional<PhysicalAddress> Choose(const FreeList& holes, WordCount size) = 0;

  // Called after the allocator releases a range, for policies that keep
  // positional state (next-fit's roving pointer).
  virtual void NoteFree(PhysicalAddress addr, WordCount size) {
    (void)addr;
    (void)size;
  }

  virtual PlacementStrategyKind kind() const = 0;
  const char* name() const { return ToString(kind()); }

  // Holes examined across all Choose calls (the search-length metric).
  std::uint64_t holes_examined() const { return holes_examined_; }
  std::uint64_t choices() const { return choices_; }
  double MeanSearchLength() const {
    return choices_ == 0 ? 0.0
                         : static_cast<double>(holes_examined_) / static_cast<double>(choices_);
  }

 protected:
  void CountSearch(std::uint64_t examined) {
    holes_examined_ += examined;
    ++choices_;
  }

 private:
  std::uint64_t holes_examined_{0};
  std::uint64_t choices_{0};
};

// Lowest-addressed hole that fits.
class FirstFitPlacement : public PlacementPolicy {
 public:
  std::optional<PhysicalAddress> Choose(const FreeList& holes, WordCount size) override;
  PlacementStrategyKind kind() const override { return PlacementStrategyKind::kFirstFit; }
};

// First fit starting from a roving pointer that advances past each
// allocation, spreading small remainders across storage.
class NextFitPlacement : public PlacementPolicy {
 public:
  std::optional<PhysicalAddress> Choose(const FreeList& holes, WordCount size) override;
  void NoteFree(PhysicalAddress addr, WordCount size) override;
  PlacementStrategyKind kind() const override { return PlacementStrategyKind::kNextFit; }

 private:
  std::uint64_t rover_{0};
};

// "A common and frequently satisfactory strategy is to place the information
// in the smallest space which is sufficient to contain it."
class BestFitPlacement : public PlacementPolicy {
 public:
  std::optional<PhysicalAddress> Choose(const FreeList& holes, WordCount size) override;
  PlacementStrategyKind kind() const override { return PlacementStrategyKind::kBestFit; }
};

// Largest hole (included as the classic foil for best-fit).
class WorstFitPlacement : public PlacementPolicy {
 public:
  std::optional<PhysicalAddress> Choose(const FreeList& holes, WordCount size) override;
  PlacementStrategyKind kind() const override { return PlacementStrategyKind::kWorstFit; }
};

// "An alternative strategy, which involves less bookkeeping, is to place
// large blocks of information starting at one end of storage and small
// blocks starting at the other end."  Requests of at least `large_threshold`
// words take the lowest fitting hole from the bottom; smaller requests are
// carved from the top of the highest fitting hole.
class TwoEndedPlacement : public PlacementPolicy {
 public:
  explicit TwoEndedPlacement(WordCount large_threshold) : large_threshold_(large_threshold) {}

  std::optional<PhysicalAddress> Choose(const FreeList& holes, WordCount size) override;
  PlacementStrategyKind kind() const override { return PlacementStrategyKind::kTwoEnded; }

  WordCount large_threshold() const { return large_threshold_; }

 private:
  WordCount large_threshold_;
};

// Factory over the enum, for builders and parameterized tests.  `large_threshold`
// applies to kTwoEnded only.
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementStrategyKind kind,
                                                     WordCount large_threshold = 256);

}  // namespace dsa

#endif  // SRC_ALLOC_PLACEMENT_H_
