#include "src/sched/load_control.h"

#include <algorithm>

#include "src/core/assert.h"

namespace dsa {

const char* ToString(LoadControlPolicy policy) {
  switch (policy) {
    case LoadControlPolicy::kFixed:
      return "fixed";
    case LoadControlPolicy::kAdaptiveFaultRate:
      return "adaptive-fault-rate";
    case LoadControlPolicy::kWorkingSetAdmission:
      return "working-set-admission";
  }
  return "?";
}

ThrashingDetector::ThrashingDetector(Cycles window) : window_(window) {
  DSA_ASSERT(window > 0, "detector window must be positive");
  bucket_width_ = window_ / kBuckets;
  if (bucket_width_ == 0) {
    bucket_width_ = 1;
  }
}

void ThrashingDetector::Advance(Cycles now) {
  const std::uint64_t target = now / bucket_width_;
  if (target <= cursor_) {
    return;
  }
  if (target - cursor_ >= kBuckets) {
    // The whole window expired while nothing was recorded.
    buckets_.fill(Bucket{});
    cursor_ = target;
    return;
  }
  while (cursor_ < target) {
    ++cursor_;
    buckets_[static_cast<std::size_t>(cursor_ % kBuckets)] = Bucket{};
  }
}

ThrashingSignals ThrashingDetector::Signals(Cycles now) {
  Advance(now);
  std::uint64_t references = 0;
  std::uint64_t faults = 0;
  Cycles fault_wait = 0;
  Cycles idle_busy = 0;
  double st_active = 0.0;
  double st_waiting = 0.0;
  for (const Bucket& bucket : buckets_) {
    references += bucket.references;
    faults += bucket.faults;
    fault_wait += bucket.wait_cycles;
    idle_busy += bucket.idle_busy_cycles;
    st_active += bucket.space_time_active;
    st_waiting += bucket.space_time_waiting;
  }
  ThrashingSignals signals;
  signals.window_references = references;
  signals.window_faults = faults;
  signals.fault_wait_cycles = fault_wait;
  signals.fault_rate =
      references == 0 ? 0.0 : static_cast<double>(faults) / static_cast<double>(references);
  const double span = static_cast<double>(bucket_width_) * kBuckets;
  signals.idle_busy_ratio = static_cast<double>(idle_busy) / span;
  if (signals.idle_busy_ratio > 1.0) {
    signals.idle_busy_ratio = 1.0;
  }
  const double st_total = st_active + st_waiting;
  signals.waiting_share = st_total == 0.0 ? 0.0 : st_waiting / st_total;
  return signals;
}

WordCount JobWorkingSetEstimator::Estimate(Cycles now) {
  WordCount pages = 0;
  for (auto it = last_touch_.begin(); it != last_touch_.end();) {
    if (now - it->second > tau_) {
      it = last_touch_.erase(it);
    } else {
      ++pages;
      ++it;
    }
  }
  return pages * page_words_;
}

LoadController::LoadController(LoadControlConfig config, WordCount core_words,
                               WordCount page_words)
    : config_(config),
      core_words_(core_words),
      page_words_(page_words),
      detector_(config.window) {
  DSA_ASSERT(config_.min_active >= 1, "min_active must be at least 1");
  DSA_ASSERT(config_.max_active == 0 || config_.max_active >= config_.min_active,
             "max_active below min_active");
  DSA_ASSERT(config_.high_fault_rate >= config_.low_fault_rate,
             "adaptive knee inverted: high_fault_rate below low_fault_rate");
  DSA_ASSERT(config_.working_set_tau > 0, "working_set_tau must be positive");
}

void LoadController::NoteShed(std::size_t active_before, Cycles now) {
  if (assess_pending_ && now - last_reactivation_ <= config_.hysteresis) {
    // The probe failed: the job we just readmitted (or its displacement
    // victim) is being shed right back out.  Probe less often.
    reactivation_backoff_ =
        std::min<std::uint64_t>(reactivation_backoff_ * 2, kMaxReactivationBackoff);
  }
  assess_pending_ = false;
  has_shed_ = true;
  active_at_last_shed_ = active_before;
  NoteDecision(now);
}

bool LoadController::ReactivationGateOpen(std::size_t active, Cycles now) {
  if (assess_pending_ && now - last_reactivation_ > config_.hysteresis) {
    // The last probe survived a full hysteresis period: relax the backoff.
    reactivation_backoff_ = std::max<std::uint64_t>(reactivation_backoff_ / 2, 1);
    assess_pending_ = false;
  }
  if (!has_decision_) {
    return true;
  }
  // Below the level the last shed proved too high, admission is recovery,
  // not probing — the fast shed cadence applies (the signal checks in
  // MayActivate still veto readmission into a hot window).
  const bool below_known_bad = has_shed_ && active + 1 < active_at_last_shed_;
  const Cycles gate =
      below_known_bad ? ShedHysteresis() : config_.hysteresis * reactivation_backoff_;
  return now - last_decision_ >= gate;
}

bool LoadController::MayActivate(std::size_t active, WordCount active_ws_words,
                                 WordCount incoming_ws_words, bool reactivation,
                                 Cycles now) {
  if (active == 0) {
    // Whatever the signals say, an empty active set makes no progress:
    // admission is forced (and the window soon reflects the new truth).
    return true;
  }
  if (!UnderCap(active)) {
    return false;
  }
  switch (config_.policy) {
    case LoadControlPolicy::kFixed:
      return true;
    case LoadControlPolicy::kAdaptiveFaultRate: {
      if (reactivation && !ReactivationGateOpen(active, now)) {
        return false;
      }
      // Cold-start admissions ramp at the shed cadence rather than arriving
      // en masse: each admission gets a beat of observation before the next,
      // so overload is met by signals tripping mid-ramp instead of by a
      // mass admission collapsing into deep thrash first.
      if (!reactivation && !ShedHysteresisElapsed(now)) {
        return false;
      }
      // The fault-rate signal needs statistical support; the collapse signal
      // (CPU idle against a busy channel AND space-time dominated by
      // waiting) is cycle-based and stays readable even when thrashing has
      // throttled the reference stream to a trickle.
      const ThrashingSignals signals = detector_.Signals(now);
      const bool rate_hot = signals.window_references >= config_.min_window_references &&
                            signals.fault_rate > config_.low_fault_rate;
      const bool collapse = signals.idle_busy_ratio >= config_.idle_busy_threshold &&
                            signals.waiting_share >= config_.waiting_share_threshold;
      return !rate_hot && !collapse;
    }
    case LoadControlPolicy::kWorkingSetAdmission: {
      if (reactivation && !HysteresisElapsed(now)) {
        return false;
      }
      // Same cold-start ramp as the adaptive policy — and doubly useful
      // here, since pacing lets each admitted job build a real working-set
      // estimate before the next admission is judged against the sum.
      if (!reactivation && !ShedHysteresisElapsed(now)) {
        return false;
      }
      // A job with no history (or one whose estimate decayed while shed)
      // still needs at least one page to run at all.
      const WordCount incoming =
          incoming_ws_words > page_words_ ? incoming_ws_words : page_words_;
      return active_ws_words + incoming <= core_words_;
    }
  }
  return true;
}

bool LoadController::ShouldShed(std::size_t active, WordCount active_ws_words, Cycles now) {
  if (active <= config_.min_active) {
    return false;
  }
  switch (config_.policy) {
    case LoadControlPolicy::kFixed:
      return false;
    case LoadControlPolicy::kAdaptiveFaultRate: {
      if (!ShedHysteresisElapsed(now)) {
        return false;
      }
      // Shed past the knee (fault rate above the high-water mark, with
      // enough references to trust the ratio) or in outright collapse, where
      // references are too starved to measure a rate but the CPU idles
      // against a saturated channel and space-time is nearly all waiting.
      const ThrashingSignals signals = detector_.Signals(now);
      const bool rate_trip = signals.window_references >= config_.min_window_references &&
                             signals.fault_rate >= config_.high_fault_rate;
      const bool collapse = signals.idle_busy_ratio >= config_.idle_busy_threshold &&
                            signals.waiting_share >= config_.waiting_share_threshold;
      return rate_trip || collapse;
    }
    case LoadControlPolicy::kWorkingSetAdmission:
      return ShedHysteresisElapsed(now) && active_ws_words > core_words_;
  }
  return false;
}

}  // namespace dsa
