// Multi-lane multiprogramming: several scheduler lanes stepping disjoint job
// groups CONCURRENTLY while contending for one shared physical store.
//
// The sweep executor (src/exec/sweep_runner.h) parallelises *across*
// independent simulations; this module pushes threads *inside* one simulated
// installation.  Each LaneGroupSpec is a job group with its own
// MultiprogrammingSimulator (scheduler, pager, frame table, tracer); lanes
// execute the groups concurrently, and every frame any group occupies is
// backed by a block from a shared lock-free ConcurrentFixedHeap, drawn
// through the executing lane's LaneArena (src/exec/concurrent_heap.h).  The
// shared heap is the one genuinely contended structure — the Blelloch & Wei
// style CAS stacks make that contention lock-free.
//
// Determinism argument, in three steps:
//   1. Each group's simulation is a pure function of its spec: the binder
//      hooks return no value into the simulation, so which physical block
//      backs a frame can never influence a scheduling, replacement, or
//      fault decision.
//   2. Group outputs land in spec-indexed slots; merging (registry fold,
//      event-stream merge) happens after the barrier, in group order.
//   3. Therefore lanes=1 and lanes=N produce byte-identical group reports,
//      JSONL streams, and merged tables — the property test_lane_equivalence
//      pins, and bench_concurrent re-checks on every run.
//
// The merged event stream is renamed into one global namespace per group
// (OffsetEventStream: disjoint frame, job, and page ids) so the whole
// concurrent run replays through TraceReplayVerifier as a single system
// with the summed frame count.

#ifndef SRC_SCHED_MULTI_LANE_H_
#define SRC_SCHED_MULTI_LANE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/concurrent_heap.h"
#include "src/obs/event.h"
#include "src/sched/multiprogramming.h"

namespace dsa {

// One job group: an independent MultiprogrammingSimulator configuration plus
// its jobs.  `config.tracer` and `config.backing_binder` are overwritten by
// the runner (each group gets a private tracer and a shared-heap binder).
struct LaneGroupSpec {
  std::string label;
  MultiprogramConfig config;
  std::vector<std::pair<std::string, ReferenceTrace>> jobs;
};

struct MultiLaneConfig {
  // Physical execution width.  Groups are dealt to lanes round-robin by
  // index; 1 = today's serial loop (the golden-parity baseline).
  unsigned lanes{1};
  // Arena tuning, forwarded to every LaneArena.
  std::size_t refill_batch{LaneArena::kDefaultRefillBatch};
  std::size_t high_watermark{LaneArena::kDefaultHighWatermark};
};

struct LaneGroupResult {
  std::string label;
  MultiprogramReport report;
  std::vector<TraceEvent> events;  // group-local entity ids
  std::string events_jsonl;        // the events, serialised
  // The binder's conservation ledger: pure functions of the simulated
  // load/evict sequence, so byte-stable at any lane width (unlike the
  // pool's CAS-retry counts, which are genuine contention measurements).
  std::uint64_t blocks_acquired{0};
  std::uint64_t blocks_released{0};
};

struct MultiLaneOutcome {
  std::vector<LaneGroupResult> groups;  // spec order
  // Group registries folded in spec order and rendered (counters add).
  std::string merged_metrics_table;
  // All group streams renamed into the global namespace and merged by
  // (time, group); replayable by TraceReplayVerifier with `total_frames`.
  std::vector<TraceEvent> merged_events;
  std::size_t total_frames{0};
  std::size_t total_jobs{0};
  // Shared-heap accounting after the run: outstanding must be zero (every
  // binder and arena drained), stats are contention telemetry only.
  std::uint64_t heap_outstanding{0};
  ConcurrentFixedHeap::Stats heap_stats;
};

class MultiLaneSimulator {
 public:
  MultiLaneSimulator(MultiLaneConfig config, std::vector<LaneGroupSpec> groups);

  // Runs every group to completion (concurrently when lanes > 1) and merges.
  MultiLaneOutcome Run();

 private:
  MultiLaneConfig config_;
  std::vector<LaneGroupSpec> groups_;
};

}  // namespace dsa

#endif  // SRC_SCHED_MULTI_LANE_H_
