// Multiprogramming over a shared core: the paper's rescue for demand paging.
//
// "A large space-time product will not overly affect the performance ... of
// a system if the time spent on fetching pages can normally be overlapped
// with the execution of other programs."  The simulator runs N jobs
// round-robin over one CPU, one core store (shared frame pool) and one
// transfer channel; a faulting job blocks while its page moves and the CPU
// switches to the next ready job.  Experiment E5 sweeps N and watches CPU
// utilisation climb while per-job space-time swells.

#ifndef SRC_SCHED_MULTIPROGRAMMING_H_
#define SRC_SCHED_MULTIPROGRAMMING_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/core/types.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"
#include "src/trace/reference.h"
#include "src/vm/space_time.h"

namespace dsa {

// How the CPU picks the next ready job.
enum class SchedulerKind : std::uint8_t {
  // Plain rotation, blind to storage: the paper's warning case — "entirely
  // independent decisions ... as to processor scheduling and storage
  // allocation".
  kRoundRobin,
  // Integrated decisions: among ready jobs, prefer the one with the most
  // resident storage (it can run longest before faulting, and its space-time
  // investment is already paid).
  kResidencyAware,
};

struct MultiprogramConfig {
  SchedulerKind scheduler{SchedulerKind::kRoundRobin};
  // Load control — the integrated decision proper: at most this many jobs
  // are *active* (allowed to hold frames and run) at once; the rest queue
  // until an active job finishes.  0 = unlimited (independent decisions).
  std::size_t max_active{0};
  WordCount core_words{16384};
  WordCount page_words{512};
  StorageLevel backing_level{MakeDrumLevel("drum", 1u << 20, /*word_time=*/4,
                                           /*rotational_delay=*/6000)};
  ReplacementStrategyKind replacement{ReplacementStrategyKind::kLru};
  Cycles cycles_per_reference{1};
  Cycles quantum{5000};             // round-robin slice
  Cycles context_switch_cycles{50};
  // Optional shared event tracer (not owned); attached to the shared pager,
  // and the scheduler emits kScheduleSwitch on every dispatch change.
  EventTracer* tracer{nullptr};
};

struct JobReport {
  JobId id;
  std::string label;
  std::uint64_t references{0};
  std::uint64_t faults{0};
  Cycles finish_time{0};
  Cycles blocked_cycles{0};
  SpaceTime space_time;
};

struct MultiprogramReport {
  std::size_t degree{0};  // number of jobs
  Cycles total_cycles{0};
  Cycles cpu_busy_cycles{0};
  Cycles cpu_idle_cycles{0};
  Cycles context_switch_cycles{0};
  std::uint64_t faults{0};
  std::vector<JobReport> jobs;

  double CpuUtilization() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(cpu_busy_cycles) /
                                   static_cast<double>(total_cycles);
  }
  double TotalSpaceTime() const;
  // Aggregate throughput: references retired per cycle of wall time.
  double Throughput() const;
};

class MultiprogrammingSimulator {
 public:
  explicit MultiprogrammingSimulator(MultiprogramConfig config);

  // Jobs must be added before Run.  Each job's names are private to it.
  JobId AddJob(std::string label, ReferenceTrace trace);

  // Runs all jobs to completion and reports.
  MultiprogramReport Run();

 private:
  enum class JobState : std::uint8_t { kPending, kReady, kBlocked, kDone };

  struct Job {
    std::string label;
    ReferenceTrace trace;
    std::size_t next_ref{0};
    JobState state{JobState::kReady};
    Cycles unblock_time{0};
    JobReport report;
    WordCount resident_words{0};
  };

  // Packs a job-private page number into the shared pager's key space.
  PageId KeyFor(JobId job, Name name) const {
    return PageId{(static_cast<std::uint64_t>(job.value) << 40) |
                  (name.value / config_.page_words)};
  }

  // Accumulates space-time for every unfinished job over [from, to).
  void AccumulateSpaceTime(Cycles from, Cycles to);

  MultiprogramConfig config_;
  std::unique_ptr<BackingStore> backing_;
  std::unique_ptr<TransferChannel> channel_;
  std::unique_ptr<Pager> pager_;
  std::vector<Job> jobs_;
};

}  // namespace dsa

#endif  // SRC_SCHED_MULTIPROGRAMMING_H_
