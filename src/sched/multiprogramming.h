// Multiprogramming over a shared core: the paper's rescue for demand paging.
//
// "A large space-time product will not overly affect the performance ... of
// a system if the time spent on fetching pages can normally be overlapped
// with the execution of other programs."  The simulator runs N jobs
// round-robin over one CPU, one core store (shared frame pool) and one
// transfer channel; a faulting job blocks while its page moves and the CPU
// switches to the next ready job.  Experiment E5 sweeps N and watches CPU
// utilisation climb while per-job space-time swells.
//
// Overload is handled by the load-control layer (src/sched/load_control.h):
// beyond the historical static `max_active` cap, the adaptive policies
// watch windowed thrashing signals and deactivate jobs — releasing every
// frame they hold and requeueing them — until pressure subsides, then
// reactivate them.  bench_overload sweeps the degree past the thrashing
// cliff to show the difference.

#ifndef SRC_SCHED_MULTIPROGRAMMING_H_
#define SRC_SCHED_MULTIPROGRAMMING_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/strategy.h"
#include "src/core/types.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/mem/fault_injection.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"
#include "src/sched/load_control.h"
#include "src/trace/reference.h"
#include "src/vm/space_time.h"

namespace dsa {

struct SystemSpec;

// How the CPU picks the next ready job.
enum class SchedulerKind : std::uint8_t {
  // Plain rotation, blind to storage: the paper's warning case — "entirely
  // independent decisions ... as to processor scheduling and storage
  // allocation".
  kRoundRobin,
  // Integrated decisions: among ready jobs, prefer the one with the most
  // resident storage (it can run longest before faulting, and its space-time
  // investment is already paid).
  kResidencyAware,
};

struct MultiprogramConfig {
  SchedulerKind scheduler{SchedulerKind::kRoundRobin};
  // Legacy load-control knob: at most this many jobs are *active* (allowed
  // to hold frames and run) at once; the rest queue until an active job
  // finishes.  0 = unlimited.  Equivalent to load_control.max_active with
  // the kFixed policy; when both are set they must agree.
  std::size_t max_active{0};
  // The closed-loop controller (policy, thresholds, hysteresis).
  LoadControlConfig load_control{};
  WordCount core_words{16384};
  WordCount page_words{512};
  StorageLevel backing_level{MakeDrumLevel("drum", 1u << 20, /*word_time=*/4,
                                           /*rotational_delay=*/6000)};
  ReplacementStrategyKind replacement{ReplacementStrategyKind::kLru};
  Cycles cycles_per_reference{1};
  Cycles quantum{5000};             // round-robin slice
  Cycles context_switch_cycles{50};
  // Storage fault model for the shared pager (zero rates: fault-free).
  FaultInjectorConfig fault_injection{};
  // Optional shared event tracer (not owned); attached to the shared pager,
  // and the scheduler emits kScheduleSwitch on every dispatch change plus
  // kLoadControl / kJobDeactivate / kJobReactivate for controller activity.
  EventTracer* tracer{nullptr};
  // Optional shared-storage binder (not owned); attached to the shared
  // pager's frame table so this simulator's frames draw physical backing
  // blocks from a concurrent heap shared with other lanes.  Null: frames
  // are purely notional, as before.
  FrameBackingBinder* backing_binder{nullptr};
};

struct JobReport {
  JobId id;
  std::string label;
  std::uint64_t references{0};
  std::uint64_t faults{0};
  Cycles finish_time{0};
  // Cycles the job was unable to run, split by cause:
  //   blocked_cycles — awaiting a page transfer it faulted on (the legacy
  //                    pre-load-control meaning, unchanged: fault waits
  //                    only, so fixed-cap runs report the same values as
  //                    the static-knob engine did);
  //   queued_cycles  — held inactive by load control (awaiting first
  //                    admission, or deactivated by the controller).
  Cycles blocked_cycles{0};
  Cycles queued_cycles{0};
  // Reliability events attributed to this job's accesses (fault injection).
  std::uint64_t retries{0};
  std::uint64_t relocations{0};
  // Times the load controller swapped this job out.
  std::uint64_t deactivations{0};
  SpaceTime space_time;
};

struct MultiprogramReport {
  std::size_t degree{0};  // number of jobs
  Cycles total_cycles{0};
  Cycles cpu_busy_cycles{0};
  Cycles cpu_idle_cycles{0};
  Cycles context_switch_cycles{0};
  std::uint64_t faults{0};
  // Load-control activity.
  std::uint64_t deactivations{0};
  std::uint64_t reactivations{0};
  std::uint64_t controller_decisions{0};
  // Aggregate fault-injection outcome of the shared pager.
  ReliabilityStats reliability;
  std::vector<JobReport> jobs;

  double CpuUtilization() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(cpu_busy_cycles) /
                                   static_cast<double>(total_cycles);
  }
  double TotalSpaceTime() const;
  // Aggregate throughput: references retired per cycle of wall time.
  double Throughput() const;
};

class MultiprogrammingSimulator {
 public:
  explicit MultiprogrammingSimulator(MultiprogramConfig config);

  // Jobs must be added before Run.  Each job's names are private to it.
  JobId AddJob(std::string label, ReferenceTrace trace);

  // Runs all jobs to completion and reports.
  MultiprogramReport Run();

  // How KeyFor packs the owning job into the shared pager's page ids;
  // verifiers reconstruct per-job residency with it (job = page >> shift).
  static constexpr unsigned kJobShift = 40;

 private:
  enum class JobState : std::uint8_t {
    kPending,    // awaiting first admission by load control
    kReady,
    kBlocked,    // awaiting a page transfer
    kSuspended,  // deactivated by load control; holds no frames
    kDone,
  };

  struct Job {
    std::string label;
    ReferenceTrace trace;
    std::size_t next_ref{0};
    JobState state{JobState::kReady};
    Cycles unblock_time{0};
    JobReport report;
    WordCount resident_words{0};
    // Pages currently resident, by pager key; released on deactivation.
    std::unordered_set<std::uint64_t> resident_pages;
  };

  // Packs a job-private page number into the shared pager's key space.
  PageId KeyFor(JobId job, Name name) const {
    return PageId{(static_cast<std::uint64_t>(job.value) << kJobShift) |
                  (name.value / config_.page_words)};
  }

  // Accumulates space-time for every unfinished job over [from, to).
  void AccumulateSpaceTime(Cycles from, Cycles to);

  MultiprogramConfig config_;
  std::unique_ptr<BackingStore> backing_;
  std::unique_ptr<TransferChannel> channel_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<LoadController> controller_;
  std::vector<Job> jobs_;
};

// SystemBuilder bridge: lifts a point of the paper's design space (the
// capacities, timing, backing level, replacement strategy, fault model, and
// tracer of a SystemSpec) into a multiprogramming run with scheduling and
// load control layered on top.  Only the paged families multiprogram — the
// spec's allocation unit must not be kVariableBlocks.
struct MultiprogramSpec {
  SchedulerKind scheduler{SchedulerKind::kRoundRobin};
  LoadControlConfig load_control{};
  Cycles quantum{5000};
  Cycles context_switch_cycles{50};
};

MultiprogramConfig BuildMultiprogramConfig(const SystemSpec& system,
                                           const MultiprogramSpec& spec);

}  // namespace dsa

#endif  // SRC_SCHED_MULTIPROGRAMMING_H_
