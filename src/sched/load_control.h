// Thrashing-aware adaptive load control (the paper's conclusion i, closed
// loop).
//
// "A system in which entirely independent decisions are taken as to
// processor scheduling and storage allocation is unlikely to perform
// acceptably in any but the most undemanding of environments."  The static
// `max_active` knob reproduces the integrated decision as a constant; this
// layer closes the loop.  A ThrashingDetector watches three windowed signals
// over the simulated clock —
//
//   * fault rate          faults per reference inside the window,
//   * idle-busy ratio     CPU idle cycles spent while a page transfer was
//                         pending (the un-overlapped fetch time of Fig. 3),
//   * waiting share       the waiting fraction of the windowed space-time
//                         product (Fig. 3's shaded area growing),
//
// (plus the windowed fault service time, surfaced as a diagnostic), and a
// LoadController turns them, with hysteresis, into deactivate /
// reactivate decisions.  A deactivated job is swapped out completely (every
// frame released) and requeued; it reactivates when pressure subsides.
//
// Three policies:
//
//   * kFixed               the historical static cap: at most max_active
//                          jobs active, never shed (0 = unlimited);
//   * kAdaptiveFaultRate   shed above the fault-rate knee / idle-overlap
//                          alarm, readmit below the low-water mark;
//   * kWorkingSetAdmission Denning-style: admit while the sum of per-job
//                          estimated working sets fits in core, shed when
//                          the estimates overcommit it.
//
// Everything is a pure function of the simulated clock and the recorded
// references, so a fixed seed matrix replays bit-identically — the property
// the chaos soak harness (tests/test_chaos_soak.cc) pins.

#ifndef SRC_SCHED_LOAD_CONTROL_H_
#define SRC_SCHED_LOAD_CONTROL_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/core/snapshot.h"
#include "src/core/types.h"

namespace dsa {

enum class LoadControlPolicy : std::uint8_t {
  kFixed = 0,
  kAdaptiveFaultRate = 1,
  kWorkingSetAdmission = 2,
};

const char* ToString(LoadControlPolicy policy);

struct LoadControlConfig {
  LoadControlPolicy policy{LoadControlPolicy::kFixed};
  // Hard cap on simultaneously active jobs; 0 = uncapped.  For kFixed this
  // is the whole policy (the legacy MultiprogramConfig::max_active knob).
  std::size_t max_active{0};
  // The controller never sheds below this many active jobs (a system with
  // nothing active makes no progress at all).
  std::size_t min_active{1};
  // Detector sliding window over the simulated clock.
  Cycles window{20000};
  // The fault-rate signal is noise until the window holds at least this
  // many references; below it only the cycle-based collapse alarm can gate
  // admission (cold-start warmup admits freely).
  std::uint64_t min_window_references{64};
  // kAdaptiveFaultRate knee: shed when the windowed fault rate crosses
  // `high_fault_rate` (or the collapse alarm fires), readmit only once it
  // falls below `low_fault_rate`.  The gap is the hysteresis band.
  double high_fault_rate{0.05};
  double low_fault_rate{0.02};
  // The collapse alarm: CPU idle against a busy channel AND space-time
  // dominated by waiting.  Both at once means thrashing has throttled the
  // reference stream so far that the fault rate itself has lost support —
  // the conjunction keeps a healthy low-degree warm-up (where either signal
  // alone can spike) from tripping it.
  double idle_busy_threshold{0.60};
  double waiting_share_threshold{0.85};
  // Minimum simulated cycles between controller decisions, so one bad
  // window cannot flap the active set.  Reactivations are further stretched
  // by an exponential backoff (doubling to 64x) every time a readmitted job
  // is shed again within one hysteresis period — the controller stops
  // probing a full system and re-probes only occasionally.  The backoff is
  // bypassed while the active set sits below the level the last shed proved
  // too high, and halves after every probe that survives.
  Cycles hysteresis{10000};
  // Minimum cycles between successive sheds; 0 inherits `hysteresis`.
  // Draining an overcommitted active set needs decisions faster than the
  // cautious readmission cadence, so this is typically much shorter.
  Cycles shed_hysteresis{0};
  // kWorkingSetAdmission estimation window (Denning's tau), measured in
  // each job's own reference clock — process virtual time, not wall clock.
  Cycles working_set_tau{8000};
};

// Windowed signal snapshot, all derived from the detector's buckets.
struct ThrashingSignals {
  double fault_rate{0.0};     // faults per reference in the window
  double idle_busy_ratio{0.0};  // idle-while-transfer-pending / window
  double waiting_share{0.0};  // waiting fraction of windowed space-time
  std::uint64_t window_references{0};
  std::uint64_t window_faults{0};
  // Summed fault service time in the window (cycles the faulting jobs will
  // spend waiting on their transfers).  Diagnostic: fault_wait_cycles /
  // window_faults is the windowed mean page-wait, which grows with channel
  // queueing as the system approaches the cliff even while the fault *rate*
  // still looks flat.
  Cycles fault_wait_cycles{0};
};

// Sliding-window signal accumulator over the simulated clock.  The window
// is split into fixed-width buckets; recording advances the bucket cursor
// and querying sums the live buckets, so both are O(kBuckets) worst case
// and allocation-free.
class ThrashingDetector {
 public:
  explicit ThrashingDetector(Cycles window);

  void RecordReference(Cycles now) {
    Advance(now);
    ++Cur().references;
  }
  void RecordFault(Cycles now, Cycles wait) {
    Advance(now);
    ++Cur().faults;
    Cur().wait_cycles += wait;
  }
  // CPU idle time spent while at least one page transfer was in flight —
  // recorded when the scheduler finds no ready job and sleeps to the next
  // page arrival.
  void RecordIdle(Cycles now, Cycles idle_cycles) {
    Advance(now);
    Cur().idle_busy_cycles += idle_cycles;
  }
  // Space-time deltas (word-cycles) from the simulator's accumulator.
  void RecordSpaceTime(Cycles now, double active_wt, double waiting_wt) {
    Advance(now);
    Cur().space_time_active += active_wt;
    Cur().space_time_waiting += waiting_wt;
  }

  ThrashingSignals Signals(Cycles now);

  Cycles window() const { return window_; }

  // Checkpoint serialization: cursor plus every bucket, in ring order.  The
  // window geometry is construction-time configuration.
  void SaveState(SnapshotWriter* w) const {
    w->U64(cursor_);
    for (const Bucket& bucket : buckets_) {
      w->U64(bucket.references);
      w->U64(bucket.faults);
      w->U64(bucket.wait_cycles);
      w->U64(bucket.idle_busy_cycles);
      w->F64(bucket.space_time_active);
      w->F64(bucket.space_time_waiting);
    }
  }
  void LoadState(SnapshotReader* r) {
    const std::uint64_t cursor = r->U64();
    std::array<Bucket, kBuckets> buckets{};
    for (Bucket& bucket : buckets) {
      bucket.references = r->U64();
      bucket.faults = r->U64();
      bucket.wait_cycles = r->U64();
      bucket.idle_busy_cycles = r->U64();
      bucket.space_time_active = r->F64();
      bucket.space_time_waiting = r->F64();
    }
    if (!r->ok()) {
      return;
    }
    cursor_ = cursor;
    buckets_ = buckets;
  }

 private:
  struct Bucket {
    std::uint64_t references{0};
    std::uint64_t faults{0};
    Cycles wait_cycles{0};
    Cycles idle_busy_cycles{0};
    double space_time_active{0.0};
    double space_time_waiting{0.0};
  };

  static constexpr std::size_t kBuckets = 8;

  void Advance(Cycles now);
  Bucket& Cur() { return buckets_[static_cast<std::size_t>(cursor_ % kBuckets)]; }

  Cycles window_;
  Cycles bucket_width_;
  std::uint64_t cursor_{0};  // absolute index of the bucket being filled
  std::array<Bucket, kBuckets> buckets_{};
};

// Per-job working-set size estimator: |distinct pages touched in the last
// tau ticks of the job's own reference clock| * page_words.  The clock is
// process virtual time (Denning's formulation), not the wall clock: a job
// that is descheduled — or starved by thrashing — stops aging its window,
// so its estimate stays an honest measure of the storage it needs to run.
// A wall-clock tau would decay every estimate to zero exactly when the
// system thrashes, blinding the admission gate at the moment it matters.
class JobWorkingSetEstimator {
 public:
  JobWorkingSetEstimator(Cycles tau, WordCount page_words)
      : tau_(tau), page_words_(page_words) {}

  void Touch(std::uint64_t page_key, Cycles now) { last_touch_[page_key] = now; }

  WordCount Estimate(Cycles now);

  void Clear() { last_touch_.clear(); }

 private:
  Cycles tau_;
  WordCount page_words_;
  std::unordered_map<std::uint64_t, Cycles> last_touch_;
};

// Turns detector signals into admission / shedding decisions.  The caller
// (MultiprogrammingSimulator) owns job state; the controller only answers
// "may one more job activate?" and "must one job be shed?", and stamps its
// hysteresis clock via NoteDecision.
class LoadController {
 public:
  LoadController(LoadControlConfig config, WordCount core_words, WordCount page_words);

  ThrashingDetector& detector() { return detector_; }
  const LoadControlConfig& config() const { return config_; }

  // Whether one more job may join the active set.  `active_ws_words` and
  // `incoming_ws_words` matter only to kWorkingSetAdmission; `reactivation`
  // marks a formerly-shed job rejoining (gated by hysteresis, unlike the
  // initial cold-start admissions).
  bool MayActivate(std::size_t active, WordCount active_ws_words,
                   WordCount incoming_ws_words, bool reactivation, Cycles now);

  // Whether the pressure signals demand deactivating one active job now.
  bool ShouldShed(std::size_t active, WordCount active_ws_words, Cycles now);

  // Stamps the hysteresis clock after an acted-on decision.
  void NoteDecision(Cycles now) {
    has_decision_ = true;
    last_decision_ = now;
  }
  // Typed decision stamps.  NoteShed takes the active count *before* the
  // deactivation: it is the level just proven too high, remembered so
  // readmissions below it can skip the probe backoff.  A shed landing
  // within one hysteresis period of the last reactivation marks that
  // reactivation a failed probe and doubles the backoff.
  void NoteShed(std::size_t active_before, Cycles now);
  void NoteReactivation(Cycles now) {
    last_reactivation_ = now;
    assess_pending_ = true;
    NoteDecision(now);
  }

  // Checkpoint serialization: the detector window plus every hysteresis and
  // probe-backoff register, so a restored controller issues the identical
  // decision sequence.
  void SaveState(SnapshotWriter* w) const {
    detector_.SaveState(w);
    w->Bool(has_decision_);
    w->U64(last_decision_);
    w->U64(reactivation_backoff_);
    w->Bool(assess_pending_);
    w->U64(last_reactivation_);
    w->Bool(has_shed_);
    w->U64(active_at_last_shed_);
  }
  void LoadState(SnapshotReader* r) {
    detector_.LoadState(r);
    const bool has_decision = r->Bool();
    const Cycles last_decision = r->U64();
    const std::uint64_t backoff = r->U64();
    const bool assess_pending = r->Bool();
    const Cycles last_reactivation = r->U64();
    const bool has_shed = r->Bool();
    const std::uint64_t active_at_last_shed = r->U64();
    if (r->ok() && (backoff == 0 || backoff > kMaxReactivationBackoff)) {
      r->Fail(SnapshotErrorKind::kBadValue, "reactivation backoff out of range");
      return;
    }
    if (!r->ok()) {
      return;
    }
    has_decision_ = has_decision;
    last_decision_ = last_decision;
    reactivation_backoff_ = backoff;
    assess_pending_ = assess_pending;
    last_reactivation_ = last_reactivation;
    has_shed_ = has_shed;
    active_at_last_shed_ = active_at_last_shed;
  }

 private:
  bool HysteresisElapsed(Cycles now) const {
    return !has_decision_ || now - last_decision_ >= config_.hysteresis;
  }
  Cycles ShedHysteresis() const {
    return config_.shed_hysteresis == 0 ? config_.hysteresis : config_.shed_hysteresis;
  }
  bool ShedHysteresisElapsed(Cycles now) const {
    return !has_decision_ || now - last_decision_ >= ShedHysteresis();
  }
  // The reactivation gate: plain hysteresis below the last-known-bad active
  // level, hysteresis x backoff otherwise.  Also settles a pending probe
  // assessment (a reactivation that survived a full hysteresis period
  // un-shed halves the backoff).
  bool ReactivationGateOpen(std::size_t active, Cycles now);
  bool UnderCap(std::size_t active) const {
    return config_.max_active == 0 || active < config_.max_active;
  }

  static constexpr std::uint64_t kMaxReactivationBackoff = 64;

  LoadControlConfig config_;
  WordCount core_words_;
  WordCount page_words_;
  ThrashingDetector detector_;
  bool has_decision_{false};
  Cycles last_decision_{0};
  // Probe-backoff state for reactivations.
  std::uint64_t reactivation_backoff_{1};
  bool assess_pending_{false};
  Cycles last_reactivation_{0};
  bool has_shed_{false};
  std::size_t active_at_last_shed_{0};
};

}  // namespace dsa

#endif  // SRC_SCHED_LOAD_CONTROL_H_
