#include "src/sched/multi_lane.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "src/exec/lane_binder.h"
#include "src/exec/thread_pool.h"
#include "src/obs/export.h"
#include "src/obs/merge.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace dsa {

namespace {

std::size_t GroupFrames(const LaneGroupSpec& spec) {
  return static_cast<std::size_t>(spec.config.core_words / spec.config.page_words);
}

// Runs one group on the calling lane, drawing frame backing through `arena`.
LaneGroupResult RunGroup(const LaneGroupSpec& spec, ConcurrentFixedHeap* heap,
                         LaneArena* arena) {
  LaneGroupResult result;
  result.label = spec.label;

  EventTracer tracer(/*capacity=*/0);
  LaneFrameBinder binder(heap, static_cast<std::size_t>(spec.config.page_words));
  binder.SetArena(arena);
  {
    MultiprogramConfig config = spec.config;
    config.tracer = &tracer;
    config.backing_binder = &binder;
    MultiprogrammingSimulator sim(config);
    for (const auto& [label, trace] : spec.jobs) {
      sim.AddJob(label, trace);
    }
    result.report = sim.Run();
  }
  // The simulator is gone; blocks still bound to its end-of-run residency go
  // back through the arena before the ledger is read, so acquired==released
  // is the per-group conservation invariant.
  binder.ReleaseAllFrameBlocks();
  result.blocks_acquired = binder.acquired_total();
  result.blocks_released = binder.released_total();

  result.events = tracer.Snapshot();
  std::ostringstream jsonl;
  WriteEventsJsonl(result.events, &jsonl);
  result.events_jsonl = jsonl.str();
  return result;
}

// The per-group metrics contribution; same names across groups, so the
// spec-order fold adds them into installation-wide totals.
void FillGroupRegistry(const LaneGroupResult& result, MetricsRegistry* registry) {
  registry->GetCounter("mp/total_cycles")->Set(result.report.total_cycles);
  registry->GetCounter("mp/cpu_busy_cycles")->Set(result.report.cpu_busy_cycles);
  registry->GetCounter("mp/faults")->Set(result.report.faults);
  registry->GetCounter("mp/deactivations")->Set(result.report.deactivations);
  registry->GetCounter("mp/reactivations")->Set(result.report.reactivations);
  registry->GetCounter("heap/blocks_acquired")->Set(result.blocks_acquired);
  registry->GetCounter("heap/blocks_released")->Set(result.blocks_released);
}

}  // namespace

MultiLaneSimulator::MultiLaneSimulator(MultiLaneConfig config,
                                       std::vector<LaneGroupSpec> groups)
    : config_(config), groups_(std::move(groups)) {
  DSA_ASSERT(!groups_.empty(), "MultiLaneSimulator: no job groups");
}

MultiLaneOutcome MultiLaneSimulator::Run() {
  const unsigned lanes = std::max(1u, config_.lanes);

  // Size the shared heap for exact worst-case demand (every group fully
  // resident at once) plus the slack lanes can strand in arena caches.
  std::map<std::size_t, std::size_t> demand;  // block words -> frames
  for (const LaneGroupSpec& spec : groups_) {
    demand[static_cast<std::size_t>(spec.config.page_words)] += GroupFrames(spec);
  }
  std::vector<HeapClassSpec> classes;
  classes.reserve(demand.size());
  for (const auto& [words, frames] : demand) {
    classes.push_back(HeapClassSpec{words, frames + lanes * config_.high_watermark});
  }
  ConcurrentFixedHeap heap(classes);

  std::deque<LaneArena> arenas;  // deque: LaneArena is pinned (alignas, no copies)
  for (unsigned lane = 0; lane < lanes; ++lane) {
    arenas.emplace_back(&heap, config_.refill_batch, config_.high_watermark);
  }

  MultiLaneOutcome outcome;
  outcome.groups.resize(groups_.size());

  // Groups are dealt to lanes round-robin by index.  A lane body owns its
  // arena exclusively; results land in spec-indexed slots, so scheduling
  // and completion order are invisible in the output (the SweepRunner
  // discipline, applied one level down).
  ThreadPool pool(lanes);
  pool.ParallelFor(lanes, [&](std::size_t lane) {
    for (std::size_t g = lane; g < groups_.size(); g += lanes) {
      outcome.groups[g] = RunGroup(groups_[g], &heap, &arenas[lane]);
    }
  });

  // Post-barrier: arenas return their cached blocks; the heap must balance.
  for (LaneArena& arena : arenas) {
    arena.Drain();
  }
  outcome.heap_outstanding = heap.OutstandingApprox();
  outcome.heap_stats = heap.stats();

  // Merges, all in spec order.
  MetricsRegistry merged;
  for (const LaneGroupResult& result : outcome.groups) {
    MetricsRegistry group;
    FillGroupRegistry(result, &group);
    MergeRegistryInto(&merged, group);
  }
  outcome.merged_metrics_table = merged.RenderTable();

  std::vector<std::vector<TraceEvent>> renamed;
  renamed.reserve(groups_.size());
  std::uint64_t frame_offset = 0;
  std::uint64_t job_offset = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    StreamOffsets offsets;
    offsets.frame_offset = frame_offset;
    offsets.job_offset = job_offset;
    offsets.page_job_shift = MultiprogrammingSimulator::kJobShift;
    renamed.push_back(OffsetEventStream(outcome.groups[g].events, offsets));
    frame_offset += GroupFrames(groups_[g]);
    job_offset += groups_[g].jobs.size();
  }
  outcome.merged_events = MergeEventStreams(renamed);
  outcome.total_frames = static_cast<std::size_t>(frame_offset);
  outcome.total_jobs = static_cast<std::size_t>(job_offset);
  return outcome;
}

}  // namespace dsa
