#include "src/sched/multiprogramming.h"

#include <algorithm>

#include "src/core/assert.h"
#include "src/obs/tracer.h"
#include "src/paging/fetch.h"

namespace dsa {

double MultiprogramReport::TotalSpaceTime() const {
  double total = 0.0;
  for (const JobReport& job : jobs) {
    total += job.space_time.total();
  }
  return total;
}

double MultiprogramReport::Throughput() const {
  std::uint64_t refs = 0;
  for (const JobReport& job : jobs) {
    refs += job.references;
  }
  return total_cycles == 0 ? 0.0
                           : static_cast<double>(refs) / static_cast<double>(total_cycles);
}

MultiprogrammingSimulator::MultiprogrammingSimulator(MultiprogramConfig config)
    : config_(std::move(config)) {
  backing_ = std::make_unique<BackingStore>(config_.backing_level);
  channel_ = std::make_unique<TransferChannel>();

  PagerConfig pager_config;
  pager_config.page_words = config_.page_words;
  pager_config.frames = static_cast<std::size_t>(config_.core_words / config_.page_words);
  pager_ = std::make_unique<Pager>(pager_config, backing_.get(), channel_.get(),
                                   MakeReplacementPolicy(config_.replacement),
                                   std::make_unique<DemandFetch>(), /*advice=*/nullptr);
  pager_->SetTracer(config_.tracer);

  // Track per-job residency through the pager's load/evict notifications.
  pager_->SetResidencyCallbacks(
      [this](PageId key, FrameId frame) {
        (void)frame;
        const std::size_t job = static_cast<std::size_t>(key.value >> 40);
        if (job < jobs_.size()) {
          jobs_[job].resident_words += config_.page_words;
        }
      },
      [this](PageId key, FrameId frame) {
        (void)frame;
        const std::size_t job = static_cast<std::size_t>(key.value >> 40);
        if (job < jobs_.size()) {
          DSA_ASSERT(jobs_[job].resident_words >= config_.page_words,
                     "residency accounting underflow");
          jobs_[job].resident_words -= config_.page_words;
        }
      });
}

JobId MultiprogrammingSimulator::AddJob(std::string label, ReferenceTrace trace) {
  const JobId id{static_cast<std::uint32_t>(jobs_.size())};
  Job job;
  job.label = std::move(label);
  job.trace = std::move(trace);
  job.report.id = id;
  job.report.label = job.label;
  jobs_.push_back(std::move(job));
  return id;
}

void MultiprogrammingSimulator::AccumulateSpaceTime(Cycles from, Cycles to) {
  if (to <= from) {
    return;
  }
  const Cycles delta = to - from;
  for (Job& job : jobs_) {
    if (job.state == JobState::kDone) {
      continue;
    }
    SpaceTimeAccumulator acc;
    acc.Accumulate(job.resident_words, delta, job.state == JobState::kBlocked);
    job.report.space_time.active += acc.product().active;
    job.report.space_time.waiting += acc.product().waiting;
    if (job.state == JobState::kBlocked) {
      job.report.blocked_cycles += delta;
    }
  }
}

MultiprogramReport MultiprogrammingSimulator::Run() {
  DSA_ASSERT(!jobs_.empty(), "nothing to run");
  MultiprogramReport report;
  report.degree = jobs_.size();

  Cycles now = 0;
  std::size_t rr_cursor = 0;
  std::size_t done = 0;
  std::uint64_t running = kNoJob;  // job on the CPU (kNoJob while idle)

  // Load control: only max_active jobs may hold frames at once.
  const std::size_t active_limit =
      config_.max_active == 0 ? jobs_.size() : config_.max_active;
  std::size_t active = 0;
  std::size_t next_admission = 0;
  auto admit_jobs = [&] {
    while (active < active_limit && next_admission < jobs_.size()) {
      jobs_[next_admission].state = JobState::kReady;
      ++next_admission;
      ++active;
    }
  };
  if (config_.max_active != 0) {
    for (Job& job : jobs_) {
      job.state = JobState::kPending;
    }
  }
  admit_jobs();

  auto unblock_arrivals = [&](Cycles at) {
    for (Job& job : jobs_) {
      if (job.state == JobState::kBlocked && job.unblock_time <= at) {
        job.state = JobState::kReady;
      }
    }
  };

  while (done < jobs_.size()) {
    unblock_arrivals(now);

    // Pick the next ready job.
    std::size_t picked = jobs_.size();
    if (config_.scheduler == SchedulerKind::kRoundRobin) {
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const std::size_t j = (rr_cursor + i) % jobs_.size();
        if (jobs_[j].state == JobState::kReady) {
          picked = j;
          break;
        }
      }
    } else {
      // Residency-aware: the ready job with the most resident words, ties
      // broken round-robin so nothing starves outright.
      WordCount best_resident = 0;
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const std::size_t j = (rr_cursor + i) % jobs_.size();
        if (jobs_[j].state != JobState::kReady) {
          continue;
        }
        if (picked == jobs_.size() || jobs_[j].resident_words > best_resident) {
          picked = j;
          best_resident = jobs_[j].resident_words;
        }
      }
    }

    if (picked == jobs_.size()) {
      // Every unfinished job is awaiting a page: the CPU idles until the
      // earliest arrival — the un-overlapped fetch time the paper warns of.
      Cycles next = 0;
      bool found = false;
      for (const Job& job : jobs_) {
        if (job.state == JobState::kBlocked && (!found || job.unblock_time < next)) {
          next = job.unblock_time;
          found = true;
        }
      }
      DSA_ASSERT(found, "deadlock: no ready and no blocked job");
      if (running != kNoJob) {
        DSA_TRACE_CLOCK(config_.tracer, now);
        DSA_TRACE_EMIT(config_.tracer, EventKind::kScheduleSwitch, running, kNoJob);
        running = kNoJob;
      }
      AccumulateSpaceTime(now, next);
      report.cpu_idle_cycles += next - now;
      now = next;
      continue;
    }

    Job& job = jobs_[picked];
    rr_cursor = picked + 1;
    if (running != picked) {
      DSA_TRACE_CLOCK(config_.tracer, now);
      DSA_TRACE_EMIT(config_.tracer, EventKind::kScheduleSwitch, running, picked);
      running = picked;
    }

    // Context switch onto the job.
    if (config_.context_switch_cycles > 0) {
      AccumulateSpaceTime(now, now + config_.context_switch_cycles);
      now += config_.context_switch_cycles;
      report.context_switch_cycles += config_.context_switch_cycles;
      report.cpu_busy_cycles += config_.context_switch_cycles;
    }

    // Execute until quantum expiry, fault, or completion.
    Cycles slice_used = 0;
    while (slice_used < config_.quantum && job.next_ref < job.trace.refs.size()) {
      const Reference& ref = job.trace.refs[job.next_ref];
      AccumulateSpaceTime(now, now + config_.cycles_per_reference);
      now += config_.cycles_per_reference;
      slice_used += config_.cycles_per_reference;
      report.cpu_busy_cycles += config_.cycles_per_reference;

      const PageAccessResult outcome =
          pager_->Access(KeyFor(job.report.id, ref.name), ref.kind, now);
      ++job.next_ref;
      ++job.report.references;
      if (!outcome.has_value()) {
        // Unrecoverable access: the job paid the stall and moves on without
        // the page (the reference is abandoned).
        ++job.report.faults;
        ++report.faults;
        job.state = JobState::kBlocked;
        job.unblock_time = now + outcome.error().wait_cycles;
        break;
      }
      if (outcome->faulted) {
        ++job.report.faults;
        ++report.faults;
        job.state = JobState::kBlocked;
        job.unblock_time = now + outcome->wait_cycles;
        break;
      }
    }

    if (job.next_ref >= job.trace.refs.size() && job.state != JobState::kBlocked) {
      job.state = JobState::kDone;
      job.report.finish_time = now;
      ++done;
      --active;
      admit_jobs();
      continue;
    }
    if (job.state == JobState::kBlocked && job.next_ref >= job.trace.refs.size()) {
      // The last reference faulted; the job finishes when the page lands.
      AccumulateSpaceTime(now, job.unblock_time);
      job.state = JobState::kDone;
      job.report.finish_time = job.unblock_time;
      ++done;
      --active;
      admit_jobs();
    }
  }

  report.total_cycles = now;
  for (Job& job : jobs_) {
    // A job whose final reference faulted finishes after the CPU went quiet.
    report.total_cycles = std::max(report.total_cycles, job.report.finish_time);
    report.jobs.push_back(job.report);
  }
  report.cpu_idle_cycles += report.total_cycles - now;
  return report;
}

}  // namespace dsa
