#include "src/sched/multiprogramming.h"

#include <algorithm>

#include "src/core/assert.h"
#include "src/obs/tracer.h"
#include "src/paging/fetch.h"
#include "src/vm/system_builder.h"

namespace dsa {

double MultiprogramReport::TotalSpaceTime() const {
  double total = 0.0;
  for (const JobReport& job : jobs) {
    total += job.space_time.total();
  }
  return total;
}

double MultiprogramReport::Throughput() const {
  std::uint64_t refs = 0;
  for (const JobReport& job : jobs) {
    refs += job.references;
  }
  return total_cycles == 0 ? 0.0
                           : static_cast<double>(refs) / static_cast<double>(total_cycles);
}

MultiprogramConfig BuildMultiprogramConfig(const SystemSpec& system,
                                           const MultiprogramSpec& spec) {
  DSA_ASSERT(system.characteristics.unit != AllocationUnit::kVariableBlocks,
             "multiprogramming pages fixed-size units; variable-block (segment = unit) "
             "specs have no shared frame pool to control");
  MultiprogramConfig config;
  config.scheduler = spec.scheduler;
  config.load_control = spec.load_control;
  config.core_words = system.core_words;
  config.page_words = system.page_words;
  config.backing_level = system.backing_level;
  config.replacement = system.replacement;
  config.cycles_per_reference = system.cycles_per_reference;
  config.quantum = spec.quantum;
  config.context_switch_cycles = spec.context_switch_cycles;
  config.fault_injection = system.fault_injection;
  config.tracer = system.tracer;
  return config;
}

MultiprogrammingSimulator::MultiprogrammingSimulator(MultiprogramConfig config)
    : config_(std::move(config)) {
  DSA_ASSERT(config_.page_words > 0, "page_words must be positive");
  DSA_ASSERT(config_.core_words >= config_.page_words,
             "core_words below one page leaves zero frames");
  DSA_ASSERT(config_.quantum > 0, "quantum must be positive");
  DSA_ASSERT(config_.cycles_per_reference > 0, "cycles_per_reference must be positive");
  DSA_ASSERT(config_.max_active == 0 || config_.load_control.max_active == 0 ||
                 config_.max_active == config_.load_control.max_active,
             "max_active and load_control.max_active disagree");

  backing_ = std::make_unique<BackingStore>(config_.backing_level);
  channel_ = std::make_unique<TransferChannel>();
  if (config_.fault_injection.rates.Any() || !config_.fault_injection.level_rates.empty()) {
    injector_ = std::make_unique<FaultInjector>(config_.fault_injection);
  }

  PagerConfig pager_config;
  pager_config.page_words = config_.page_words;
  pager_config.frames = static_cast<std::size_t>(config_.core_words / config_.page_words);
  pager_ = std::make_unique<Pager>(pager_config, backing_.get(), channel_.get(),
                                   MakeReplacementPolicy(config_.replacement),
                                   std::make_unique<DemandFetch>(), /*advice=*/nullptr,
                                   injector_.get());
  pager_->SetTracer(config_.tracer);
  if (config_.backing_binder != nullptr) {
    pager_->SetBackingBinder(config_.backing_binder);
  }

  // Track per-job residency through the pager's load/evict notifications.
  pager_->SetResidencyCallbacks(
      [this](PageId key, FrameId frame) {
        (void)frame;
        const std::size_t job = static_cast<std::size_t>(key.value >> kJobShift);
        if (job < jobs_.size()) {
          jobs_[job].resident_words += config_.page_words;
          jobs_[job].resident_pages.insert(key.value);
        }
      },
      [this](PageId key, FrameId frame) {
        (void)frame;
        const std::size_t job = static_cast<std::size_t>(key.value >> kJobShift);
        if (job < jobs_.size()) {
          DSA_ASSERT(jobs_[job].resident_words >= config_.page_words,
                     "residency accounting underflow");
          jobs_[job].resident_words -= config_.page_words;
          jobs_[job].resident_pages.erase(key.value);
        }
      });
}

JobId MultiprogrammingSimulator::AddJob(std::string label, ReferenceTrace trace) {
  const JobId id{static_cast<std::uint32_t>(jobs_.size())};
  Job job;
  job.label = std::move(label);
  job.trace = std::move(trace);
  job.report.id = id;
  job.report.label = job.label;
  jobs_.push_back(std::move(job));
  return id;
}

void MultiprogrammingSimulator::AccumulateSpaceTime(Cycles from, Cycles to) {
  if (to <= from) {
    return;
  }
  const Cycles delta = to - from;
  double active_wt = 0.0;
  double waiting_wt = 0.0;
  for (Job& job : jobs_) {
    if (job.state == JobState::kDone) {
      continue;
    }
    const double wt =
        static_cast<double>(job.resident_words) * static_cast<double>(delta);
    if (job.state == JobState::kBlocked) {
      job.report.space_time.waiting += wt;
      waiting_wt += wt;
      job.report.blocked_cycles += delta;
    } else {
      job.report.space_time.active += wt;
      active_wt += wt;
      if (job.state == JobState::kPending || job.state == JobState::kSuspended) {
        job.report.queued_cycles += delta;
      }
    }
  }
  if (controller_ != nullptr) {
    controller_->detector().RecordSpaceTime(to, active_wt, waiting_wt);
  }
}

MultiprogramReport MultiprogrammingSimulator::Run() {
  DSA_ASSERT(!jobs_.empty(), "nothing to run");
  DSA_ASSERT(config_.max_active <= jobs_.size(),
             "max_active exceeds the multiprogramming degree");
  DSA_ASSERT(config_.load_control.max_active <= jobs_.size(),
             "load_control.max_active exceeds the multiprogramming degree");

  MultiprogramReport report;
  report.degree = jobs_.size();

  // Resolve the effective load-control configuration (the legacy knob maps
  // onto the fixed policy's cap).
  LoadControlConfig lc = config_.load_control;
  if (lc.max_active == 0) {
    lc.max_active = config_.max_active;
  }
  controller_ = std::make_unique<LoadController>(lc, config_.core_words, config_.page_words);
  // Whether admission is gated at all; ungated runs never consult the
  // controller and behave bit-identically to the pre-load-control engine.
  const bool gated = lc.policy != LoadControlPolicy::kFixed || lc.max_active != 0;
  const bool fixed = lc.policy == LoadControlPolicy::kFixed;
  const bool track_ws = lc.policy == LoadControlPolicy::kWorkingSetAdmission;
  ThrashingDetector& detector = controller_->detector();

  std::vector<JobWorkingSetEstimator> ws_estimates;
  if (track_ws) {
    ws_estimates.assign(jobs_.size(),
                        JobWorkingSetEstimator(lc.working_set_tau, config_.page_words));
  }
  // Working-set estimates run on each job's own reference clock (process
  // virtual time), so a suspended or starved job's estimate does not decay
  // — see JobWorkingSetEstimator.
  auto job_ws_words = [&](std::size_t j) -> WordCount {
    return ws_estimates[j].Estimate(jobs_[j].report.references);
  };
  auto active_ws_words = [&]() -> WordCount {
    if (!track_ws) {
      return 0;
    }
    WordCount sum = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobState s = jobs_[j].state;
      if (s == JobState::kReady || s == JobState::kBlocked) {
        sum += job_ws_words(j);
      }
    }
    return sum;
  };
  auto fault_rate_ppm = [&](Cycles at) -> std::uint64_t {
    return static_cast<std::uint64_t>(detector.Signals(at).fault_rate * 1e6);
  };

  Cycles now = 0;
  std::size_t rr_cursor = 0;
  std::size_t done = 0;
  std::uint64_t running = kNoJob;  // job on the CPU (kNoJob while idle)

  std::size_t active = 0;                // jobs in {kReady, kBlocked}
  std::size_t next_admission = 0;        // next never-admitted job
  std::deque<std::size_t> suspended;     // deactivated jobs, FIFO reactivation
  if (gated) {
    for (Job& job : jobs_) {
      job.state = JobState::kPending;
    }
  } else {
    active = jobs_.size();
    next_admission = jobs_.size();
  }

  // Admits queued work while the controller allows it: deactivated jobs
  // reactivate first (FIFO), then never-run jobs in arrival order.
  auto try_admissions = [&](Cycles at) {
    if (!gated) {
      return;
    }
    for (;;) {
      std::size_t candidate = jobs_.size();
      bool reactivation = false;
      if (!suspended.empty()) {
        candidate = suspended.front();
        reactivation = true;
      } else if (next_admission < jobs_.size()) {
        candidate = next_admission;
      } else {
        break;
      }
      const WordCount incoming = track_ws ? job_ws_words(candidate) : 0;
      if (!controller_->MayActivate(active, active_ws_words(), incoming, reactivation,
                                    at)) {
        break;
      }
      Job& job = jobs_[candidate];
      if (!fixed) {
        DSA_TRACE_CLOCK(config_.tracer, at);
        DSA_TRACE_EMIT(config_.tracer, EventKind::kLoadControl,
                       static_cast<std::uint64_t>(LoadControlDecision::kAdmit), candidate,
                       fault_rate_ppm(at));
        ++report.controller_decisions;
      }
      if (reactivation) {
        suspended.pop_front();
        DSA_ASSERT(job.state == JobState::kSuspended,
                   "suspended deque holds a job in a non-suspended state");
        job.state = job.unblock_time > at ? JobState::kBlocked : JobState::kReady;
        ++report.reactivations;
        DSA_TRACE_EMIT(config_.tracer, EventKind::kJobReactivate, candidate);
        controller_->NoteReactivation(at);
      } else {
        job.state = JobState::kReady;
        ++next_admission;
        if (!fixed) {
          // Stamp the cadence clock: cold-start admissions ramp one beat
          // apart instead of arriving all at once (see LoadController).
          controller_->NoteDecision(at);
        }
      }
      ++active;
    }
  };

  // Swaps one active job out: every resident page is released (writing back
  // dirty ones), the job requeues, and it holds zero frames until the
  // controller readmits it — the invariant the TraceReplayVerifier checks.
  auto deactivate = [&](std::size_t victim, Cycles at) {
    Job& job = jobs_[victim];
    DSA_ASSERT(job.next_ref < job.trace.refs.size(),
               "shed victim has no references left (it is completing, not thrashing)");
    const std::size_t active_before = active;
    DSA_TRACE_CLOCK(config_.tracer, at);
    DSA_TRACE_EMIT(config_.tracer, EventKind::kLoadControl,
                   static_cast<std::uint64_t>(LoadControlDecision::kShed), victim,
                   fault_rate_ppm(at));
    const std::vector<std::uint64_t> pages(job.resident_pages.begin(),
                                           job.resident_pages.end());
    for (const std::uint64_t page : pages) {
      pager_->Release(PageId{page}, at);
    }
    DSA_ASSERT(job.resident_pages.empty() && job.resident_words == 0,
               "deactivated job still holds frames");
    job.state = JobState::kSuspended;
    suspended.push_back(victim);
    --active;
    ++job.report.deactivations;
    ++report.deactivations;
    ++report.controller_decisions;
    DSA_TRACE_EMIT(config_.tracer, EventKind::kJobDeactivate, victim, pages.size());
    controller_->NoteShed(active_before, at);
  };

  // The shed victim: the active job with the least resident storage (its
  // space-time investment is the smallest), ties to the lowest id.  A job
  // with no references left is exempt: it is blocked on its *final* fault
  // and completes the moment the page lands — suspending it instead would
  // collide with the post-slice completion check and count it done twice.
  auto pick_victim = [&]() -> std::size_t {
    std::size_t victim = jobs_.size();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobState s = jobs_[j].state;
      if (s != JobState::kReady && s != JobState::kBlocked) {
        continue;
      }
      if (jobs_[j].next_ref >= jobs_[j].trace.refs.size()) {
        continue;
      }
      if (victim == jobs_.size() || jobs_[j].resident_words < jobs_[victim].resident_words) {
        victim = j;
      }
    }
    return victim;
  };

  auto unblock_arrivals = [&](Cycles at) {
    for (Job& job : jobs_) {
      if (job.state == JobState::kBlocked && job.unblock_time <= at) {
        job.state = JobState::kReady;
      }
    }
  };

  while (done < jobs_.size()) {
    unblock_arrivals(now);
    try_admissions(now);

    // Pick the next ready job.
    std::size_t picked = jobs_.size();
    if (config_.scheduler == SchedulerKind::kRoundRobin) {
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const std::size_t j = (rr_cursor + i) % jobs_.size();
        if (jobs_[j].state == JobState::kReady) {
          picked = j;
          break;
        }
      }
    } else {
      // Residency-aware: the ready job with the most resident words, ties
      // broken round-robin so nothing starves outright.
      WordCount best_resident = 0;
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const std::size_t j = (rr_cursor + i) % jobs_.size();
        if (jobs_[j].state != JobState::kReady) {
          continue;
        }
        if (picked == jobs_.size() || jobs_[j].resident_words > best_resident) {
          picked = j;
          best_resident = jobs_[j].resident_words;
        }
      }
    }

    if (picked == jobs_.size()) {
      // Every unfinished job is awaiting a page: the CPU idles until the
      // earliest arrival — the un-overlapped fetch time the paper warns of.
      Cycles next = 0;
      bool found = false;
      for (const Job& job : jobs_) {
        if (job.state == JobState::kBlocked && (!found || job.unblock_time < next)) {
          next = job.unblock_time;
          found = true;
        }
      }
      DSA_ASSERT(found, "deadlock: no ready and no blocked job");
      if (running != kNoJob) {
        DSA_TRACE_CLOCK(config_.tracer, now);
        DSA_TRACE_EMIT(config_.tracer, EventKind::kScheduleSwitch, running, kNoJob);
        running = kNoJob;
      }
      AccumulateSpaceTime(now, next);
      report.cpu_idle_cycles += next - now;
      // The channel is busy with the very transfers being awaited: this is
      // the idle-while-transfer-pending signal of the thrashing detector.
      detector.RecordIdle(next, next - now);
      now = next;
      continue;
    }

    Job& job = jobs_[picked];
    rr_cursor = picked + 1;
    if (running != picked) {
      DSA_TRACE_CLOCK(config_.tracer, now);
      DSA_TRACE_EMIT(config_.tracer, EventKind::kScheduleSwitch, running, picked);
      running = picked;
    }

    // Context switch onto the job.
    if (config_.context_switch_cycles > 0) {
      AccumulateSpaceTime(now, now + config_.context_switch_cycles);
      now += config_.context_switch_cycles;
      report.context_switch_cycles += config_.context_switch_cycles;
      report.cpu_busy_cycles += config_.context_switch_cycles;
    }

    // Execute until quantum expiry, fault, or completion.
    Cycles slice_used = 0;
    while (slice_used < config_.quantum && job.next_ref < job.trace.refs.size()) {
      const Reference& ref = job.trace.refs[job.next_ref];
      AccumulateSpaceTime(now, now + config_.cycles_per_reference);
      now += config_.cycles_per_reference;
      slice_used += config_.cycles_per_reference;
      report.cpu_busy_cycles += config_.cycles_per_reference;
      detector.RecordReference(now);

      const PageId key = KeyFor(job.report.id, ref.name);
      if (track_ws) {
        ws_estimates[picked].Touch(key.value, job.report.references);
      }
      const ReliabilityStats& rel = pager_->stats().reliability;
      const std::uint64_t retries_before = rel.retries;
      const std::uint64_t relocations_before = rel.relocations + rel.spill_relocations;
      const PageAccessResult outcome = pager_->Access(key, ref.kind, now);
      job.report.retries += rel.retries - retries_before;
      job.report.relocations += rel.relocations + rel.spill_relocations - relocations_before;
      ++job.next_ref;
      ++job.report.references;
      bool faulted = false;
      if (!outcome.has_value()) {
        // Unrecoverable access: the job paid the stall and moves on without
        // the page (the reference is abandoned).
        faulted = true;
        job.unblock_time = now + outcome.error().wait_cycles;
      } else if (outcome->faulted) {
        faulted = true;
        job.unblock_time = now + outcome->wait_cycles;
      }
      if (faulted) {
        ++job.report.faults;
        ++report.faults;
        job.state = JobState::kBlocked;
        detector.RecordFault(now, job.unblock_time - now);
        // The decision point of the closed loop: under rising pressure the
        // controller swaps out the cheapest active job, with hysteresis.
        if (gated && controller_->ShouldShed(active, active_ws_words(), now)) {
          const std::size_t victim = pick_victim();
          if (victim != jobs_.size()) {
            deactivate(victim, now);
          }
        }
        break;
      }
    }

    // Post-slice completion: the job is either still running (kReady) or
    // awaiting its final fault (kBlocked) — pick_victim never sheds a job
    // out of its last reference, so kSuspended cannot reach here.
    if (job.next_ref >= job.trace.refs.size() && job.state == JobState::kReady) {
      job.state = JobState::kDone;
      job.report.finish_time = now;
      ++done;
      --active;
      continue;
    }
    if (job.state == JobState::kBlocked && job.next_ref >= job.trace.refs.size()) {
      // The last reference faulted; the job finishes when the page lands.
      AccumulateSpaceTime(now, job.unblock_time);
      job.state = JobState::kDone;
      job.report.finish_time = job.unblock_time;
      ++done;
      --active;
    }
  }

  report.total_cycles = now;
  report.reliability = pager_->stats().reliability;
  for (Job& job : jobs_) {
    // A job whose final reference faulted finishes after the CPU went quiet.
    report.total_cycles = std::max(report.total_cycles, job.report.finish_time);
    report.jobs.push_back(job.report);
  }
  report.cpu_idle_cycles += report.total_cycles - now;
  return report;
}

}  // namespace dsa
