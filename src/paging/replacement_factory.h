// Factory over ReplacementStrategyKind, used by SystemBuilder, the machine
// models, and the parameterized test/bench sweeps.

#ifndef SRC_PAGING_REPLACEMENT_FACTORY_H_
#define SRC_PAGING_REPLACEMENT_FACTORY_H_

#include <memory>
#include <vector>

#include "src/paging/replacement.h"

namespace dsa {

struct ReplacementOptions {
  std::uint64_t seed{1234};          // random / M44 tie-break
  Cycles atlas_margin{0};            // ATLAS abandonment tolerance
  Cycles working_set_tau{100000};    // working-set window
  // Required for kOpt: the full future page reference string.
  std::vector<PageId> page_string;
};

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(ReplacementStrategyKind kind,
                                                         ReplacementOptions options = {});

// The online policies (everything except OPT), for sweeps.
std::vector<ReplacementStrategyKind> OnlineReplacementKinds();

}  // namespace dsa

#endif  // SRC_PAGING_REPLACEMENT_FACTORY_H_
