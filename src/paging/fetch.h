// Fetch strategies: "information can be fetched before it is needed, at the
// moment it is needed (e.g. 'demand paging'), or even later at the
// convenience of the system."

#ifndef SRC_PAGING_FETCH_H_
#define SRC_PAGING_FETCH_H_

#include <vector>

#include "src/core/strategy.h"
#include "src/core/types.h"
#include "src/paging/advice.h"

namespace dsa {

class FetchPolicy {
 public:
  virtual ~FetchPolicy() = default;

  // Pages to bring in when `demanded` has faulted.  The demanded page is
  // implicit and always fetched; the returned list holds *extra* pages.
  // The pager filters out pages already resident and respects frame
  // availability (a prefetch never forces a replacement).
  virtual std::vector<PageId> ExtraPages(PageId demanded, Cycles now) = 0;

  virtual FetchStrategyKind kind() const = 0;
  const char* name() const { return ToString(kind()); }
};

// Pure demand fetch: nothing beyond the faulting page.
class DemandFetch : public FetchPolicy {
 public:
  std::vector<PageId> ExtraPages(PageId demanded, Cycles now) override {
    (void)demanded;
    (void)now;
    return {};
  }
  FetchStrategyKind kind() const override { return FetchStrategyKind::kDemand; }
};

// Spatial lookahead: also fetch the next `window` consecutive pages, within
// `page_count`.  Pays off on sequential workloads, wastes residency on
// scattered ones — the trade experiment E5 sweeps.
class PrefetchFetch : public FetchPolicy {
 public:
  PrefetchFetch(std::size_t window, std::uint64_t page_count)
      : window_(window), page_count_(page_count) {}

  std::vector<PageId> ExtraPages(PageId demanded, Cycles now) override;
  FetchStrategyKind kind() const override { return FetchStrategyKind::kPrefetch; }

 private:
  std::size_t window_;
  std::uint64_t page_count_;
};

// Directive-driven fetch: brings in pages the program advised it will need
// (the M44 special instruction / MULTICS directive), up to `budget` per
// fault.  The registry is shared with the pager.
class AdvisedFetch : public FetchPolicy {
 public:
  AdvisedFetch(AdviceRegistry* advice, std::size_t budget)
      : advice_(advice), budget_(budget) {}

  std::vector<PageId> ExtraPages(PageId demanded, Cycles now) override;
  FetchStrategyKind kind() const override { return FetchStrategyKind::kAdvised; }

 private:
  AdviceRegistry* advice_;
  std::size_t budget_;
};

}  // namespace dsa

#endif  // SRC_PAGING_FETCH_H_
