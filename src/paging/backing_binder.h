// The seam between the frame table and a shared physical backing store.
//
// A FrameTable models WHICH pages are resident; it never cared what physical
// storage backs a frame.  Concurrent multi-lane runs need exactly that
// binding: every simulated frame table draws its frames' backing blocks from
// one shared lock-free heap (src/exec/concurrent_heap), so lanes genuinely
// contend for storage.  This interface is the paging-side half of that seam —
// pure, core-types-only, so dsa_paging does not depend on the exec layer.
//
// Contract: the table calls AcquireFrameBlock(f) exactly when frame f
// transitions vacant→occupied (Load) and ReleaseFrameBlock(f) on
// occupied→vacant (Evict); after a successful LoadState it rebinds from
// scratch (ReleaseAll + Acquire per occupied frame).  A binder therefore
// holds exactly one block per occupied frame — the conservation invariant
// the concurrent tests pin.  Acquire must not fail: the caller sizes the
// shared heap for worst-case demand plus arena slack before attaching.
//
// Block identity is invisible to the simulation (no return value flows back
// into any simulated decision), which is what keeps multi-lane output
// byte-identical at every lane width.

#ifndef SRC_PAGING_BACKING_BINDER_H_
#define SRC_PAGING_BACKING_BINDER_H_

#include "src/core/types.h"

namespace dsa {

class FrameBackingBinder {
 public:
  virtual ~FrameBackingBinder() = default;

  // Frame `frame` became occupied; bind a physical block to it.
  virtual void AcquireFrameBlock(FrameId frame) = 0;

  // Frame `frame` became vacant; return its block.
  virtual void ReleaseFrameBlock(FrameId frame) = 0;

  // Drop every binding (table state replaced wholesale, e.g. LoadState or
  // teardown of the owning simulation).
  virtual void ReleaseAllFrameBlocks() = 0;
};

}  // namespace dsa

#endif  // SRC_PAGING_BACKING_BINDER_H_
