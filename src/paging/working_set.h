// Working-set replacement (extension).
//
// The paper predates Denning's 1968 formulation but argues exactly its
// premise: "a sufficient reserve of programs can be kept in working storage"
// only when each holds the storage it is actively using.  This policy evicts
// pages outside the working-set window tau, falling back to LRU when every
// resident page is inside the window.  Included as the forward-looking
// comparison point in experiment E4.

#ifndef SRC_PAGING_WORKING_SET_H_
#define SRC_PAGING_WORKING_SET_H_

#include "src/paging/replacement.h"

namespace dsa {

class WorkingSetReplacement : public ReplacementPolicy {
 public:
  explicit WorkingSetReplacement(Cycles tau) : tau_(tau) {}

  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;

  // The defining working-set behaviour: every page idle longer than tau has
  // left the working set and is released, shrinking residency to W(t, tau).
  std::vector<FrameId> FramesToRelease(FrameTable* frames, Cycles now) override;

  ReplacementStrategyKind kind() const override {
    return ReplacementStrategyKind::kWorkingSet;
  }

  Cycles tau() const { return tau_; }

 private:
  Cycles tau_;
};

}  // namespace dsa

#endif  // SRC_PAGING_WORKING_SET_H_
