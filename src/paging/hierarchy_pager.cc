#include "src/paging/hierarchy_pager.h"

#include <vector>

#include "src/core/assert.h"

namespace dsa {

HierarchyPager::HierarchyPager(HierarchyPagerConfig config,
                               std::unique_ptr<ReplacementPolicy> replacement)
    : config_(config),
      drum_(config.drum_level),
      disk_(config.disk_level),
      replacement_(std::move(replacement)),
      frames_(config.frames) {
  DSA_ASSERT(replacement_ != nullptr, "hierarchy pager needs a replacement policy");
  DSA_ASSERT(config_.drum_pages > 0, "drum must hold at least one page");
  if (config_.touch_idle_threshold == 0) {
    config_.touch_idle_threshold = config_.page_words;
  }
}

void HierarchyPager::DropFromDrum(PageId page) {
  auto it = drum_pos_.find(page.value);
  if (it != drum_pos_.end()) {
    drum_lru_.erase(it->second);
    drum_pos_.erase(it);
    drum_.Discard(page.value);
  }
}

void HierarchyPager::PlaceEvicted(PageId page, Cycles now) {
  const bool to_drum = config_.demotion == DemotionPolicy::kAlwaysDrum ||
                       (config_.promote_on_disk_fault && promoted_[page.value]);
  std::vector<Word> data(config_.page_words, Word{0});
  if (!to_drum) {
    disk_channel_.Schedule(disk_.level(), config_.page_words, now);
    disk_.Store(page.value, std::move(data));
    home_[page.value] = Home::kDisk;
    return;
  }
  // Stage on the drum; spill its least recently landed page to disk first
  // if the drum is full.
  if (drum_lru_.size() >= config_.drum_pages) {
    const std::uint64_t spill = drum_lru_.back();
    drum_lru_.pop_back();
    drum_pos_.erase(spill);
    drum_.Discard(spill);
    std::vector<Word> spilled(config_.page_words, Word{0});
    disk_channel_.Schedule(disk_.level(), config_.page_words, now);
    disk_.Store(spill, std::move(spilled));
    home_[spill] = Home::kDisk;
    ++stats_.demotions;
  }
  drum_channel_.Schedule(drum_.level(), config_.page_words, now);
  drum_.Store(page.value, std::move(data));
  drum_lru_.push_front(page.value);
  drum_pos_[page.value] = drum_lru_.begin();
  home_[page.value] = Home::kDrum;
}

void HierarchyPager::EvictOne(Cycles now) {
  const FrameId victim = replacement_->ChooseVictim(&frames_, now);
  const FrameInfo& info = frames_.info(victim);
  DSA_ASSERT(info.occupied && !info.pinned, "policy chose an invalid victim");
  const PageId page = info.page;
  // Every eviction writes the page out (its only up-to-date copy is in core:
  // the fetch consumed the backing copy's slot when the page moved levels).
  ++stats_.writebacks;
  PlaceEvicted(page, now);
  replacement_->OnEvict(victim, page);
  frames_.Evict(victim);
  resident_.erase(page.value);
}

Cycles HierarchyPager::Access(PageId page, AccessKind kind, Cycles now) {
  ++stats_.accesses;
  const bool write = kind == AccessKind::kWrite;

  if (auto it = resident_.find(page.value); it != resident_.end()) {
    frames_.Touch(it->second, now, write, config_.touch_idle_threshold);
    replacement_->OnAccess(it->second, page, now, write);
    return 0;
  }

  // --- fault: find the page's home and fetch it ----------------------------
  ++stats_.faults;
  std::optional<FrameId> frame = frames_.TakeFreeFrame();
  if (!frame.has_value()) {
    EvictOne(now);
    frame = frames_.TakeFreeFrame();
    DSA_ASSERT(frame.has_value(), "eviction did not free a frame");
  }

  Cycles wait = 0;
  std::vector<Word> data;
  const Home home = home_.contains(page.value) ? home_[page.value] : Home::kNowhere;
  switch (home) {
    case Home::kDrum: {
      const auto done = drum_channel_.Schedule(drum_.level(), config_.page_words, now);
      wait = done.finish - now;
      drum_.Fetch(page.value, config_.page_words, &data);
      DropFromDrum(page);
      ++stats_.drum_hits;
      break;
    }
    case Home::kDisk: {
      const auto done = disk_channel_.Schedule(disk_.level(), config_.page_words, now);
      wait = done.finish - now;
      disk_.Fetch(page.value, config_.page_words, &data);
      disk_.Discard(page.value);
      ++stats_.disk_hits;
      // "Worthwhile only if the item is going to be used frequently": a disk
      // fault is the frequency evidence this model accepts.
      promoted_[page.value] = true;
      break;
    }
    case Home::kNowhere:
      ++stats_.zero_fills;  // first touch: zero-filled, no transfer
      break;
  }
  home_.erase(page.value);
  stats_.wait_cycles += wait;

  frames_.Load(*frame, page, now);
  resident_.emplace(page.value, *frame);
  replacement_->OnLoad(*frame, page, now);
  const Cycles arrival = now + wait;
  frames_.Touch(*frame, arrival, write, config_.touch_idle_threshold);
  replacement_->OnAccess(*frame, page, arrival, write);
  return wait;
}

}  // namespace dsa
