#include "src/paging/hierarchy_pager.h"

#include <vector>

#include "src/core/assert.h"
#include "src/obs/tracer.h"

namespace dsa {

namespace {
// Injector level indices for the two backing levels.
constexpr std::size_t kDrumLevel = 0;
constexpr std::size_t kDiskLevel = 1;
}  // namespace

HierarchyPager::HierarchyPager(HierarchyPagerConfig config,
                               std::unique_ptr<ReplacementPolicy> replacement,
                               FaultInjector* injector)
    : config_(config),
      drum_(config.drum_level),
      disk_(config.disk_level),
      replacement_(std::move(replacement)),
      injector_(injector),
      frames_(config.frames) {
  DSA_ASSERT(replacement_ != nullptr, "hierarchy pager needs a replacement policy");
  DSA_ASSERT(config_.drum_pages > 0, "drum must hold at least one page");
  if (config_.touch_idle_threshold == 0) {
    config_.touch_idle_threshold = config_.page_words;
  }
  stats_.reliability.residual_frames = frames_.usable_frame_count();
}

BackingStore::SlotId HierarchyPager::SlotFor(PageId page) const {
  auto it = slot_of_.find(page.value);
  return it != slot_of_.end() ? it->second : page.value;
}

void HierarchyPager::RecordSlot(PageId page, BackingStore::SlotId slot) {
  if (slot == page.value) {
    slot_of_.erase(page.value);
  } else {
    slot_of_[page.value] = slot;
  }
}

void HierarchyPager::SyncRetirementStats() {
  stats_.reliability.retired_frames = frames_.retired_count();
  stats_.reliability.residual_frames = frames_.usable_frame_count();
}

void HierarchyPager::DropFromDrum(PageId page) {
  auto it = drum_pos_.find(page.value);
  if (it != drum_pos_.end()) {
    drum_lru_.erase(it->second);
    drum_pos_.erase(it);
    const BackingStore::SlotId slot = SlotFor(page);
    if (!drum_.IsBad(slot)) {
      drum_.Discard(slot);
    }
    slot_of_.erase(page.value);
  }
}

std::optional<BackingStore::SlotId> HierarchyPager::StorePage(BackingStore& store,
                                                              TransferChannel& channel,
                                                              std::size_t level_index, PageId page,
                                                              Cycles now) {
  ReliabilityStats& rel = stats_.reliability;
  const int max_retries = injector_ != nullptr ? injector_->max_retries() : 0;
  for (int attempt = 0;; ++attempt) {
    BackingStore::SlotId slot = page.value;
    if (store.IsBad(slot)) {
      const auto spare = store.AllocateSpareSlot(config_.page_words);
      if (!spare.has_value()) {
        return std::nullopt;
      }
      slot = *spare;
      ++rel.relocations;
      DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                     static_cast<std::uint64_t>(RecoveryAction::kRelocation));
    }
    DSA_TRACE_EMIT(tracer_, EventKind::kTransferStart, page.value, level_index,
                   /*direction=*/1);
    channel.Schedule(store.level(), config_.page_words, now);
    [[maybe_unused]] const Cycles store_cycles =
        store.Store(slot, std::vector<Word>(config_.page_words, Word{0}));
    DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, page.value, level_index,
                   store_cycles);
    const TransferFaultKind fault = injector_ != nullptr
                                        ? injector_->DrawTransferFault(level_index)
                                        : TransferFaultKind::kNone;
    if (fault == TransferFaultKind::kNone) {
      return slot;
    }
    if (fault == TransferFaultKind::kPermanentSlot) {
      // Write-check failed: the sector is bad and the copy that just landed
      // is not durable.  The next attempt relocates.
      store.MarkBad(slot);
      ++rel.slot_failures;
    } else {
      ++rel.transient_errors;
    }
    if (attempt >= max_retries) {
      return std::nullopt;
    }
    ++rel.retries;
    DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                   static_cast<std::uint64_t>(RecoveryAction::kRetry));
  }
}

void HierarchyPager::PlaceOnDisk(PageId page, Cycles now) {
  const auto slot = StorePage(disk_, disk_channel_, kDiskLevel, page, now);
  if (!slot.has_value()) {
    // No disk slot would take the page: its contents are gone.  The page
    // reads as zero-fill on its next touch.
    ++stats_.reliability.lost_pages;
    DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                   static_cast<std::uint64_t>(RecoveryAction::kPageLost));
    home_.erase(page.value);
    slot_of_.erase(page.value);
    return;
  }
  RecordSlot(page, *slot);
  home_[page.value] = Home::kDisk;
}

void HierarchyPager::PlaceEvicted(PageId page, Cycles now) {
  const bool to_drum = config_.demotion == DemotionPolicy::kAlwaysDrum ||
                       (config_.promote_on_disk_fault && promoted_[page.value]);
  if (!to_drum) {
    PlaceOnDisk(page, now);
    return;
  }
  // Stage on the drum; spill its least recently landed page to disk first
  // if the drum is full.
  if (drum_lru_.size() >= config_.drum_pages) {
    const PageId spill{drum_lru_.back()};
    drum_lru_.pop_back();
    drum_pos_.erase(spill.value);
    const BackingStore::SlotId spill_slot = SlotFor(spill);
    if (!drum_.IsBad(spill_slot)) {
      drum_.Discard(spill_slot);
    }
    slot_of_.erase(spill.value);
    DSA_TRACE_EMIT(tracer_, EventKind::kPageDemoted, spill.value, kDiskLevel);
    PlaceOnDisk(spill, now);
    ++stats_.demotions;
  }
  const auto slot = StorePage(drum_, drum_channel_, kDrumLevel, page, now);
  if (!slot.has_value()) {
    // The drum ran out of good slots (or retries); fall through one level
    // rather than losing the page.
    ++stats_.reliability.spill_relocations;
    PlaceOnDisk(page, now);
    return;
  }
  RecordSlot(page, *slot);
  drum_lru_.push_front(page.value);
  drum_pos_[page.value] = drum_lru_.begin();
  home_[page.value] = Home::kDrum;
}

void HierarchyPager::EvictOne(Cycles now) {
  const FrameId victim = replacement_->ChooseVictim(&frames_, now);
  const FrameInfo& info = frames_.info(victim);
  DSA_ASSERT(info.occupied && !info.pinned, "policy chose an invalid victim");
  const PageId page = info.page;
  DSA_TRACE_EMIT(tracer_, EventKind::kVictimChosen, page.value, victim.value);
  // Every eviction writes the page out (its only up-to-date copy is in core:
  // the fetch consumed the backing copy's slot when the page moved levels).
  ++stats_.writebacks;
  PlaceEvicted(page, now);
  replacement_->OnEvict(victim, page);
  frames_.Evict(victim);
  resident_.erase(page.value);
}

Expected<Cycles, PageAccessError> HierarchyPager::Access(PageId page, AccessKind kind,
                                                         Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  ++stats_.accesses;
  const bool write = kind == AccessKind::kWrite;

  if (auto it = resident_.find(page.value); it != resident_.end()) {
    frames_.Touch(it->second, now, write, config_.touch_idle_threshold);
    replacement_->OnAccess(it->second, page, now, write);
    return Cycles{0};
  }

  // --- fault: find a frame, then the page's home, then fetch ---------------
  ++stats_.faults;
  DSA_TRACE_EMIT(tracer_, EventKind::kPageFault, page.value);
  // The page's home must be resolved AFTER each eviction: an eviction's drum
  // spill can demote the very page being faulted from drum to disk.
  const auto resolve_home = [&]() {
    auto it = home_.find(page.value);
    return it != home_.end() ? it->second : Home::kNowhere;
  };

  // Find a frame for the page.  Core parity failures strike as the transfer
  // arrives: its time is charged, the frame retires, the hunt continues.
  Cycles wasted = 0;
  std::optional<FrameId> frame;
  for (;;) {
    frame = frames_.TakeFreeFrame();
    if (!frame.has_value()) {
      if (!frames_.HasEvictionCandidates()) {
        ++stats_.reliability.failed_accesses;
        stats_.wait_cycles += wasted;
        return MakeUnexpected(
            PageAccessError{PageAccessErrorKind::kNoUsableFrames, page, wasted});
      }
      EvictOne(now);
      frame = frames_.TakeFreeFrame();
      DSA_ASSERT(frame.has_value(), "eviction did not free a frame");
    }
    if (injector_ == nullptr || frames_.usable_frame_count() <= 1 ||
        !injector_->DrawFrameFailure()) {
      break;
    }
    // The transfer ran before the landing failed; charge its time against
    // the page's current home (evictions may move it between landings).
    const Home landing_home = resolve_home();
    if (landing_home != Home::kNowhere) {
      BackingStore& failed_store = landing_home == Home::kDrum ? drum_ : disk_;
      TransferChannel& failed_channel =
          landing_home == Home::kDrum ? drum_channel_ : disk_channel_;
      [[maybe_unused]] const std::size_t failed_level =
          landing_home == Home::kDrum ? kDrumLevel : kDiskLevel;
      DSA_TRACE_EMIT(tracer_, EventKind::kTransferStart, page.value, failed_level,
                     /*direction=*/0);
      const auto done =
          failed_channel.Schedule(failed_store.level(), config_.page_words, now + wasted);
      const Cycles landing_wait = done.finish - (now + wasted);
      wasted += landing_wait;
      DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, page.value, failed_level,
                     landing_wait);
    }
    DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                   static_cast<std::uint64_t>(RecoveryAction::kFrameParity));
    frames_.RetireFrame(*frame);
    ++stats_.reliability.frame_failures;
    SyncRetirementStats();
  }

  const Home home = resolve_home();
  BackingStore* store = home == Home::kDrum ? &drum_ : home == Home::kDisk ? &disk_ : nullptr;
  TransferChannel* channel = home == Home::kDrum ? &drum_channel_
                             : home == Home::kDisk ? &disk_channel_
                                                   : nullptr;
  const std::size_t level_index = home == Home::kDrum ? kDrumLevel : kDiskLevel;

  Cycles wait = wasted;
  ReliabilityStats& rel = stats_.reliability;
  const int max_retries = injector_ != nullptr ? injector_->max_retries() : 0;
  if (store != nullptr) {
    const BackingStore::SlotId slot = SlotFor(page);
    std::vector<Word> data;
    for (int attempt = 0;; ++attempt) {
      DSA_TRACE_EMIT(tracer_, EventKind::kTransferStart, page.value, level_index,
                     /*direction=*/0);
      const auto done = channel->Schedule(store->level(), config_.page_words, now + wait);
      const Cycles attempt_wait = done.finish - (now + wait);
      wait += attempt_wait;
      if (attempt > 0) {
        rel.retry_cycles += attempt_wait;
      }
      store->Fetch(slot, config_.page_words, &data);
      DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, page.value, level_index,
                     attempt_wait);
      const TransferFaultKind fault = injector_ != nullptr
                                          ? injector_->DrawTransferFault(level_index)
                                          : TransferFaultKind::kNone;
      if (fault == TransferFaultKind::kNone) {
        break;
      }
      if (fault == TransferFaultKind::kPermanentSlot) {
        // The only copy sat on a sector that just went bad; the page is
        // unrecoverable and the access fails.
        store->MarkBad(slot);
        ++rel.slot_failures;
        ++rel.lost_pages;
        DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                       static_cast<std::uint64_t>(RecoveryAction::kPageLost));
        if (home == Home::kDrum) {
          auto it = drum_pos_.find(page.value);
          if (it != drum_pos_.end()) {
            drum_lru_.erase(it->second);
            drum_pos_.erase(it);
          }
        }
        home_.erase(page.value);
        slot_of_.erase(page.value);
        frames_.ReturnFreeFrame(*frame);
        ++rel.failed_accesses;
        stats_.wait_cycles += wait;
        return MakeUnexpected(
            PageAccessError{PageAccessErrorKind::kSlotUnreadable, page, wait});
      }
      ++rel.transient_errors;
      if (attempt >= max_retries) {
        frames_.ReturnFreeFrame(*frame);
        ++rel.failed_accesses;
        stats_.wait_cycles += wait;
        return MakeUnexpected(
            PageAccessError{PageAccessErrorKind::kTransferFailed, page, wait});
      }
      ++rel.retries;
      DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                     static_cast<std::uint64_t>(RecoveryAction::kRetry));
    }
    if (home == Home::kDrum) {
      DropFromDrum(page);
      ++stats_.drum_hits;
    } else {
      disk_.Discard(slot);
      slot_of_.erase(page.value);
      ++stats_.disk_hits;
      // "Worthwhile only if the item is going to be used frequently": a disk
      // fault is the frequency evidence this model accepts.
      promoted_[page.value] = true;
    }
  } else {
    ++stats_.zero_fills;  // first touch: zero-filled, no transfer
  }
  home_.erase(page.value);
  stats_.wait_cycles += wait;

  frames_.Load(*frame, page, now);
  resident_.emplace(page.value, *frame);
  replacement_->OnLoad(*frame, page, now);
  const Cycles arrival = now + wait;
  frames_.Touch(*frame, arrival, write, config_.touch_idle_threshold);
  replacement_->OnAccess(*frame, page, arrival, write);
  return wait;
}

}  // namespace dsa
