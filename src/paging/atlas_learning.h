// The ATLAS "learning program" (Kilburn et al., Appendix A.1).
//
// "The learning program makes use of information which records the length of
// time since the page in each page frame has been accessed and the previous
// duration of inactivity for that page.  It attempts to find a page which
// appears to be no longer in use.  If all the pages are in current use it
// tries to choose the one which, if the recent pattern of use is maintained,
// will be the last to be required."
//
// History is kept per *page* and survives eviction — the original tracked
// pages through the drum, which is what lets the program learn loop periods
// that exceed one residence.  The decision rule, after Kilburn:
//
//   1. A page idle for t > T + margin (T = its last completed inactivity
//      period) has outlived its observed pattern — it "appears to be no
//      longer in use".  Among such pages pick the largest overshoot t - T.
//   2. Otherwise predict each page's next use at last_use + T and overlay
//      the page whose predicted use is farthest away.

#ifndef SRC_PAGING_ATLAS_LEARNING_H_
#define SRC_PAGING_ATLAS_LEARNING_H_

#include <unordered_map>

#include "src/paging/replacement.h"

namespace dsa {

class AtlasLearningReplacement : public ReplacementPolicy {
 public:
  // `margin` is the tolerance added to the learned period before a page is
  // declared abandoned; `idle_threshold` is the smallest quiet gap that
  // counts as a completed inactivity period (the drum-revolution sampling
  // granularity of the original hardware).
  explicit AtlasLearningReplacement(Cycles margin = 0, Cycles idle_threshold = 16)
      : margin_(margin), idle_threshold_(idle_threshold) {}

  void OnLoad(FrameId frame, PageId page, Cycles now) override;
  void OnAccess(FrameId frame, PageId page, Cycles now, bool write) override;
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override {
    return ReplacementStrategyKind::kAtlasLearning;
  }

  // The learned per-page histories survive eviction, so they are part of the
  // checkpoint; written in sorted page order for deterministic bytes.
  void SaveState(SnapshotWriter* w) const override;
  void LoadState(SnapshotReader* r) override;

 private:
  struct PageHistory {
    Cycles last_use{0};
    Cycles previous_idle{0};  // T: the last completed period of inactivity
  };

  Cycles margin_;
  Cycles idle_threshold_;
  std::unordered_map<std::uint64_t, PageHistory> history_;
};

}  // namespace dsa

#endif  // SRC_PAGING_ATLAS_LEARNING_H_
