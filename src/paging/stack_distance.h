// Mattson stack-distance analysis for LRU.
//
// LRU is a stack algorithm (the inclusion property the property suite
// demonstrates), so a single pass over the reference string yields the
// distance of each reference in the LRU stack — and from the distance
// histogram, the exact fault count at *every* memory size at once.  This is
// the analytical counterpart of Belady's simulations [1], and the library's
// strongest self-check: the histogram must agree exactly with the pager
// simulating LRU at each size.

#ifndef SRC_PAGING_STACK_DISTANCE_H_
#define SRC_PAGING_STACK_DISTANCE_H_

#include <cstdint>
#include <vector>

#include "src/core/types.h"

namespace dsa {

struct StackDistanceProfile {
  // counts[d-1] = number of references at stack distance d (d >= 1; a
  // distance-d reference hits iff the memory holds at least d frames).
  std::vector<std::uint64_t> distance_counts;
  // References to pages never seen before (infinite distance) — the
  // compulsory misses.
  std::uint64_t cold_references{0};
  std::uint64_t total_references{0};

  // Exact LRU faults with `frames` frames: cold misses plus every reference
  // whose stack distance exceeds the frame count.
  std::uint64_t FaultsAt(std::size_t frames) const;

  // Exact LRU fault counts for frames = 1..max_frames (index 0 unused).
  std::vector<std::uint64_t> FaultCurve(std::size_t max_frames) const;

  // Distinct pages in the string.
  std::uint64_t DistinctPages() const { return cold_references; }
};

// One pass over the page reference string.
StackDistanceProfile ComputeStackDistances(const std::vector<PageId>& refs);

}  // namespace dsa

#endif  // SRC_PAGING_STACK_DISTANCE_H_
