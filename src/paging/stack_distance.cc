#include "src/paging/stack_distance.h"

#include <unordered_map>

#include "src/core/assert.h"

namespace dsa {

namespace {

// Fenwick (binary-indexed) tree over reference positions.  Position i holds
// 1 exactly when reference i is the *most recent* access of its page, so a
// range sum counts distinct pages touched in that span — the quantity the
// LRU stack depth is made of.
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {}

  // Adds `delta` at 1-based position `i`.
  void Add(std::size_t i, std::int64_t delta) {
    for (; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  // Sum of positions [1, i].
  std::int64_t PrefixSum(std::size_t i) const {
    std::int64_t sum = 0;
    for (; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

std::uint64_t StackDistanceProfile::FaultsAt(std::size_t frames) const {
  DSA_ASSERT(frames > 0, "memory must hold at least one frame");
  std::uint64_t faults = cold_references;
  for (std::size_t d = frames + 1; d <= distance_counts.size(); ++d) {
    faults += distance_counts[d - 1];
  }
  return faults;
}

std::vector<std::uint64_t> StackDistanceProfile::FaultCurve(std::size_t max_frames) const {
  // curve[m] = cold + sum_{d > m} counts[d-1]; computed as suffix sums so
  // the whole curve costs one pass over the histogram.
  std::vector<std::uint64_t> curve(max_frames + 1, 0);
  std::uint64_t beyond = cold_references;
  for (std::size_t d = distance_counts.size(); d > max_frames; --d) {
    beyond += distance_counts[d - 1];
  }
  for (std::size_t m = std::min(max_frames, distance_counts.size()); m >= 1; --m) {
    curve[m] = beyond;
    beyond += distance_counts[m - 1];
  }
  // Memory sizes beyond the deepest observed distance see only cold misses;
  // sizes below the shallowest recorded distance accumulate everything.
  for (std::size_t m = distance_counts.size() + 1; m <= max_frames; ++m) {
    curve[m] = cold_references;
  }
  return curve;
}

StackDistanceProfile ComputeStackDistances(const std::vector<PageId>& refs) {
  StackDistanceProfile profile;
  profile.total_references = refs.size();

  // A page's stack depth is 1 plus the number of *distinct* pages accessed
  // since its previous access.  Marking only the latest access of each page
  // in the Fenwick tree makes that a range sum over (previous, current):
  // O(log n) per reference instead of walking the explicit LRU stack.
  FenwickTree latest_marks(refs.size());
  std::unordered_map<std::uint64_t, std::size_t> last_position;  // page -> 1-based position

  for (std::size_t i = 1; i <= refs.size(); ++i) {
    const PageId page = refs[i - 1];
    auto it = last_position.find(page.value);
    if (it == last_position.end()) {
      ++profile.cold_references;
      last_position.emplace(page.value, i);
    } else {
      const std::size_t previous = it->second;
      const std::size_t depth = static_cast<std::size_t>(
          latest_marks.PrefixSum(i - 1) - latest_marks.PrefixSum(previous)) + 1;
      if (profile.distance_counts.size() < depth) {
        profile.distance_counts.resize(depth, 0);
      }
      ++profile.distance_counts[depth - 1];
      latest_marks.Add(previous, -1);
      it->second = i;
    }
    latest_marks.Add(i, +1);
  }
  return profile;
}

}  // namespace dsa
