#include "src/paging/stack_distance.h"

#include <list>
#include <unordered_map>

#include "src/core/assert.h"

namespace dsa {

std::uint64_t StackDistanceProfile::FaultsAt(std::size_t frames) const {
  DSA_ASSERT(frames > 0, "memory must hold at least one frame");
  std::uint64_t faults = cold_references;
  for (std::size_t d = frames + 1; d <= distance_counts.size(); ++d) {
    faults += distance_counts[d - 1];
  }
  return faults;
}

std::vector<std::uint64_t> StackDistanceProfile::FaultCurve(std::size_t max_frames) const {
  // curve[m] = cold + sum_{d > m} counts[d-1]; computed as suffix sums so
  // the whole curve costs one pass over the histogram.
  std::vector<std::uint64_t> curve(max_frames + 1, 0);
  std::uint64_t beyond = cold_references;
  for (std::size_t d = distance_counts.size(); d > max_frames; --d) {
    beyond += distance_counts[d - 1];
  }
  for (std::size_t m = std::min(max_frames, distance_counts.size()); m >= 1; --m) {
    curve[m] = beyond;
    beyond += distance_counts[m - 1];
  }
  // Memory sizes beyond the deepest observed distance see only cold misses;
  // sizes below the shallowest recorded distance accumulate everything.
  for (std::size_t m = distance_counts.size() + 1; m <= max_frames; ++m) {
    curve[m] = cold_references;
  }
  return curve;
}

StackDistanceProfile ComputeStackDistances(const std::vector<PageId>& refs) {
  StackDistanceProfile profile;
  profile.total_references = refs.size();

  // The LRU stack: most recently used first.  The map gives O(1) lookup of a
  // page's node; depth is found by walking, which is O(n * distinct) — fine
  // for analysis workloads and exact by construction.
  std::list<std::uint64_t> stack;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> where;

  for (const PageId page : refs) {
    auto it = where.find(page.value);
    if (it == where.end()) {
      ++profile.cold_references;
    } else {
      // Depth of the page in the stack (1-based).
      std::size_t depth = 1;
      for (auto walk = stack.begin(); walk != it->second; ++walk) {
        ++depth;
      }
      if (profile.distance_counts.size() < depth) {
        profile.distance_counts.resize(depth, 0);
      }
      ++profile.distance_counts[depth - 1];
      stack.erase(it->second);
    }
    stack.push_front(page.value);
    where[page.value] = stack.begin();
  }
  return profile;
}

}  // namespace dsa
