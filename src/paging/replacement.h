// The replacement-strategy interface: "when it is necessary to make room in
// working storage for some new information, a replacement strategy is used
// to determine which informational units should be overlayed.  The strategy
// should seek to avoid the overlaying of information which may be required
// again in the near future."

#ifndef SRC_PAGING_REPLACEMENT_H_
#define SRC_PAGING_REPLACEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/strategy.h"
#include "src/core/types.h"
#include "src/paging/frame_table.h"

namespace dsa {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  // Lifecycle notifications from the pager.
  virtual void OnLoad(FrameId frame, PageId page, Cycles now) {
    (void)frame;
    (void)page;
    (void)now;
  }
  // Called for every reference (including the one that faulted, after the
  // page arrives).
  virtual void OnAccess(FrameId frame, PageId page, Cycles now, bool write) {
    (void)frame;
    (void)page;
    (void)now;
    (void)write;
  }
  virtual void OnEvict(FrameId frame, PageId page) {
    (void)frame;
    (void)page;
  }

  // Picks a victim among `frames->EvictionCandidates()`, which is non-empty.
  // Policies may read and clear the usage sensors while deciding.
  virtual FrameId ChooseVictim(FrameTable* frames, Cycles now) = 0;

  // Pages the policy volunteers to give back ahead of need (a
  // variable-allocation policy like working-set shrinks residency here; most
  // policies return nothing).  The pager asks at every fault.
  virtual std::vector<FrameId> FramesToRelease(FrameTable* frames, Cycles now) {
    (void)frames;
    (void)now;
    return {};
  }

  virtual ReplacementStrategyKind kind() const = 0;
  std::string name() const { return ToString(kind()); }

  // Checkpoint hooks: serialize whatever mutable decision state the policy
  // carries (an rng stream, a clock hand, learned histories).  Stateless
  // policies inherit the no-ops.  LoadState must report malformed input
  // through the reader, never abort.
  virtual void SaveState(SnapshotWriter* w) const { (void)w; }
  virtual void LoadState(SnapshotReader* r) { (void)r; }
};

}  // namespace dsa

#endif  // SRC_PAGING_REPLACEMENT_H_
