#include "src/paging/replacement_simple.h"

#include "src/core/assert.h"

namespace dsa {

FrameId FifoReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  // O(1): the frame table's intrusive load-order list keeps the longest-
  // resident candidate at its head.
  const auto victim = frames->OldestLoadedCandidate();
  DSA_ASSERT(victim.has_value(), "no eviction candidates");
  return *victim;
}

FrameId LruReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  // O(1): the frame table's intrusive recency list keeps the least recently
  // used candidate at its head.
  const auto victim = frames->LeastRecentlyUsedCandidate();
  DSA_ASSERT(victim.has_value(), "no eviction candidates");
  return *victim;
}

FrameId RandomReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");
  return candidates[rng_.Below(candidates.size())];
}

FrameId ClockReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const std::size_t n = frames->frame_count();
  // The hand survives across decisions, so a reset or resize of the system
  // can leave it pointing past the current table; fold it back in range
  // rather than indexing out of bounds.
  if (hand_ >= n) {
    hand_ = 0;
  }
  // Two full sweeps guarantee termination: the first pass may clear every
  // use sensor, the second must then find a victim.
  for (std::size_t step = 0; step < 2 * n + 1; ++step) {
    const FrameId frame{hand_};
    hand_ = (hand_ + 1) % n;
    const FrameInfo& info = frames->info(frame);
    if (!info.occupied || info.pinned) {
      continue;
    }
    if (info.use) {
      frames->ClearUse(frame);
      continue;
    }
    return frame;
  }
  DSA_ASSERT(false, "clock sweep found no candidate");
  return FrameId{0};
}

}  // namespace dsa
