#include "src/paging/replacement_simple.h"

#include "src/core/assert.h"

namespace dsa {

FrameId FifoReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");
  FrameId victim = candidates.front();
  for (FrameId f : candidates) {
    if (frames->info(f).load_time < frames->info(victim).load_time) {
      victim = f;
    }
  }
  return victim;
}

FrameId LruReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");
  FrameId victim = candidates.front();
  for (FrameId f : candidates) {
    if (frames->info(f).last_use < frames->info(victim).last_use) {
      victim = f;
    }
  }
  return victim;
}

FrameId RandomReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");
  return candidates[rng_.Below(candidates.size())];
}

FrameId ClockReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const std::size_t n = frames->frame_count();
  // Two full sweeps guarantee termination: the first pass may clear every
  // use sensor, the second must then find a victim.
  for (std::size_t step = 0; step < 2 * n + 1; ++step) {
    const FrameId frame{hand_};
    hand_ = (hand_ + 1) % n;
    const FrameInfo& info = frames->info(frame);
    if (!info.occupied || info.pinned) {
      continue;
    }
    if (info.use) {
      frames->ClearUse(frame);
      continue;
    }
    return frame;
  }
  DSA_ASSERT(false, "clock sweep found no candidate");
  return FrameId{0};
}

}  // namespace dsa
