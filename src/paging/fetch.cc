#include "src/paging/fetch.h"

namespace dsa {

std::vector<PageId> PrefetchFetch::ExtraPages(PageId demanded, Cycles now) {
  (void)now;
  std::vector<PageId> out;
  out.reserve(window_);
  for (std::size_t i = 1; i <= window_; ++i) {
    const std::uint64_t page = demanded.value + i;
    if (page >= page_count_) {
      break;
    }
    out.push_back(PageId{page});
  }
  return out;
}

std::vector<PageId> AdvisedFetch::ExtraPages(PageId demanded, Cycles now) {
  (void)demanded;
  (void)now;
  return advice_->TakeWillNeed(budget_);
}

}  // namespace dsa
