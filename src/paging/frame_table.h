// The frame table: occupancy and the hardware usage sensors for every page
// frame of working storage.
//
// "Typical examples of special hardware for information gathering are
// sensors which record the fact of usage or of modifications of the
// information constituting a page ...  Such sensors can then be interrogated
// in order to guide the actions of a replacement strategy."  The `use` and
// `modified` bits here are those sensors; replacement policies may read and
// clear them.
//
// Besides the sensors, the table maintains two intrusive orderings over the
// occupied frames — a load-order (FIFO) list and a recency (LRU) list — so
// that the corresponding replacement policies choose victims in O(1) instead
// of scanning every frame.  Both lists are kept coherent by Load / Touch /
// Evict; ties that a full scan would break by frame index cannot arise as
// long as the simulated clock is monotone per reference (which the pager
// guarantees), so list order and scan order agree.

#ifndef SRC_PAGING_FRAME_TABLE_H_
#define SRC_PAGING_FRAME_TABLE_H_

#include <optional>
#include <vector>

#include "src/core/types.h"
#include "src/obs/event.h"

namespace dsa {

class EventTracer;
class FrameBackingBinder;
class SnapshotReader;
class SnapshotWriter;

struct FrameInfo {
  bool occupied{false};
  bool pinned{false};      // "kept permanently in working storage" (MULTICS directive)
  bool retired{false};     // parity failure took the frame out of service
  PageId page;             // meaningful when occupied
  bool use{false};         // set on every access; cleared by policies
  bool modified{false};    // set on write accesses; cleared on write-back
  Cycles load_time{0};     // when the page arrived (FIFO's ordering)
  Cycles last_use{0};      // refreshed on every access (LRU's ordering)
  Cycles previous_idle{0}; // length of the last completed inactivity period (ATLAS)
};

class FrameTable {
 public:
  explicit FrameTable(std::size_t frames);

  // Attaches the shared tracer; the table emits frame-load / frame-evict /
  // frame-retire events (stamped by the tracer's watermark clock, since the
  // table itself never sees the simulated time of Evict and RetireFrame).
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }

  // Attaches the shared-storage binder (src/paging/backing_binder.h): from
  // here on, every vacant→occupied transition acquires a physical backing
  // block and every occupied→vacant transition releases one, so concurrent
  // lanes genuinely contend for the shared heap.  Must be attached while the
  // table is empty (fresh construction) — the binder's ledger starts at zero
  // bindings.  LoadState rebinds from scratch on success.
  void SetBackingBinder(FrameBackingBinder* binder);

  std::size_t frame_count() const { return frames_.size(); }
  std::size_t occupied_count() const { return occupied_; }
  std::size_t pinned_count() const { return pinned_; }
  // Frames permanently out of service, and those still usable.  Retired
  // frames never appear in the free pool, the intrusive lists, or any
  // eviction candidate set, so every replacement engine (including the
  // retained scan references) skips them by construction.
  std::size_t retired_count() const { return retired_; }
  std::size_t usable_frame_count() const { return frames_.size() - retired_; }
  // Frames available to TakeFreeFrame (taken-but-not-yet-loaded frames count
  // as neither free nor occupied).
  std::size_t free_count() const { return free_.size(); }

  const FrameInfo& info(FrameId frame) const;

  // Pops a free frame, lowest index first.
  std::optional<FrameId> TakeFreeFrame();

  // Installs `page` in `frame` (which must be free).
  void Load(FrameId frame, PageId page, Cycles now);

  // Vacates `frame` (which must be occupied and unpinned).
  void Evict(FrameId frame);

  // Returns a frame obtained from TakeFreeFrame but never loaded (a fetch
  // into it failed); it becomes the next frame TakeFreeFrame hands out.
  void ReturnFreeFrame(FrameId frame);

  // Takes `frame` permanently out of service (a core parity failure).  The
  // frame must be vacant: callers evict its page first.  Graceful capacity
  // degradation, not an assert — the table simply runs with one fewer
  // frame.
  void RetireFrame(FrameId frame);

  // Records an access: sets the use sensor, refreshes recency, and closes
  // the current inactivity period for the ATLAS learning policy.
  // `idle_threshold` is the gap, in cycles, beyond which the quiet spell
  // counts as a completed period of inactivity.
  void Touch(FrameId frame, Cycles now, bool write, Cycles idle_threshold);

  void Pin(FrameId frame);
  void Unpin(FrameId frame);

  // Clears the use sensor (clock hand sweep / periodic harvest).
  void ClearUse(FrameId frame);
  // Clears the modified sensor (page written back).
  void ClearModified(FrameId frame);

  // Occupied, unpinned frames — the candidate set for any replacement.
  std::vector<FrameId> EvictionCandidates() const;

  // Checkpoint serialization: every sensor and both intrusive list orders
  // (FIFO and LRU sequences head to tail), so a restored table selects the
  // identical victim sequence.  LoadState re-derives the occupancy counters
  // and rebuilds the links from the serialized orders, reporting structural
  // violations (a listed frame that is not occupied, a count mismatch)
  // through the reader — never an abort.  The table must be constructed
  // with the same frame count the snapshot was taken at.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

  // True iff EvictionCandidates() would be non-empty, in O(1).
  bool HasEvictionCandidates() const { return occupied_ > pinned_; }

  // O(1) victim queries over the intrusive lists (plus a skip per pinned
  // frame at the head).  Returns the occupied, unpinned frame with the
  // earliest load time / least recent use, or nullopt when none exists.
  std::optional<FrameId> OldestLoadedCandidate() const;
  std::optional<FrameId> LeastRecentlyUsedCandidate() const;

 private:
  // Intrusive doubly-linked list over frame indices with a sentinel node at
  // index frame_count(); head.next is the eviction end (oldest), tail is the
  // most recent.
  struct Link {
    std::size_t prev{0};
    std::size_t next{0};
  };

  FrameInfo& MutableInfo(FrameId frame);

  void ListRemove(std::vector<Link>& list, std::size_t node);
  void ListPushBack(std::vector<Link>& list, std::size_t node);
  std::optional<FrameId> FirstUnpinned(const std::vector<Link>& list) const;

  EventTracer* tracer_{nullptr};
  FrameBackingBinder* binder_{nullptr};
  std::vector<FrameInfo> frames_;
  std::vector<FrameId> free_;
  std::size_t occupied_{0};
  std::size_t pinned_{0};
  std::size_t retired_{0};
  std::vector<Link> fifo_;  // load order; size frame_count()+1, last is sentinel
  std::vector<Link> lru_;   // recency order; same layout
};

}  // namespace dsa

#endif  // SRC_PAGING_FRAME_TABLE_H_
