// The frame table: occupancy and the hardware usage sensors for every page
// frame of working storage.
//
// "Typical examples of special hardware for information gathering are
// sensors which record the fact of usage or of modifications of the
// information constituting a page ...  Such sensors can then be interrogated
// in order to guide the actions of a replacement strategy."  The `use` and
// `modified` bits here are those sensors; replacement policies may read and
// clear them.

#ifndef SRC_PAGING_FRAME_TABLE_H_
#define SRC_PAGING_FRAME_TABLE_H_

#include <optional>
#include <vector>

#include "src/core/types.h"

namespace dsa {

struct FrameInfo {
  bool occupied{false};
  bool pinned{false};      // "kept permanently in working storage" (MULTICS directive)
  PageId page;             // meaningful when occupied
  bool use{false};         // set on every access; cleared by policies
  bool modified{false};    // set on write accesses; cleared on write-back
  Cycles load_time{0};     // when the page arrived (FIFO's ordering)
  Cycles last_use{0};      // refreshed on every access (LRU's ordering)
  Cycles previous_idle{0}; // length of the last completed inactivity period (ATLAS)
};

class FrameTable {
 public:
  explicit FrameTable(std::size_t frames);

  std::size_t frame_count() const { return frames_.size(); }
  std::size_t occupied_count() const { return occupied_; }
  // Frames available to TakeFreeFrame (taken-but-not-yet-loaded frames count
  // as neither free nor occupied).
  std::size_t free_count() const { return free_.size(); }

  const FrameInfo& info(FrameId frame) const;

  // Pops a free frame, lowest index first.
  std::optional<FrameId> TakeFreeFrame();

  // Installs `page` in `frame` (which must be free).
  void Load(FrameId frame, PageId page, Cycles now);

  // Vacates `frame` (which must be occupied and unpinned).
  void Evict(FrameId frame);

  // Records an access: sets the use sensor, refreshes recency, and closes
  // the current inactivity period for the ATLAS learning policy.
  // `idle_threshold` is the gap, in cycles, beyond which the quiet spell
  // counts as a completed period of inactivity.
  void Touch(FrameId frame, Cycles now, bool write, Cycles idle_threshold);

  void Pin(FrameId frame);
  void Unpin(FrameId frame);

  // Clears the use sensor (clock hand sweep / periodic harvest).
  void ClearUse(FrameId frame);
  // Clears the modified sensor (page written back).
  void ClearModified(FrameId frame);

  // Occupied, unpinned frames — the candidate set for any replacement.
  std::vector<FrameId> EvictionCandidates() const;

 private:
  FrameInfo& MutableInfo(FrameId frame);

  std::vector<FrameInfo> frames_;
  std::vector<FrameId> free_;
  std::size_t occupied_{0};
};

}  // namespace dsa

#endif  // SRC_PAGING_FRAME_TABLE_H_
