#include "src/paging/opt.h"

#include <algorithm>
#include <limits>

#include "src/core/assert.h"

namespace dsa {

OptReplacement::OptReplacement(std::vector<PageId> page_string)
    : page_string_(std::move(page_string)) {
  for (std::size_t i = 0; i < page_string_.size(); ++i) {
    uses_[page_string_[i].value].push_back(i);
  }
}

void OptReplacement::OnAccess(FrameId frame, PageId page, Cycles now, bool write) {
  (void)frame;
  (void)now;
  (void)write;
  DSA_ASSERT(position_ < page_string_.size(), "OPT ran past its reference string");
  DSA_ASSERT(page_string_[position_] == page,
             "OPT was constructed from a different reference string");
  ++position_;
}

std::size_t OptReplacement::NextUse(PageId page, std::size_t from) const {
  auto it = uses_.find(page.value);
  if (it == uses_.end()) {
    return std::numeric_limits<std::size_t>::max();
  }
  const std::vector<std::size_t>& positions = it->second;
  auto pos = std::lower_bound(positions.begin(), positions.end(), from);
  if (pos == positions.end()) {
    return std::numeric_limits<std::size_t>::max();
  }
  return *pos;
}

FrameId OptReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");
  // `position_` references have completed; the faulting reference is at
  // `position_`, so future uses of resident pages are those at > position_.
  FrameId victim = candidates.front();
  std::size_t farthest = 0;
  for (FrameId f : candidates) {
    const std::size_t next = NextUse(frames->info(f).page, position_ + 1);
    if (next > farthest) {
      farthest = next;
      victim = f;
    }
  }
  return victim;
}

}  // namespace dsa
