// Scan-based reference implementations of FIFO and LRU replacement.
//
// These are the original O(frames)-per-victim implementations, retained
// verbatim after the frame table grew its intrusive O(1) lists: they walk
// the full candidate set and take the argmin of load_time / last_use,
// breaking ties by lowest frame index.  They exist for two reasons:
//
//   1. Golden parity — tests/test_replacement_parity.cc proves the O(1)
//      policies produce identical victim sequences and fault counts.
//   2. Baseline throughput — bench/bench_throughput.cc replays the same
//      trace through both engines and reports the speedup, so the perf
//      trajectory of this hot path stays measurable forever.
//
// Production code should use the policies in replacement_simple.h.

#ifndef SRC_PAGING_REPLACEMENT_NAIVE_H_
#define SRC_PAGING_REPLACEMENT_NAIVE_H_

#include "src/paging/replacement.h"

namespace dsa {

// Full scan for the earliest load_time among EvictionCandidates().
class ScanFifoReplacement : public ReplacementPolicy {
 public:
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kFifo; }
};

// Full scan for the earliest last_use among EvictionCandidates().
class ScanLruReplacement : public ReplacementPolicy {
 public:
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kLru; }
};

}  // namespace dsa

#endif  // SRC_PAGING_REPLACEMENT_NAIVE_H_
