#include "src/paging/atlas_learning.h"

#include <algorithm>
#include <vector>

#include "src/core/assert.h"
#include "src/core/snapshot.h"

namespace dsa {

void AtlasLearningReplacement::SaveState(SnapshotWriter* w) const {
  std::vector<std::uint64_t> pages;
  pages.reserve(history_.size());
  for (const auto& [page, record] : history_) {
    pages.push_back(page);
  }
  std::sort(pages.begin(), pages.end());
  w->U64(pages.size());
  for (std::uint64_t page : pages) {
    const PageHistory& record = history_.at(page);
    w->U64(page);
    w->U64(record.last_use);
    w->U64(record.previous_idle);
  }
}

void AtlasLearningReplacement::LoadState(SnapshotReader* r) {
  const std::uint64_t count = r->Count(std::uint64_t{1} << 32);
  std::unordered_map<std::uint64_t, PageHistory> history;
  history.reserve(count);
  for (std::uint64_t i = 0; i < count && r->ok(); ++i) {
    const std::uint64_t page = r->U64();
    PageHistory record;
    record.last_use = r->U64();
    record.previous_idle = r->U64();
    if (!history.emplace(page, record).second) {
      r->Fail(SnapshotErrorKind::kBadValue, "duplicate atlas history page");
      return;
    }
  }
  if (!r->ok()) {
    return;
  }
  history_ = std::move(history);
}

void AtlasLearningReplacement::OnLoad(FrameId frame, PageId page, Cycles now) {
  (void)frame;
  // Arrival counts as use; without this a never-seen page would read as
  // abandoned the instant it landed.
  auto [it, inserted] = history_.try_emplace(page.value);
  if (inserted) {
    it->second.last_use = now;
  }
}

void AtlasLearningReplacement::OnAccess(FrameId frame, PageId page, Cycles now, bool write) {
  (void)frame;
  (void)write;
  auto [it, inserted] = history_.try_emplace(page.value);
  PageHistory& record = it->second;
  if (!inserted) {
    const Cycles gap = now > record.last_use ? now - record.last_use : 0;
    if (gap > idle_threshold_) {
      record.previous_idle = gap;  // a period of inactivity just completed
    }
  }
  record.last_use = now;
}

FrameId AtlasLearningReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");

  // Rule 1: a page idle longer than its learned inactivity period (plus
  // margin) appears to be no longer in use.  A page with no completed period
  // on record (previous_idle == 0) is abandoned as soon as it goes quiet.
  bool found_abandoned = false;
  FrameId abandoned = candidates.front();
  Cycles best_overshoot = 0;
  for (FrameId f : candidates) {
    const PageHistory& record = history_[frames->info(f).page.value];
    const Cycles idle = now > record.last_use ? now - record.last_use : 0;
    if (idle > record.previous_idle + margin_) {
      const Cycles overshoot = idle - record.previous_idle;
      if (!found_abandoned || overshoot > best_overshoot) {
        found_abandoned = true;
        best_overshoot = overshoot;
        abandoned = f;
      }
    }
  }
  if (found_abandoned) {
    return abandoned;
  }

  // Rule 2: all pages are in current use; overlay the one whose predicted
  // next use (last_use + learned period) is farthest in the future.
  FrameId victim = candidates.front();
  Cycles farthest_prediction = 0;
  for (FrameId f : candidates) {
    const PageHistory& record = history_[frames->info(f).page.value];
    const Cycles predicted_next_use = record.last_use + record.previous_idle;
    if (predicted_next_use >= farthest_prediction) {
      farthest_prediction = predicted_next_use;
      victim = f;
    }
  }
  return victim;
}

}  // namespace dsa
