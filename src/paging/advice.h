// Predictive directives: the second basic characteristic.
//
// Three shapes appear in the paper and all route through this registry:
//   * M44/44X — "one [instruction] indicates that a page will shortly be
//     needed; the other indicates that it will not be needed for some time";
//   * MULTICS — keep permanently resident / will be accessed shortly /
//     will not be accessed again;
//   * ACSI-MATIC — program descriptions naming preferred storage media.
//
// Directives are *advisory*: "the consequences of predictions will be
// related to the overall situation as regards storage utilization."  The
// pager consults the registry; it is never obliged to obey.

#ifndef SRC_PAGING_ADVICE_H_
#define SRC_PAGING_ADVICE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/core/snapshot.h"
#include "src/core/types.h"

namespace dsa {

class AdviceRegistry {
 public:
  // "Will shortly be needed": candidate for prefetch.
  void AdviseWillNeed(PageId page) { will_need_.insert(page.value); }

  // "Will not be needed for some time": candidate for early release.
  void AdviseWontNeed(PageId page) {
    wont_need_.insert(page.value);
    will_need_.erase(page.value);
  }

  // "Kept permanently in working storage."
  void AdviseKeepResident(PageId page) {
    keep_resident_.insert(page.value);
    wont_need_.erase(page.value);
  }
  void RevokeKeepResident(PageId page) { keep_resident_.erase(page.value); }

  bool IsKeepResident(PageId page) const { return keep_resident_.contains(page.value); }

  // Drains up to `limit` will-need pages (the pager fetches them).
  std::vector<PageId> TakeWillNeed(std::size_t limit);

  // Drains all wont-need pages (the pager may release them).
  std::vector<PageId> TakeWontNeed();

  // An access supersedes prior advice about that page.
  void OnAccess(PageId page) {
    will_need_.erase(page.value);
    wont_need_.erase(page.value);
  }

  std::size_t pending_will_need() const { return will_need_.size(); }
  std::size_t pending_wont_need() const { return wont_need_.size(); }
  std::size_t keep_resident_count() const { return keep_resident_.size(); }

  // Checkpoint serialization; sets are written in sorted order so the bytes
  // do not depend on hash-table iteration order.  (TakeWillNeed/TakeWontNeed
  // already sort before draining, so restored drain order is identical too.)
  void SaveState(SnapshotWriter* w) const {
    const auto save_set = [w](const std::unordered_set<std::uint64_t>& set) {
      std::vector<std::uint64_t> sorted(set.begin(), set.end());
      std::sort(sorted.begin(), sorted.end());
      w->U64(sorted.size());
      for (std::uint64_t page : sorted) {
        w->U64(page);
      }
    };
    save_set(will_need_);
    save_set(wont_need_);
    save_set(keep_resident_);
  }
  void LoadState(SnapshotReader* r) {
    std::unordered_set<std::uint64_t> sets[3];
    for (auto& set : sets) {
      const std::uint64_t count = r->Count(std::uint64_t{1} << 32);
      set.reserve(count);
      for (std::uint64_t i = 0; i < count && r->ok(); ++i) {
        set.insert(r->U64());
      }
    }
    if (!r->ok()) {
      return;
    }
    will_need_ = std::move(sets[0]);
    wont_need_ = std::move(sets[1]);
    keep_resident_ = std::move(sets[2]);
  }

 private:
  std::unordered_set<std::uint64_t> will_need_;
  std::unordered_set<std::uint64_t> wont_need_;
  std::unordered_set<std::uint64_t> keep_resident_;
};

}  // namespace dsa

#endif  // SRC_PAGING_ADVICE_H_
