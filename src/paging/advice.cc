#include "src/paging/advice.h"

namespace dsa {

// Both drains run in ascending page order.  Hash-set iteration order is
// implementation-defined, so draining in it would make fetch order — and
// therefore every downstream trace byte — depend on the standard library and
// on the set's insertion history, which a checkpoint restore cannot (and
// should not) reproduce.  Sorted order is a pure function of the set's
// contents.

std::vector<PageId> AdviceRegistry::TakeWillNeed(std::size_t limit) {
  std::vector<std::uint64_t> pending(will_need_.begin(), will_need_.end());
  std::sort(pending.begin(), pending.end());
  std::vector<PageId> out;
  out.reserve(std::min(limit, pending.size()));
  for (std::uint64_t page : pending) {
    if (out.size() >= limit) {
      break;
    }
    out.push_back(PageId{page});
    will_need_.erase(page);
  }
  return out;
}

std::vector<PageId> AdviceRegistry::TakeWontNeed() {
  std::vector<std::uint64_t> pending(wont_need_.begin(), wont_need_.end());
  std::sort(pending.begin(), pending.end());
  std::vector<PageId> out;
  out.reserve(pending.size());
  for (std::uint64_t page : pending) {
    out.push_back(PageId{page});
  }
  wont_need_.clear();
  return out;
}

}  // namespace dsa
