#include "src/paging/advice.h"

namespace dsa {

std::vector<PageId> AdviceRegistry::TakeWillNeed(std::size_t limit) {
  std::vector<PageId> out;
  out.reserve(std::min(limit, will_need_.size()));
  for (auto it = will_need_.begin(); it != will_need_.end() && out.size() < limit;) {
    out.push_back(PageId{*it});
    it = will_need_.erase(it);
  }
  return out;
}

std::vector<PageId> AdviceRegistry::TakeWontNeed() {
  std::vector<PageId> out;
  out.reserve(wont_need_.size());
  for (std::uint64_t page : wont_need_) {
    out.push_back(PageId{page});
  }
  wont_need_.clear();
  return out;
}

}  // namespace dsa
