// Paging over a multi-level backing hierarchy (drum + disk).
//
// "An additional complexity in fetch strategies arises when there are
// several levels of working storage ...  In such circumstances there is the
// problem of whether a given item should be fetched to a higher storage
// level, since this will be worthwhile only if the item is going to be used
// frequently."
//
// The hierarchy pager keeps core frames exactly like the flat pager, but
// absent pages live on one of two backing levels: a small fast drum and a
// large slow disk.  Evicted pages land on the drum; when the drum fills, its
// least recently landed page is demoted to disk.  A page faulted from disk
// may be *promoted* (its next home is the drum) — the policy choice this
// module lets experiments vary.
//
// With a FaultInjector attached (level 0 = drum, level 1 = disk) transfers
// may fail transiently (retried with fresh rotational latency) or
// permanently (the slot goes bad; the page relocates to a spare slot on the
// same level, or spills to disk when the drum has none).  Core frames can
// take parity hits and retire.  A zero-rate injector is bit-identical to no
// injector.

#ifndef SRC_PAGING_HIERARCHY_PAGER_H_
#define SRC_PAGING_HIERARCHY_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "src/core/expected.h"
#include "src/core/types.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/mem/fault_injection.h"
#include "src/paging/frame_table.h"
#include "src/paging/pager.h"
#include "src/paging/replacement.h"
#include "src/stats/reliability.h"

namespace dsa {

// Where an evicted page is written.
enum class DemotionPolicy : std::uint8_t {
  kAlwaysDrum,   // evictions land on the drum; the drum demotes its LRU to disk
  kAlwaysDisk,   // evictions bypass the drum (no staging)
};

struct HierarchyPagerConfig {
  WordCount page_words{512};
  std::size_t frames{32};
  // Drum capacity in pages; beyond this, drum residents demote to disk.
  std::size_t drum_pages{64};
  StorageLevel drum_level{MakeDrumLevel("drum", 1u << 18, /*word_time=*/2,
                                        /*rotational_delay=*/3000)};
  StorageLevel disk_level{MakeDiskLevel("disk", 1u << 24, /*word_time=*/4,
                                        /*seek_plus_rotation=*/40000)};
  DemotionPolicy demotion{DemotionPolicy::kAlwaysDrum};
  // Promote pages fetched from disk by staging their next eviction to drum
  // even under kAlwaysDisk (frequency heuristic: a disk fault proves reuse).
  bool promote_on_disk_fault{true};
  Cycles touch_idle_threshold{0};  // 0 => page_words
};

struct HierarchyPagerStats {
  std::uint64_t accesses{0};
  std::uint64_t faults{0};
  std::uint64_t drum_hits{0};    // faults served from the drum
  std::uint64_t disk_hits{0};    // faults served from the disk
  std::uint64_t zero_fills{0};   // first-touch pages
  std::uint64_t demotions{0};    // drum -> disk overflows
  std::uint64_t writebacks{0};
  Cycles wait_cycles{0};
  ReliabilityStats reliability;

  double DrumServiceFraction() const {
    const std::uint64_t served = drum_hits + disk_hits;
    return served == 0 ? 0.0
                       : static_cast<double>(drum_hits) / static_cast<double>(served);
  }
};

class HierarchyPager {
 public:
  // `injector` may be null: all transfers then succeed and no frame fails.
  HierarchyPager(HierarchyPagerConfig config, std::unique_ptr<ReplacementPolicy> replacement,
                 FaultInjector* injector = nullptr);

  // Attaches the shared event tracer (forwarded to the frame table).
  // Transfers are tagged with their backing level: 0 = drum, 1 = disk.
  void SetTracer(EventTracer* tracer) {
    tracer_ = tracer;
    frames_.SetTracer(tracer);
  }

  // One reference; returns the stall the program sees, or a PageAccessError
  // when every recovery path (retries, relocation, spare frames) is spent.
  Expected<Cycles, PageAccessError> Access(PageId page, AccessKind kind, Cycles now);

  bool IsResident(PageId page) const { return resident_.contains(page.value); }

  const HierarchyPagerStats& stats() const { return stats_; }
  const FrameTable& frames() const { return frames_; }
  std::size_t drum_page_count() const { return drum_lru_.size(); }

 private:
  enum class Home : std::uint8_t { kNowhere, kDrum, kDisk };

  // Vacates one frame via the policy, writing the victim to backing storage.
  void EvictOne(Cycles now);
  // Places an evicted page per the demotion policy, spilling the drum's LRU
  // page to disk when the drum is full.
  void PlaceEvicted(PageId page, Cycles now);
  // Stores the page on disk (relocating around bad slots); a page that
  // cannot land anywhere is recorded lost.
  void PlaceOnDisk(PageId page, Cycles now);
  // Writes the page to `store`, retrying transients and relocating off bad
  // slots; returns the slot that finally holds it, or nullopt when the
  // level ran out of spares/retries.
  std::optional<BackingStore::SlotId> StorePage(BackingStore& store, TransferChannel& channel,
                                                std::size_t level_index, PageId page, Cycles now);
  void DropFromDrum(PageId page);
  // The slot currently holding `page` at its home level.
  BackingStore::SlotId SlotFor(PageId page) const;
  void RecordSlot(PageId page, BackingStore::SlotId slot);
  void SyncRetirementStats();

  HierarchyPagerConfig config_;
  EventTracer* tracer_{nullptr};
  BackingStore drum_;
  BackingStore disk_;
  TransferChannel drum_channel_;
  TransferChannel disk_channel_;
  std::unique_ptr<ReplacementPolicy> replacement_;
  FaultInjector* injector_;
  FrameTable frames_;
  std::unordered_map<std::uint64_t, FrameId> resident_;
  std::unordered_map<std::uint64_t, Home> home_;       // where each absent page lives
  std::unordered_map<std::uint64_t, bool> promoted_;   // disk-faulted pages to stage on drum
  std::list<std::uint64_t> drum_lru_;                  // drum residents, most recent first
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> drum_pos_;
  // Pages relocated off their identity slot at their current home level.
  std::unordered_map<std::uint64_t, BackingStore::SlotId> slot_of_;
  HierarchyPagerStats stats_;
};

}  // namespace dsa

#endif  // SRC_PAGING_HIERARCHY_PAGER_H_
