#include "src/paging/pager.h"

#include <vector>

#include "src/core/assert.h"

namespace dsa {

Pager::Pager(PagerConfig config, BackingStore* backing, TransferChannel* channel,
             std::unique_ptr<ReplacementPolicy> replacement, std::unique_ptr<FetchPolicy> fetch,
             AdviceRegistry* advice)
    : config_(config),
      backing_(backing),
      channel_(channel),
      replacement_(std::move(replacement)),
      fetch_(std::move(fetch)),
      advice_(advice),
      frames_(config.frames) {
  DSA_ASSERT(backing_ != nullptr, "pager needs a backing store");
  DSA_ASSERT(replacement_ != nullptr, "pager needs a replacement policy");
  DSA_ASSERT(fetch_ != nullptr, "pager needs a fetch policy");
  if (config_.touch_idle_threshold == 0) {
    config_.touch_idle_threshold = config_.page_words;
  }
}

std::optional<FrameId> Pager::FrameOf(PageId page) const {
  auto it = resident_.find(page.value);
  if (it == resident_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Pager::AdviseWillNeed(PageId page) {
  if (advice_ != nullptr && !IsResident(page)) {
    advice_->AdviseWillNeed(page);
  }
}

void Pager::AdviseWontNeed(PageId page) {
  if (advice_ != nullptr) {
    advice_->AdviseWontNeed(page);
  }
}

void Pager::AdviseKeepResident(PageId page) {
  if (advice_ == nullptr) {
    return;
  }
  advice_->AdviseKeepResident(page);
  if (auto frame = FrameOf(page)) {
    frames_.Pin(*frame);
  }
}

void Pager::EvictFrame(FrameId frame, Cycles now) {
  const FrameInfo& info = frames_.info(frame);
  DSA_ASSERT(info.occupied, "evicting an empty frame");
  const PageId page = info.page;
  if (info.modified) {
    // Write-back transfers occupy the channel but are buffered off the
    // program's critical path; later fetches queue behind them.
    ++stats_.writebacks;
    std::vector<Word> data(config_.page_words, Word{0});
    if (channel_ != nullptr) {
      channel_->Schedule(backing_->level(), config_.page_words, now);
    }
    stats_.transfer_cycles += backing_->Store(page.value, std::move(data));
  }
  replacement_->OnEvict(frame, page);
  frames_.Evict(frame);
  resident_.erase(page.value);
  ++stats_.evictions;
  if (on_evict_) {
    on_evict_(page, frame);
  }
}

FrameId Pager::EvictOne(Cycles now) {
  const FrameId victim = replacement_->ChooseVictim(&frames_, now);
  const FrameInfo& info = frames_.info(victim);
  DSA_ASSERT(info.occupied && !info.pinned, "policy chose an invalid victim");
  EvictFrame(victim, now);
  return victim;
}

Cycles Pager::FetchInto(PageId page, FrameId frame, Cycles now, bool demand) {
  std::vector<Word> data;
  Cycles wait = 0;
  if (channel_ != nullptr) {
    const TransferChannel::Completion done =
        channel_->Schedule(backing_->level(), config_.page_words, now);
    wait = done.finish - now;
    // Account the device time once; Fetch() tracks device-side counters.
    stats_.transfer_cycles += backing_->Fetch(page.value, config_.page_words, &data);
  } else {
    wait = backing_->Fetch(page.value, config_.page_words, &data);
    stats_.transfer_cycles += wait;
  }
  frames_.Load(frame, page, now);
  resident_.emplace(page.value, frame);
  replacement_->OnLoad(frame, page, now);
  if (advice_ != nullptr && advice_->IsKeepResident(page)) {
    frames_.Pin(frame);
  }
  if (on_load_) {
    on_load_(page, frame);
  }
  if (demand) {
    ++stats_.demand_fetches;
  } else {
    ++stats_.extra_fetches;
  }
  return wait;
}

void Pager::ApplyReleases(Cycles now) {
  if (advice_ != nullptr) {
    for (PageId page : advice_->TakeWontNeed()) {
      if (auto frame = FrameOf(page)) {
        if (!frames_.info(*frame).pinned) {
          EvictFrame(*frame, now);
          ++stats_.advised_releases;
        }
      }
    }
  }
  for (FrameId frame : replacement_->FramesToRelease(&frames_, now)) {
    if (frames_.info(frame).occupied && !frames_.info(frame).pinned) {
      EvictFrame(frame, now);
      ++stats_.policy_releases;
    }
  }
}

PageAccessOutcome Pager::Access(PageId page, AccessKind kind, Cycles now) {
  ++stats_.accesses;
  if (advice_ != nullptr) {
    advice_->OnAccess(page);
  }
  const bool write = kind == AccessKind::kWrite;

  if (auto frame = FrameOf(page)) {
    frames_.Touch(*frame, now, write, config_.touch_idle_threshold);
    replacement_->OnAccess(*frame, page, now, write);
    return PageAccessOutcome{false, *frame, 0, 0};
  }

  // --- page fault ----------------------------------------------------------
  ++stats_.faults;
  ApplyReleases(now);

  std::optional<FrameId> frame = frames_.TakeFreeFrame();
  if (!frame.has_value()) {
    frame = EvictOne(now);
    const std::optional<FrameId> reclaimed = frames_.TakeFreeFrame();
    DSA_ASSERT(reclaimed.has_value(), "eviction did not free a frame");
    frame = reclaimed;
  }
  PageAccessOutcome outcome;
  outcome.faulted = true;
  outcome.frame = *frame;
  outcome.wait_cycles = FetchInto(page, *frame, now, /*demand=*/true);
  stats_.wait_cycles += outcome.wait_cycles;

  // Piggybacked fetches never force a replacement: they fill free frames
  // only, and their transfer time overlaps the program's restart.
  for (PageId extra : fetch_->ExtraPages(page, now)) {
    if (IsResident(extra)) {
      continue;
    }
    if (page_valid_ && !page_valid_(extra)) {
      continue;
    }
    const std::optional<FrameId> spare = frames_.TakeFreeFrame();
    if (!spare.has_value()) {
      break;
    }
    FetchInto(extra, *spare, now, /*demand=*/false);
    ++outcome.extra_fetches;
  }

  const Cycles arrival = now + outcome.wait_cycles;
  frames_.Touch(outcome.frame, arrival, write, config_.touch_idle_threshold);
  replacement_->OnAccess(outcome.frame, page, arrival, write);

  // ATLAS: restore the vacant frame after the dust settles, off the critical
  // path of the *next* fault.  The page just demanded is exempt — evicting
  // it before the program restarts would be self-defeating.
  if (config_.keep_one_frame_vacant && frames_.free_count() == 0) {
    const bool was_pinned = frames_.info(outcome.frame).pinned;
    frames_.Pin(outcome.frame);
    if (frames_.HasEvictionCandidates()) {
      EvictOne(arrival);
    }
    if (!was_pinned) {
      frames_.Unpin(outcome.frame);
    }
  }
  return outcome;
}

void Pager::Release(PageId page, Cycles now) {
  if (auto frame = FrameOf(page)) {
    if (!frames_.info(*frame).pinned) {
      EvictFrame(*frame, now);
    }
  }
}

}  // namespace dsa
