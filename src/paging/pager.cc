#include "src/paging/pager.h"

#include <algorithm>
#include <vector>

#include "src/core/assert.h"
#include "src/core/snapshot.h"
#include "src/obs/tracer.h"

namespace dsa {

namespace {
// The flat pager owns a single backing store; the injector sees it as
// level 0 (the hierarchy pager uses 0 = drum, 1 = disk).
constexpr std::size_t kBackingLevel = 0;
}  // namespace

const char* ToString(PageAccessErrorKind kind) {
  switch (kind) {
    case PageAccessErrorKind::kTransferFailed:
      return "transfer-failed";
    case PageAccessErrorKind::kSlotUnreadable:
      return "slot-unreadable";
    case PageAccessErrorKind::kNoUsableFrames:
      return "no-usable-frames";
  }
  return "?";
}

Pager::Pager(PagerConfig config, BackingStore* backing, TransferChannel* channel,
             std::unique_ptr<ReplacementPolicy> replacement, std::unique_ptr<FetchPolicy> fetch,
             AdviceRegistry* advice, FaultInjector* injector)
    : config_(config),
      backing_(backing),
      channel_(channel),
      replacement_(std::move(replacement)),
      fetch_(std::move(fetch)),
      advice_(advice),
      injector_(injector),
      frames_(config.frames) {
  DSA_ASSERT(backing_ != nullptr, "pager needs a backing store");
  DSA_ASSERT(replacement_ != nullptr, "pager needs a replacement policy");
  DSA_ASSERT(fetch_ != nullptr, "pager needs a fetch policy");
  if (config_.touch_idle_threshold == 0) {
    config_.touch_idle_threshold = config_.page_words;
  }
  stats_.reliability.residual_frames = frames_.usable_frame_count();
}

std::optional<FrameId> Pager::FrameOf(PageId page) const {
  auto it = resident_.find(page.value);
  if (it == resident_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Pager::AdviseWillNeed(PageId page) {
  if (advice_ != nullptr && !IsResident(page)) {
    advice_->AdviseWillNeed(page);
  }
}

void Pager::AdviseWontNeed(PageId page) {
  if (advice_ != nullptr) {
    advice_->AdviseWontNeed(page);
  }
}

void Pager::AdviseKeepResident(PageId page) {
  if (advice_ == nullptr) {
    return;
  }
  advice_->AdviseKeepResident(page);
  if (auto frame = FrameOf(page)) {
    frames_.Pin(*frame);
  }
}

BackingStore::SlotId Pager::SlotFor(PageId page) const {
  auto it = slot_of_.find(page.value);
  return it != slot_of_.end() ? it->second : page.value;
}

void Pager::SyncRetirementStats() {
  stats_.reliability.retired_frames = frames_.retired_count();
  stats_.reliability.residual_frames = frames_.usable_frame_count();
}

Status<PageAccessError> Pager::WriteBack(PageId page, Cycles now) {
  ReliabilityStats& rel = stats_.reliability;
  const int max_retries = injector_ != nullptr ? injector_->max_retries() : 0;
  for (int attempt = 0;; ++attempt) {
    BackingStore::SlotId slot = SlotFor(page);
    if (backing_->IsBad(slot)) {
      // The page's home sector is gone; relocate to a spare slot.
      const auto spare = backing_->AllocateSpareSlot(config_.page_words);
      if (!spare.has_value()) {
        ++rel.lost_pages;
        DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                       static_cast<std::uint64_t>(RecoveryAction::kPageLost));
        return MakeUnexpected(PageAccessError{PageAccessErrorKind::kSlotUnreadable, page, 0});
      }
      slot_of_[page.value] = *spare;
      slot = *spare;
      ++rel.relocations;
      DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                     static_cast<std::uint64_t>(RecoveryAction::kRelocation));
    }
    // Write-back transfers occupy the channel but are buffered off the
    // program's critical path; later fetches queue behind them.
    DSA_TRACE_EMIT(tracer_, EventKind::kTransferStart, page.value, kBackingLevel,
                   /*direction=*/1);
    std::vector<Word> data(config_.page_words, Word{0});
    if (channel_ != nullptr) {
      channel_->Schedule(backing_->level(), config_.page_words, now);
    }
    const Cycles store_cycles = backing_->Store(slot, std::move(data));
    stats_.transfer_cycles += store_cycles;
    DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, page.value, kBackingLevel,
                   store_cycles);

    const TransferFaultKind fault = injector_ != nullptr
                                        ? injector_->DrawTransferFault(kBackingLevel)
                                        : TransferFaultKind::kNone;
    if (fault == TransferFaultKind::kNone) {
      return Ok();
    }
    if (fault == TransferFaultKind::kPermanentSlot) {
      // The write-check found a bad sector; the copy that just landed is
      // not durable.  Retire the slot and relocate on the next attempt.
      backing_->MarkBad(slot);
      slot_of_.erase(page.value);
      ++rel.slot_failures;
    } else {
      ++rel.transient_errors;
    }
    if (attempt >= max_retries) {
      ++rel.lost_pages;
      DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                     static_cast<std::uint64_t>(RecoveryAction::kPageLost));
      return MakeUnexpected(PageAccessError{
          fault == TransferFaultKind::kTransient ? PageAccessErrorKind::kTransferFailed
                                                 : PageAccessErrorKind::kSlotUnreadable,
          page, 0});
    }
    ++rel.retries;
    DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                   static_cast<std::uint64_t>(RecoveryAction::kRetry));
  }
}

void Pager::EvictFrame(FrameId frame, Cycles now) {
  const FrameInfo& info = frames_.info(frame);
  DSA_ASSERT(info.occupied, "evicting an empty frame");
  const PageId page = info.page;
  if (info.modified) {
    ++stats_.writebacks;
    // A write-back that exhausts every retry and spare slot loses the page's
    // contents; the eviction still proceeds (recorded by WriteBack).
    (void)WriteBack(page, now);
  }
  replacement_->OnEvict(frame, page);
  frames_.Evict(frame);
  resident_.erase(page.value);
  ++stats_.evictions;
  if (on_evict_) {
    on_evict_(page, frame);
  }
}

FrameId Pager::EvictOne(Cycles now) {
  const FrameId victim = replacement_->ChooseVictim(&frames_, now);
  const FrameInfo& info = frames_.info(victim);
  DSA_ASSERT(info.occupied && !info.pinned, "policy chose an invalid victim");
  DSA_TRACE_EMIT(tracer_, EventKind::kVictimChosen, info.page.value, victim.value);
  EvictFrame(victim, now);
  return victim;
}

bool Pager::RetireFrame(FrameId frame, Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  if (frame.value >= frames_.frame_count()) {
    return false;
  }
  const FrameInfo& info = frames_.info(frame);
  if (info.retired || info.pinned) {
    return false;
  }
  if (frames_.usable_frame_count() <= 1) {
    return false;  // never retire the last frame; the pager must keep paging
  }
  if (info.occupied) {
    EvictFrame(frame, now);
  }
  frames_.RetireFrame(frame);
  SyncRetirementStats();
  return true;
}

Cycles Pager::ChargeFetchTransfer(PageId page, Cycles at) {
  DSA_TRACE_EMIT(tracer_, EventKind::kTransferStart, page.value, kBackingLevel,
                 /*direction=*/0);
  const BackingStore::SlotId slot = SlotFor(page);
  Cycles wait = 0;
  if (backing_->IsBad(slot)) {
    // The page's contents were lost with its sector; the device still spins
    // through a full transfer of zeros from the replacement area.
    const Cycles duration = backing_->level().TransferTime(config_.page_words);
    if (channel_ != nullptr) {
      const TransferChannel::Completion done =
          channel_->Schedule(backing_->level(), config_.page_words, at);
      wait = done.finish - at;
    } else {
      wait = duration;
    }
    stats_.transfer_cycles += duration;
    DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, page.value, kBackingLevel, wait);
    return wait;
  }
  std::vector<Word> data;
  if (channel_ != nullptr) {
    const TransferChannel::Completion done =
        channel_->Schedule(backing_->level(), config_.page_words, at);
    wait = done.finish - at;
    // Account the device time once; Fetch() tracks device-side counters.
    stats_.transfer_cycles += backing_->Fetch(slot, config_.page_words, &data);
  } else {
    wait = backing_->Fetch(slot, config_.page_words, &data);
    stats_.transfer_cycles += wait;
  }
  DSA_TRACE_EMIT(tracer_, EventKind::kTransferComplete, page.value, kBackingLevel, wait);
  return wait;
}

Expected<Cycles, PageAccessError> Pager::FetchInto(PageId page, FrameId frame, Cycles now,
                                                   bool demand) {
  ReliabilityStats& rel = stats_.reliability;
  const int max_retries = injector_ != nullptr ? injector_->max_retries() : 0;
  Cycles wait = 0;
  for (int attempt = 0;; ++attempt) {
    const Cycles attempt_wait = ChargeFetchTransfer(page, now + wait);
    wait += attempt_wait;
    if (attempt > 0) {
      rel.retry_cycles += attempt_wait;
    }
    const TransferFaultKind fault = injector_ != nullptr
                                        ? injector_->DrawTransferFault(kBackingLevel)
                                        : TransferFaultKind::kNone;
    if (fault == TransferFaultKind::kNone) {
      break;
    }
    if (fault == TransferFaultKind::kPermanentSlot) {
      // Bad sector under the read head.  If this slot held the page's only
      // copy the contents are unrecoverable; an empty slot just reads as
      // zeros from anywhere, so nothing is lost.
      const BackingStore::SlotId slot = SlotFor(page);
      const bool had_copy = backing_->Contains(slot);
      backing_->MarkBad(slot);
      slot_of_.erase(page.value);
      ++rel.slot_failures;
      if (had_copy) {
        ++rel.lost_pages;
        DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                       static_cast<std::uint64_t>(RecoveryAction::kPageLost));
        frames_.ReturnFreeFrame(frame);
        return MakeUnexpected(
            PageAccessError{PageAccessErrorKind::kSlotUnreadable, page, wait});
      }
      break;
    }
    ++rel.transient_errors;
    if (attempt >= max_retries) {
      frames_.ReturnFreeFrame(frame);
      return MakeUnexpected(
          PageAccessError{PageAccessErrorKind::kTransferFailed, page, wait});
    }
    ++rel.retries;
    DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                   static_cast<std::uint64_t>(RecoveryAction::kRetry));
  }
  frames_.Load(frame, page, now);
  resident_.emplace(page.value, frame);
  replacement_->OnLoad(frame, page, now);
  if (advice_ != nullptr && advice_->IsKeepResident(page)) {
    frames_.Pin(frame);
  }
  if (on_load_) {
    on_load_(page, frame);
  }
  if (demand) {
    ++stats_.demand_fetches;
  } else {
    ++stats_.extra_fetches;
  }
  return wait;
}

void Pager::ApplyReleases(Cycles now) {
  if (advice_ != nullptr) {
    for (PageId page : advice_->TakeWontNeed()) {
      if (auto frame = FrameOf(page)) {
        if (!frames_.info(*frame).pinned) {
          EvictFrame(*frame, now);
          ++stats_.advised_releases;
        }
      }
    }
  }
  for (FrameId frame : replacement_->FramesToRelease(&frames_, now)) {
    if (frames_.info(frame).occupied && !frames_.info(frame).pinned) {
      EvictFrame(frame, now);
      ++stats_.policy_releases;
    }
  }
}

PageAccessResult Pager::Access(PageId page, AccessKind kind, Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  ++stats_.accesses;
  if (advice_ != nullptr) {
    advice_->OnAccess(page);
  }
  const bool write = kind == AccessKind::kWrite;

  if (auto frame = FrameOf(page)) {
    frames_.Touch(*frame, now, write, config_.touch_idle_threshold);
    replacement_->OnAccess(*frame, page, now, write);
    return PageAccessOutcome{false, *frame, 0, 0};
  }

  // --- page fault ----------------------------------------------------------
  ++stats_.faults;
  DSA_TRACE_EMIT(tracer_, EventKind::kPageFault, page.value);
  ApplyReleases(now);

  // Find a frame the new page can land in.  Core parity failures strike as
  // the transfer arrives: the fetch's time is charged, the frame is retired,
  // and the hunt continues with one fewer frame.
  Cycles wasted = 0;  // stall burned on landings that parity-failed
  std::optional<FrameId> frame;
  for (;;) {
    frame = frames_.TakeFreeFrame();
    if (!frame.has_value()) {
      if (!frames_.HasEvictionCandidates()) {
        ++stats_.reliability.failed_accesses;
        stats_.wait_cycles += wasted;
        return MakeUnexpected(
            PageAccessError{PageAccessErrorKind::kNoUsableFrames, page, wasted});
      }
      EvictOne(now);
      const std::optional<FrameId> reclaimed = frames_.TakeFreeFrame();
      DSA_ASSERT(reclaimed.has_value(), "eviction did not free a frame");
      frame = reclaimed;
    }
    if (injector_ == nullptr || frames_.usable_frame_count() <= 1 ||
        !injector_->DrawFrameFailure()) {
      break;
    }
    wasted += ChargeFetchTransfer(page, now + wasted);
    DSA_TRACE_EMIT(tracer_, EventKind::kFaultRecovery, page.value,
                   static_cast<std::uint64_t>(RecoveryAction::kFrameParity));
    frames_.RetireFrame(*frame);
    ++stats_.reliability.frame_failures;
    SyncRetirementStats();
  }

  const Expected<Cycles, PageAccessError> fetched =
      FetchInto(page, *frame, now + wasted, /*demand=*/true);
  if (!fetched.has_value()) {
    PageAccessError error = fetched.error();
    error.wait_cycles += wasted;
    ++stats_.reliability.failed_accesses;
    stats_.wait_cycles += error.wait_cycles;
    return MakeUnexpected(error);
  }

  PageAccessOutcome outcome;
  outcome.faulted = true;
  outcome.frame = *frame;
  outcome.wait_cycles = wasted + *fetched;
  stats_.wait_cycles += outcome.wait_cycles;

  // Piggybacked fetches never force a replacement: they fill free frames
  // only, and their transfer time overlaps the program's restart.
  for (PageId extra : fetch_->ExtraPages(page, now)) {
    if (IsResident(extra)) {
      continue;
    }
    if (page_valid_ && !page_valid_(extra)) {
      continue;
    }
    const std::optional<FrameId> spare = frames_.TakeFreeFrame();
    if (!spare.has_value()) {
      break;
    }
    if (!FetchInto(extra, *spare, now, /*demand=*/false).has_value()) {
      break;  // speculation is best-effort; the frame went back to the pool
    }
    ++outcome.extra_fetches;
  }

  const Cycles arrival = now + outcome.wait_cycles;
  frames_.Touch(outcome.frame, arrival, write, config_.touch_idle_threshold);
  replacement_->OnAccess(outcome.frame, page, arrival, write);

  // ATLAS: restore the vacant frame after the dust settles, off the critical
  // path of the *next* fault.  The page just demanded is exempt — evicting
  // it before the program restarts would be self-defeating.
  if (config_.keep_one_frame_vacant && frames_.free_count() == 0) {
    const bool was_pinned = frames_.info(outcome.frame).pinned;
    frames_.Pin(outcome.frame);
    if (frames_.HasEvictionCandidates()) {
      EvictOne(arrival);
    }
    if (!was_pinned) {
      frames_.Unpin(outcome.frame);
    }
  }
  return outcome;
}

void Pager::Release(PageId page, Cycles now) {
  DSA_TRACE_CLOCK(tracer_, now);
  if (auto frame = FrameOf(page)) {
    if (!frames_.info(*frame).pinned) {
      EvictFrame(*frame, now);
    }
  }
}

namespace {

void SaveU64Map(SnapshotWriter* w, const std::unordered_map<std::uint64_t, FrameId>& map) {
  std::vector<std::uint64_t> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  w->U64(keys.size());
  for (std::uint64_t key : keys) {
    w->U64(key);
    w->U64(map.at(key).value);
  }
}

}  // namespace

void Pager::SaveState(SnapshotWriter* w) const {
  frames_.SaveState(w);
  replacement_->SaveState(w);
  SaveU64Map(w, resident_);
  std::vector<std::uint64_t> relocated;
  relocated.reserve(slot_of_.size());
  for (const auto& [page, slot] : slot_of_) {
    relocated.push_back(page);
  }
  std::sort(relocated.begin(), relocated.end());
  w->U64(relocated.size());
  for (std::uint64_t page : relocated) {
    w->U64(page);
    w->U64(slot_of_.at(page));
  }
  w->U64(stats_.accesses);
  w->U64(stats_.faults);
  w->U64(stats_.demand_fetches);
  w->U64(stats_.extra_fetches);
  w->U64(stats_.writebacks);
  w->U64(stats_.evictions);
  w->U64(stats_.advised_releases);
  w->U64(stats_.policy_releases);
  w->U64(stats_.wait_cycles);
  w->U64(stats_.transfer_cycles);
  const ReliabilityStats& rel = stats_.reliability;
  w->U64(rel.transient_errors);
  w->U64(rel.retries);
  w->U64(rel.retry_cycles);
  w->U64(rel.slot_failures);
  w->U64(rel.relocations);
  w->U64(rel.spill_relocations);
  w->U64(rel.frame_failures);
  w->U64(rel.retired_frames);
  w->U64(rel.residual_frames);
  w->U64(rel.failed_accesses);
  w->U64(rel.lost_pages);
}

void Pager::LoadState(SnapshotReader* r) {
  frames_.LoadState(r);
  replacement_->LoadState(r);
  const std::uint64_t resident_count = r->Count(frames_.frame_count());
  std::unordered_map<std::uint64_t, FrameId> resident;
  resident.reserve(resident_count);
  for (std::uint64_t i = 0; i < resident_count && r->ok(); ++i) {
    const std::uint64_t page = r->U64();
    const FrameId frame{r->U64()};
    if (!r->ok()) {
      return;
    }
    if (frame.value >= frames_.frame_count() || !frames_.info(frame).occupied ||
        frames_.info(frame).page.value != page) {
      r->Fail(SnapshotErrorKind::kBadValue, "residency map disagrees with the frame table");
      return;
    }
    if (!resident.emplace(page, frame).second) {
      r->Fail(SnapshotErrorKind::kBadValue, "page resident in two frames");
      return;
    }
  }
  if (r->ok() && resident_count != frames_.occupied_count()) {
    r->Fail(SnapshotErrorKind::kBadValue, "residency map does not cover every occupied frame");
    return;
  }
  const std::uint64_t relocated_count = r->Count(std::uint64_t{1} << 32);
  std::unordered_map<std::uint64_t, BackingStore::SlotId> slot_of;
  slot_of.reserve(relocated_count);
  for (std::uint64_t i = 0; i < relocated_count && r->ok(); ++i) {
    const std::uint64_t page = r->U64();
    const BackingStore::SlotId slot = r->U64();
    if (!slot_of.emplace(page, slot).second) {
      r->Fail(SnapshotErrorKind::kBadValue, "page relocated twice in the slot map");
      return;
    }
  }
  PagerStats stats;
  stats.accesses = r->U64();
  stats.faults = r->U64();
  stats.demand_fetches = r->U64();
  stats.extra_fetches = r->U64();
  stats.writebacks = r->U64();
  stats.evictions = r->U64();
  stats.advised_releases = r->U64();
  stats.policy_releases = r->U64();
  stats.wait_cycles = r->U64();
  stats.transfer_cycles = r->U64();
  ReliabilityStats& rel = stats.reliability;
  rel.transient_errors = r->U64();
  rel.retries = r->U64();
  rel.retry_cycles = r->U64();
  rel.slot_failures = r->U64();
  rel.relocations = r->U64();
  rel.spill_relocations = r->U64();
  rel.frame_failures = r->U64();
  rel.retired_frames = r->U64();
  rel.residual_frames = r->U64();
  rel.failed_accesses = r->U64();
  rel.lost_pages = r->U64();
  if (!r->ok()) {
    return;
  }
  resident_ = std::move(resident);
  slot_of_ = std::move(slot_of);
  stats_ = stats;
}

}  // namespace dsa
