#include "src/paging/m44_class.h"

#include <array>
#include <vector>

#include "src/core/assert.h"

namespace dsa {

FrameId M44ClassReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");

  // Class 0: unused, clean.  Class 1: unused, dirty.
  // Class 2: used, clean.    Class 3: used, dirty.
  std::array<std::vector<FrameId>, 4> classes;
  for (FrameId f : candidates) {
    const FrameInfo& info = frames->info(f);
    const std::size_t cls =
        (info.use ? 2u : 0u) + (info.modified ? 1u : 0u);
    classes[cls].push_back(f);
  }

  FrameId victim{0};
  for (const auto& cls : classes) {
    if (!cls.empty()) {
      victim = cls[rng_.Below(cls.size())];
      break;
    }
  }

  // Start a fresh usage-observation window for the next decision.
  for (FrameId f : candidates) {
    frames->ClearUse(f);
  }
  return victim;
}

}  // namespace dsa
