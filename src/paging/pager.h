// The pager: binds the frame table, a replacement strategy, a fetch
// strategy, the advice registry, and the backing-store timing into the
// storage allocation engine of a paged system.
//
// The pager deals in opaque page ids; callers that page segments pack
// (segment, page) pairs into the id.  Residency callbacks keep whatever
// address mapper is in use coherent with the frame table.
//
// With a FaultInjector attached the pager becomes resilient rather than
// merely correct: transient transfer errors are retried (bounded by
// max_retries) with fresh latency charges, permanently failed backing slots
// relocate their pages to spare slots, and core frames that take parity
// hits are retired from service — the pager keeps running with one fewer
// frame.  An access that exhausts every recovery returns a PageAccessError
// instead of aborting.  With no injector (or a zero-rate one) behaviour is
// bit-identical to the fault-free pager.

#ifndef SRC_PAGING_PAGER_H_
#define SRC_PAGING_PAGER_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/core/expected.h"
#include "src/core/types.h"
#include "src/mem/backing_store.h"
#include "src/mem/channel.h"
#include "src/mem/fault_injection.h"
#include "src/paging/advice.h"
#include "src/paging/fetch.h"
#include "src/paging/frame_table.h"
#include "src/paging/replacement.h"
#include "src/stats/reliability.h"

namespace dsa {

struct PagerConfig {
  WordCount page_words{512};
  std::size_t frames{32};
  // ATLAS: "the replacement strategy ... is used to ensure that one page
  // frame is kept vacant, ready for the next page demand."  Replacement then
  // happens after the fetch, off the fault's critical path.
  bool keep_one_frame_vacant{false};
  // Gap beyond which a quiet spell counts as a completed inactivity period
  // for the learning policy's sensors; defaults to the page size (one
  // page-sweep's worth of references).
  Cycles touch_idle_threshold{0};  // 0 => use page_words
};

struct PageAccessOutcome {
  bool faulted{false};
  FrameId frame;
  Cycles wait_cycles{0};        // stall time the program sees
  std::size_t extra_fetches{0};  // prefetch/advice fetches piggybacked on the fault
};

// Why an access could not be completed.  Only reachable with a fault
// injector attached (or with every frame pinned/retired); the fault-free
// pager never returns one.
enum class PageAccessErrorKind : std::uint8_t {
  kTransferFailed,  // transient transfer errors exhausted max_retries
  kSlotUnreadable,  // the only backing copy sat on a slot that went bad
  kNoUsableFrames,  // every frame is pinned or retired; nothing to evict
};

const char* ToString(PageAccessErrorKind kind);

struct PageAccessError {
  PageAccessErrorKind kind{PageAccessErrorKind::kTransferFailed};
  PageId page;
  // Stall the program saw before the pager gave up (retries charge time
  // even when they fail); callers advance their clocks by this.
  Cycles wait_cycles{0};
};

using PageAccessResult = Expected<PageAccessOutcome, PageAccessError>;

struct PagerStats {
  std::uint64_t accesses{0};
  std::uint64_t faults{0};
  std::uint64_t demand_fetches{0};
  std::uint64_t extra_fetches{0};   // prefetched or advised
  std::uint64_t writebacks{0};
  std::uint64_t evictions{0};
  std::uint64_t advised_releases{0};
  std::uint64_t policy_releases{0};  // working-set style voluntary shrink
  Cycles wait_cycles{0};
  Cycles transfer_cycles{0};
  ReliabilityStats reliability;

  double FaultRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(faults) / static_cast<double>(accesses);
  }
};

class Pager {
 public:
  using LoadCallback = std::function<void(PageId page, FrameId frame)>;
  using EvictCallback = std::function<void(PageId page, FrameId frame)>;

  // `channel` may be null (transfers then cost pure level latency with no
  // queueing).  `advice` may be null (no predictive directives accepted).
  // `injector` may be null (all transfers succeed, all frames stay good).
  Pager(PagerConfig config, BackingStore* backing, TransferChannel* channel,
        std::unique_ptr<ReplacementPolicy> replacement, std::unique_ptr<FetchPolicy> fetch,
        AdviceRegistry* advice, FaultInjector* injector = nullptr);

  // Attaches the shared event tracer (forwarded to the frame table).  The
  // pager advances the tracer's watermark clock at every externally-timed
  // entry point, then emits fault / victim / transfer / recovery events.
  void SetTracer(EventTracer* tracer) {
    tracer_ = tracer;
    frames_.SetTracer(tracer);
  }

  void SetResidencyCallbacks(LoadCallback on_load, EvictCallback on_evict) {
    on_load_ = std::move(on_load);
    on_evict_ = std::move(on_evict);
  }

  // Attaches the shared-storage binder (forwarded to the frame table): every
  // frame this pager occupies is then backed by a block from the shared
  // concurrent heap.  Attach before the first access.
  void SetBackingBinder(FrameBackingBinder* binder) { frames_.SetBackingBinder(binder); }

  // Restricts which page ids the fetch policy may bring in speculatively
  // (e.g. keys past the end of a segment's page table).  Demanded pages are
  // assumed valid by construction.
  void SetPageValidator(std::function<bool(PageId)> valid) { page_valid_ = std::move(valid); }

  // Performs one reference.  On a fault this selects victims, writes back
  // dirty pages, fetches the page (plus any policy extras), and reports the
  // stall time.  Returns a PageAccessError when every recovery path is
  // exhausted; the page is then simply not resident and the program may
  // retry or give up.
  PageAccessResult Access(PageId page, AccessKind kind, Cycles now);

  // Takes a frame out of service (an external parity report, or the
  // degradation bench's retirement schedule).  A resident page is first
  // evicted (writing back if dirty).  Returns false — and does nothing —
  // when the frame is pinned, already retired, or the last usable frame.
  bool RetireFrame(FrameId frame, Cycles now);

  bool IsResident(PageId page) const { return resident_.contains(page.value); }
  std::optional<FrameId> FrameOf(PageId page) const;

  // Advisory interface (routes through the registry when present).
  void AdviseWillNeed(PageId page);
  void AdviseWontNeed(PageId page);
  void AdviseKeepResident(PageId page);

  // Releases a resident page immediately (writing back if dirty).
  void Release(PageId page, Cycles now);

  const FrameTable& frames() const { return frames_; }
  const PagerStats& stats() const { return stats_; }
  const ReplacementPolicy& replacement() const { return *replacement_; }
  const PagerConfig& config() const { return config_; }

  // Resident words right now (the space term of the space-time product).
  WordCount ResidentWords() const { return frames_.occupied_count() * config_.page_words; }

  // Checkpoint serialization: the frame table, the replacement policy's
  // decision state, the residency and relocation maps (sorted by page id),
  // and the full stats block.  The attached stores, channel, advice registry
  // and injector are serialized by their owners; the fetch policy is
  // stateless.  LoadState cross-checks the residency map against the frame
  // table (same page, occupied frame, full coverage) and reports mismatches
  // through the reader.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  // Frees one frame via the replacement policy; returns it.
  FrameId EvictOne(Cycles now);
  // Vacates a specific frame, writing back if modified.
  void EvictFrame(FrameId frame, Cycles now);
  // Transfers `page` into `frame`; returns the program-visible wait.  On
  // error the frame has been returned to the free pool.
  Expected<Cycles, PageAccessError> FetchInto(PageId page, FrameId frame, Cycles now,
                                              bool demand);
  // Writes the page's core copy out to its backing slot, retrying and
  // relocating around failed slots; an error means the contents are lost.
  Status<PageAccessError> WriteBack(PageId page, Cycles now);
  // Charges one fetch transfer (channel occupancy + device time) issued at
  // `at`; returns the program-visible wait of that single attempt.
  Cycles ChargeFetchTransfer(PageId page, Cycles at);
  // The page's current backing slot (relocations move pages off their
  // identity slot).
  BackingStore::SlotId SlotFor(PageId page) const;
  // Applies wont-need advice and policy shrink before hunting for frames.
  void ApplyReleases(Cycles now);
  // Refreshes the retirement gauges after a frame leaves service.
  void SyncRetirementStats();

  PagerConfig config_;
  EventTracer* tracer_{nullptr};
  BackingStore* backing_;
  TransferChannel* channel_;
  std::unique_ptr<ReplacementPolicy> replacement_;
  std::unique_ptr<FetchPolicy> fetch_;
  AdviceRegistry* advice_;
  FaultInjector* injector_;
  FrameTable frames_;
  std::unordered_map<std::uint64_t, FrameId> resident_;
  // Pages relocated off their identity slot by permanent slot failures.
  std::unordered_map<std::uint64_t, BackingStore::SlotId> slot_of_;
  LoadCallback on_load_;
  EvictCallback on_evict_;
  std::function<bool(PageId)> page_valid_;
  PagerStats stats_;
};

}  // namespace dsa

#endif  // SRC_PAGING_PAGER_H_
