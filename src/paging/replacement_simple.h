// The history-based workhorse policies: FIFO, LRU, random, and the
// "essentially cyclical" strategy the B5000 used (a clock sweep over the
// use sensors).

#ifndef SRC_PAGING_REPLACEMENT_SIMPLE_H_
#define SRC_PAGING_REPLACEMENT_SIMPLE_H_

#include "src/core/rng.h"
#include "src/paging/replacement.h"

namespace dsa {

// Overlays the page that has been resident longest, ignoring use entirely.
// Exhibits Belady's anomaly (more frames can mean more faults), which the
// property tests demonstrate on the classic reference string.
class FifoReplacement : public ReplacementPolicy {
 public:
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kFifo; }
};

// Overlays the page unused for the longest time — pure "recent history of
// usage of information" guidance.
class LruReplacement : public ReplacementPolicy {
 public:
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kLru; }
};

// Overlays a uniformly random candidate: the no-information baseline.
class RandomReplacement : public ReplacementPolicy {
 public:
  explicit RandomReplacement(std::uint64_t seed = 99) : rng_(seed) {}

  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kRandom; }

  void SaveState(SnapshotWriter* w) const override { SaveRngState(w, rng_.State()); }
  void LoadState(SnapshotReader* r) override {
    const RngState state = LoadRngState(r);
    if (r->ok()) {
      rng_.Restore(state);
    }
  }

 private:
  Rng rng_;
};

// Cyclic sweep with second chance: advance a hand over the frames; a frame
// whose use sensor is set gets the sensor cleared and is passed over; the
// first frame found unused is the victim.
class ClockReplacement : public ReplacementPolicy {
 public:
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kClock; }

  void SaveState(SnapshotWriter* w) const override { w->U64(hand_); }
  void LoadState(SnapshotReader* r) override {
    const std::uint64_t hand = r->U64();
    if (r->ok()) {
      hand_ = hand;
    }
  }

 private:
  std::size_t hand_{0};
};

}  // namespace dsa

#endif  // SRC_PAGING_REPLACEMENT_SIMPLE_H_
