#include "src/paging/working_set.h"

#include "src/core/assert.h"

namespace dsa {

FrameId WorkingSetReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");

  // Prefer any page that has left the working set (idle > tau); among those,
  // the one idle longest.  Otherwise fall back to plain LRU.
  FrameId victim = candidates.front();
  Cycles oldest_use = frames->info(victim).last_use;
  for (FrameId f : candidates) {
    const Cycles last_use = frames->info(f).last_use;
    if (last_use < oldest_use) {
      oldest_use = last_use;
      victim = f;
    }
  }
  return victim;  // the LRU page is outside tau iff any page is
}

std::vector<FrameId> WorkingSetReplacement::FramesToRelease(FrameTable* frames, Cycles now) {
  std::vector<FrameId> out;
  for (FrameId f : frames->EvictionCandidates()) {
    const Cycles last_use = frames->info(f).last_use;
    if (now > last_use && now - last_use > tau_) {
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace dsa
