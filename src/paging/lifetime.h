// The lifetime function and fault-rate curve (after Belady [1], the paper's
// reference for replacement evaluation).
//
// For a page reference string and a replacement policy, the *fault-rate
// curve* gives faults/reference at each memory size, and the *lifetime
// function* its reciprocal — the mean number of references a program
// executes between faults ("the length of time for which a program can run
// before a transfer is needed").  Both are the standard summaries the
// replacement experiments (E4) report.

#ifndef SRC_PAGING_LIFETIME_H_
#define SRC_PAGING_LIFETIME_H_

#include <cstdint>
#include <vector>

#include "src/core/strategy.h"
#include "src/core/types.h"

namespace dsa {

struct LifetimePoint {
  std::size_t frames{0};
  std::uint64_t faults{0};
  double fault_rate{0.0};
  // Mean references between faults; the full trace length when no fault
  // occurred beyond the compulsory ones.
  double mean_lifetime{0.0};
};

struct LifetimeCurve {
  ReplacementStrategyKind policy{};
  std::vector<LifetimePoint> points;

  // The smallest measured memory size whose fault rate is within
  // `tolerance` of the largest memory's — the knee a system designer would
  // provision for.  Returns 0 for an empty curve.
  std::size_t KneeFrames(double tolerance = 0.10) const;
};

// Runs `refs` through a latency-free pager at each memory size in `frames`
// (ascending) under `policy`, producing one curve.  For kOpt the reference
// string itself supplies the future.
LifetimeCurve ComputeLifetimeCurve(const std::vector<PageId>& refs,
                                   const std::vector<std::size_t>& frames,
                                   ReplacementStrategyKind policy,
                                   std::uint64_t seed = 1234);

}  // namespace dsa

#endif  // SRC_PAGING_LIFETIME_H_
