// Belady's offline optimal policy (MIN), per reference [1] of the paper:
// overlay the resident page whose next use lies farthest in the future.
//
// OPT needs the future, so it is constructed from the full page reference
// string and tracks its position by counting OnAccess notifications.  It is
// the lower bound every online policy is measured against in experiment E4.

#ifndef SRC_PAGING_OPT_H_
#define SRC_PAGING_OPT_H_

#include <unordered_map>
#include <vector>

#include "src/paging/replacement.h"

namespace dsa {

class OptReplacement : public ReplacementPolicy {
 public:
  explicit OptReplacement(std::vector<PageId> page_string);

  void OnAccess(FrameId frame, PageId page, Cycles now, bool write) override;
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kOpt; }

  std::size_t position() const { return position_; }

 private:
  // Position of the next use of `page` at or after `from`; or npos if never
  // used again.
  std::size_t NextUse(PageId page, std::size_t from) const;

  std::vector<PageId> page_string_;
  // page -> sorted positions at which it is referenced
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> uses_;
  std::size_t position_{0};
};

}  // namespace dsa

#endif  // SRC_PAGING_OPT_H_
