// Belady's offline optimal policy (MIN), per reference [1] of the paper:
// overlay the resident page whose next use lies farthest in the future.
//
// OPT needs the future, so it is constructed from the full page reference
// string and tracks its position by counting OnAccess notifications.  It is
// the lower bound every online policy is measured against in experiment E4.

#ifndef SRC_PAGING_OPT_H_
#define SRC_PAGING_OPT_H_

#include <unordered_map>
#include <vector>

#include "src/core/snapshot.h"
#include "src/paging/replacement.h"

namespace dsa {

class OptReplacement : public ReplacementPolicy {
 public:
  explicit OptReplacement(std::vector<PageId> page_string);

  void OnAccess(FrameId frame, PageId page, Cycles now, bool write) override;
  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kOpt; }

  std::size_t position() const { return position_; }

  // Only the cursor is mutable; the reference string and its use index are
  // construction-time inputs.
  void SaveState(SnapshotWriter* w) const override { w->U64(position_); }
  void LoadState(SnapshotReader* r) override {
    const std::uint64_t position = r->U64();
    if (r->ok() && position > page_string_.size()) {
      r->Fail(SnapshotErrorKind::kBadValue, "opt cursor past the reference string");
      return;
    }
    if (r->ok()) {
      position_ = position;
    }
  }

 private:
  // Position of the next use of `page` at or after `from`; or npos if never
  // used again.
  std::size_t NextUse(PageId page, std::size_t from) const;

  std::vector<PageId> page_string_;
  // page -> sorted positions at which it is referenced
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> uses_;
  std::size_t position_{0};
};

}  // namespace dsa

#endif  // SRC_PAGING_OPT_H_
