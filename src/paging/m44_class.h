// The M44/44X replacement algorithm (Appendix A.2; also Belady [1]).
//
// "One of particular interest selects at random from a set of equally
// acceptable candidates determined on the basis of frequency of usage and
// whether or not a page has been modified."
//
// Candidates are ranked into four classes by the (use, modified) sensor
// pair; unused-and-clean pages are the cheapest to overlay (no write-back,
// no recent use), unused-but-dirty next, and so on.  The victim is drawn
// uniformly at random from the lowest nonempty class.  Use sensors are
// cleared after every decision, so `use` approximates frequency of usage
// over the inter-fault window.

#ifndef SRC_PAGING_M44_CLASS_H_
#define SRC_PAGING_M44_CLASS_H_

#include "src/core/rng.h"
#include "src/paging/replacement.h"

namespace dsa {

class M44ClassReplacement : public ReplacementPolicy {
 public:
  explicit M44ClassReplacement(std::uint64_t seed = 44) : rng_(seed) {}

  FrameId ChooseVictim(FrameTable* frames, Cycles now) override;
  ReplacementStrategyKind kind() const override { return ReplacementStrategyKind::kM44Class; }

  void SaveState(SnapshotWriter* w) const override { SaveRngState(w, rng_.State()); }
  void LoadState(SnapshotReader* r) override {
    const RngState state = LoadRngState(r);
    if (r->ok()) {
      rng_.Restore(state);
    }
  }

 private:
  Rng rng_;
};

}  // namespace dsa

#endif  // SRC_PAGING_M44_CLASS_H_
