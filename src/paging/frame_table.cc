#include "src/paging/frame_table.h"

#include "src/core/assert.h"

namespace dsa {

FrameTable::FrameTable(std::size_t frames) : frames_(frames) {
  DSA_ASSERT(frames > 0, "frame table needs at least one frame");
  free_.reserve(frames);
  // Stack ordered so the lowest index pops first.
  for (std::size_t f = frames; f > 0; --f) {
    free_.push_back(FrameId{f - 1});
  }
}

const FrameInfo& FrameTable::info(FrameId frame) const {
  DSA_ASSERT(frame.value < frames_.size(), "frame out of range");
  return frames_[frame.value];
}

FrameInfo& FrameTable::MutableInfo(FrameId frame) {
  DSA_ASSERT(frame.value < frames_.size(), "frame out of range");
  return frames_[frame.value];
}

std::optional<FrameId> FrameTable::TakeFreeFrame() {
  if (free_.empty()) {
    return std::nullopt;
  }
  const FrameId frame = free_.back();
  free_.pop_back();
  return frame;
}

void FrameTable::Load(FrameId frame, PageId page, Cycles now) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(!info.occupied, "loading into an occupied frame");
  info = FrameInfo{};
  info.occupied = true;
  info.page = page;
  info.load_time = now;
  info.last_use = now;
  ++occupied_;
}

void FrameTable::Evict(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "evicting an empty frame");
  DSA_ASSERT(!info.pinned, "evicting a pinned frame");
  info = FrameInfo{};
  free_.push_back(frame);
  --occupied_;
}

void FrameTable::Touch(FrameId frame, Cycles now, bool write, Cycles idle_threshold) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "touching an empty frame");
  const Cycles idle = now > info.last_use ? now - info.last_use : 0;
  if (idle > idle_threshold) {
    // A period of inactivity just ended; remember its length for the ATLAS
    // learning program's next-use prediction.
    info.previous_idle = idle;
  }
  info.use = true;
  if (write) {
    info.modified = true;
  }
  info.last_use = now;
}

void FrameTable::Pin(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "pinning an empty frame");
  info.pinned = true;
}

void FrameTable::Unpin(FrameId frame) { MutableInfo(frame).pinned = false; }

void FrameTable::ClearUse(FrameId frame) { MutableInfo(frame).use = false; }

void FrameTable::ClearModified(FrameId frame) { MutableInfo(frame).modified = false; }

std::vector<FrameId> FrameTable::EvictionCandidates() const {
  std::vector<FrameId> candidates;
  candidates.reserve(occupied_);
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    if (frames_[f].occupied && !frames_[f].pinned) {
      candidates.push_back(FrameId{f});
    }
  }
  return candidates;
}

}  // namespace dsa
