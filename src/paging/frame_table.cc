#include "src/paging/frame_table.h"

#include "src/core/assert.h"
#include "src/core/snapshot.h"
#include "src/obs/tracer.h"
#include "src/paging/backing_binder.h"

namespace dsa {

FrameTable::FrameTable(std::size_t frames)
    : frames_(frames), fifo_(frames + 1), lru_(frames + 1) {
  DSA_ASSERT(frames > 0, "frame table needs at least one frame");
  free_.reserve(frames);
  // Stack ordered so the lowest index pops first.
  for (std::size_t f = frames; f > 0; --f) {
    free_.push_back(FrameId{f - 1});
  }
  // Both lists start empty: the sentinel points at itself.
  fifo_[frames] = Link{frames, frames};
  lru_[frames] = Link{frames, frames};
}

void FrameTable::SetBackingBinder(FrameBackingBinder* binder) {
  DSA_ASSERT(binder == nullptr || occupied_ == 0,
             "backing binder must attach to an empty frame table");
  binder_ = binder;
}

const FrameInfo& FrameTable::info(FrameId frame) const {
  DSA_ASSERT(frame.value < frames_.size(), "frame out of range");
  return frames_[frame.value];
}

FrameInfo& FrameTable::MutableInfo(FrameId frame) {
  DSA_ASSERT(frame.value < frames_.size(), "frame out of range");
  return frames_[frame.value];
}

void FrameTable::ListRemove(std::vector<Link>& list, std::size_t node) {
  list[list[node].prev].next = list[node].next;
  list[list[node].next].prev = list[node].prev;
}

void FrameTable::ListPushBack(std::vector<Link>& list, std::size_t node) {
  const std::size_t sentinel = frames_.size();
  list[node].prev = list[sentinel].prev;
  list[node].next = sentinel;
  list[list[sentinel].prev].next = node;
  list[sentinel].prev = node;
}

std::optional<FrameId> FrameTable::FirstUnpinned(const std::vector<Link>& list) const {
  const std::size_t sentinel = frames_.size();
  for (std::size_t node = list[sentinel].next; node != sentinel; node = list[node].next) {
    if (!frames_[node].pinned) {
      return FrameId{node};
    }
  }
  return std::nullopt;
}

std::optional<FrameId> FrameTable::OldestLoadedCandidate() const {
  return FirstUnpinned(fifo_);
}

std::optional<FrameId> FrameTable::LeastRecentlyUsedCandidate() const {
  return FirstUnpinned(lru_);
}

std::optional<FrameId> FrameTable::TakeFreeFrame() {
  if (free_.empty()) {
    return std::nullopt;
  }
  const FrameId frame = free_.back();
  free_.pop_back();
  return frame;
}

void FrameTable::ReturnFreeFrame(FrameId frame) {
  const FrameInfo& returned = info(frame);
  DSA_ASSERT(!returned.occupied, "returning an occupied frame to the free pool");
  DSA_ASSERT(!returned.retired, "returning a retired frame to the free pool");
  free_.push_back(frame);
}

void FrameTable::RetireFrame(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(!info.occupied, "retiring an occupied frame; evict its page first");
  DSA_ASSERT(!info.retired, "retiring a frame twice");
  // The frame is either in the free pool or in the taken-but-never-loaded
  // limbo a failed fetch leaves behind; drop any free-pool entry so
  // TakeFreeFrame can never hand it out again.
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i] == frame) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  info = FrameInfo{};
  info.retired = true;
  ++retired_;
  DSA_TRACE_EMIT(tracer_, EventKind::kFrameRetire, frame.value);
}

void FrameTable::Load(FrameId frame, PageId page, Cycles now) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(!info.occupied, "loading into an occupied frame");
  DSA_ASSERT(!info.retired, "loading into a retired frame");
  info = FrameInfo{};
  info.occupied = true;
  info.page = page;
  info.load_time = now;
  info.last_use = now;
  ++occupied_;
  ListPushBack(fifo_, frame.value);
  ListPushBack(lru_, frame.value);
  if (binder_ != nullptr) {
    binder_->AcquireFrameBlock(frame);
  }
  DSA_TRACE_EMIT(tracer_, EventKind::kFrameLoad, page.value, frame.value);
}

void FrameTable::Evict(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "evicting an empty frame");
  DSA_ASSERT(!info.pinned, "evicting a pinned frame");
  DSA_TRACE_EMIT(tracer_, EventKind::kFrameEvict, info.page.value, frame.value);
  info = FrameInfo{};
  free_.push_back(frame);
  --occupied_;
  ListRemove(fifo_, frame.value);
  ListRemove(lru_, frame.value);
  if (binder_ != nullptr) {
    binder_->ReleaseFrameBlock(frame);
  }
}

void FrameTable::Touch(FrameId frame, Cycles now, bool write, Cycles idle_threshold) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "touching an empty frame");
  const Cycles idle = now > info.last_use ? now - info.last_use : 0;
  if (idle > idle_threshold) {
    // A period of inactivity just ended; remember its length for the ATLAS
    // learning program's next-use prediction.
    info.previous_idle = idle;
  }
  info.use = true;
  if (write) {
    info.modified = true;
  }
  info.last_use = now;
  ListRemove(lru_, frame.value);
  ListPushBack(lru_, frame.value);
}

void FrameTable::Pin(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "pinning an empty frame");
  if (!info.pinned) {
    ++pinned_;
  }
  info.pinned = true;
}

void FrameTable::Unpin(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  if (info.pinned) {
    --pinned_;
  }
  info.pinned = false;
}

void FrameTable::ClearUse(FrameId frame) { MutableInfo(frame).use = false; }

void FrameTable::ClearModified(FrameId frame) { MutableInfo(frame).modified = false; }

void FrameTable::SaveState(SnapshotWriter* w) const {
  // Each intrusive list is serialized as its head-to-tail frame sequence; the
  // sequence, not the raw links, because a sequence can be validated (every
  // member occupied, no duplicates, all occupied frames present) before any
  // pointer surgery happens.
  const std::size_t sentinel = frames_.size();
  const auto save_order = [&](const std::vector<Link>& list) {
    w->U64(occupied_);
    for (std::size_t node = list[sentinel].next; node != sentinel; node = list[node].next) {
      w->U64(node);
    }
  };
  w->U64(frames_.size());
  for (const FrameInfo& info : frames_) {
    w->Bool(info.occupied);
    w->Bool(info.pinned);
    w->Bool(info.retired);
    w->U64(info.page.value);
    w->Bool(info.use);
    w->Bool(info.modified);
    w->U64(info.load_time);
    w->U64(info.last_use);
    w->U64(info.previous_idle);
  }
  w->U64(free_.size());
  for (FrameId f : free_) {
    w->U64(f.value);
  }
  save_order(fifo_);
  save_order(lru_);
}

void FrameTable::LoadState(SnapshotReader* r) {
  const std::uint64_t count = r->U64();
  if (r->ok() && count != frames_.size()) {
    r->Fail(SnapshotErrorKind::kBadValue, "frame table size mismatch");
  }
  if (!r->ok()) {
    return;
  }
  std::vector<FrameInfo> frames(frames_.size());
  std::size_t occupied = 0;
  std::size_t pinned = 0;
  std::size_t retired = 0;
  for (FrameInfo& info : frames) {
    info.occupied = r->Bool();
    info.pinned = r->Bool();
    info.retired = r->Bool();
    info.page = PageId{r->U64()};
    info.use = r->Bool();
    info.modified = r->Bool();
    info.load_time = r->U64();
    info.last_use = r->U64();
    info.previous_idle = r->U64();
    occupied += info.occupied ? 1 : 0;
    pinned += info.pinned ? 1 : 0;
    retired += info.retired ? 1 : 0;
    if (info.occupied && info.retired) {
      r->Fail(SnapshotErrorKind::kBadValue, "frame both occupied and retired");
    }
  }
  std::vector<FrameId> free;
  const std::uint64_t free_count = r->Count(frames_.size());
  free.reserve(free_count);
  for (std::uint64_t i = 0; i < free_count; ++i) {
    const std::uint64_t f = r->U64();
    if (r->ok() && (f >= frames.size() || frames[f].occupied || frames[f].retired)) {
      r->Fail(SnapshotErrorKind::kBadValue, "free-pool entry is not a vacant frame");
      return;
    }
    free.push_back(FrameId{f});
  }
  // Rebuild each intrusive list from its serialized order.
  const std::size_t sentinel = frames_.size();
  std::vector<Link> fifo(frames_.size() + 1);
  std::vector<Link> lru(frames_.size() + 1);
  for (std::vector<Link>* list : {&fifo, &lru}) {
    (*list)[sentinel] = Link{sentinel, sentinel};
    const std::uint64_t length = r->Count(frames_.size());
    if (r->ok() && length != occupied) {
      r->Fail(SnapshotErrorKind::kBadValue, "intrusive list order does not cover occupancy");
      return;
    }
    std::vector<bool> seen(frames_.size(), false);
    for (std::uint64_t i = 0; i < length; ++i) {
      const std::uint64_t node = r->U64();
      if (!r->ok()) {
        return;
      }
      if (node >= frames.size() || !frames[node].occupied || seen[node]) {
        r->Fail(SnapshotErrorKind::kBadValue, "intrusive list order names a non-occupied frame");
        return;
      }
      seen[node] = true;
      (*list)[node].prev = (*list)[sentinel].prev;
      (*list)[node].next = sentinel;
      (*list)[(*list)[sentinel].prev].next = node;
      (*list)[sentinel].prev = node;
    }
  }
  if (!r->ok()) {
    return;
  }
  frames_ = std::move(frames);
  free_ = std::move(free);
  occupied_ = occupied;
  pinned_ = pinned;
  retired_ = retired;
  fifo_ = std::move(fifo);
  lru_ = std::move(lru);
  if (binder_ != nullptr) {
    // The restored occupancy replaces whatever the binder held; rebind from
    // scratch so it again holds exactly one block per occupied frame.
    binder_->ReleaseAllFrameBlocks();
    for (std::size_t f = 0; f < frames_.size(); ++f) {
      if (frames_[f].occupied) {
        binder_->AcquireFrameBlock(FrameId{f});
      }
    }
  }
}

std::vector<FrameId> FrameTable::EvictionCandidates() const {
  std::vector<FrameId> candidates;
  candidates.reserve(occupied_);
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    if (frames_[f].occupied && !frames_[f].pinned) {
      candidates.push_back(FrameId{f});
    }
  }
  return candidates;
}

}  // namespace dsa
