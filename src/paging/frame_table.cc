#include "src/paging/frame_table.h"

#include "src/core/assert.h"
#include "src/obs/tracer.h"

namespace dsa {

FrameTable::FrameTable(std::size_t frames)
    : frames_(frames), fifo_(frames + 1), lru_(frames + 1) {
  DSA_ASSERT(frames > 0, "frame table needs at least one frame");
  free_.reserve(frames);
  // Stack ordered so the lowest index pops first.
  for (std::size_t f = frames; f > 0; --f) {
    free_.push_back(FrameId{f - 1});
  }
  // Both lists start empty: the sentinel points at itself.
  fifo_[frames] = Link{frames, frames};
  lru_[frames] = Link{frames, frames};
}

const FrameInfo& FrameTable::info(FrameId frame) const {
  DSA_ASSERT(frame.value < frames_.size(), "frame out of range");
  return frames_[frame.value];
}

FrameInfo& FrameTable::MutableInfo(FrameId frame) {
  DSA_ASSERT(frame.value < frames_.size(), "frame out of range");
  return frames_[frame.value];
}

void FrameTable::ListRemove(std::vector<Link>& list, std::size_t node) {
  list[list[node].prev].next = list[node].next;
  list[list[node].next].prev = list[node].prev;
}

void FrameTable::ListPushBack(std::vector<Link>& list, std::size_t node) {
  const std::size_t sentinel = frames_.size();
  list[node].prev = list[sentinel].prev;
  list[node].next = sentinel;
  list[list[sentinel].prev].next = node;
  list[sentinel].prev = node;
}

std::optional<FrameId> FrameTable::FirstUnpinned(const std::vector<Link>& list) const {
  const std::size_t sentinel = frames_.size();
  for (std::size_t node = list[sentinel].next; node != sentinel; node = list[node].next) {
    if (!frames_[node].pinned) {
      return FrameId{node};
    }
  }
  return std::nullopt;
}

std::optional<FrameId> FrameTable::OldestLoadedCandidate() const {
  return FirstUnpinned(fifo_);
}

std::optional<FrameId> FrameTable::LeastRecentlyUsedCandidate() const {
  return FirstUnpinned(lru_);
}

std::optional<FrameId> FrameTable::TakeFreeFrame() {
  if (free_.empty()) {
    return std::nullopt;
  }
  const FrameId frame = free_.back();
  free_.pop_back();
  return frame;
}

void FrameTable::ReturnFreeFrame(FrameId frame) {
  const FrameInfo& returned = info(frame);
  DSA_ASSERT(!returned.occupied, "returning an occupied frame to the free pool");
  DSA_ASSERT(!returned.retired, "returning a retired frame to the free pool");
  free_.push_back(frame);
}

void FrameTable::RetireFrame(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(!info.occupied, "retiring an occupied frame; evict its page first");
  DSA_ASSERT(!info.retired, "retiring a frame twice");
  // The frame is either in the free pool or in the taken-but-never-loaded
  // limbo a failed fetch leaves behind; drop any free-pool entry so
  // TakeFreeFrame can never hand it out again.
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i] == frame) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  info = FrameInfo{};
  info.retired = true;
  ++retired_;
  DSA_TRACE_EMIT(tracer_, EventKind::kFrameRetire, frame.value);
}

void FrameTable::Load(FrameId frame, PageId page, Cycles now) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(!info.occupied, "loading into an occupied frame");
  DSA_ASSERT(!info.retired, "loading into a retired frame");
  info = FrameInfo{};
  info.occupied = true;
  info.page = page;
  info.load_time = now;
  info.last_use = now;
  ++occupied_;
  ListPushBack(fifo_, frame.value);
  ListPushBack(lru_, frame.value);
  DSA_TRACE_EMIT(tracer_, EventKind::kFrameLoad, page.value, frame.value);
}

void FrameTable::Evict(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "evicting an empty frame");
  DSA_ASSERT(!info.pinned, "evicting a pinned frame");
  DSA_TRACE_EMIT(tracer_, EventKind::kFrameEvict, info.page.value, frame.value);
  info = FrameInfo{};
  free_.push_back(frame);
  --occupied_;
  ListRemove(fifo_, frame.value);
  ListRemove(lru_, frame.value);
}

void FrameTable::Touch(FrameId frame, Cycles now, bool write, Cycles idle_threshold) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "touching an empty frame");
  const Cycles idle = now > info.last_use ? now - info.last_use : 0;
  if (idle > idle_threshold) {
    // A period of inactivity just ended; remember its length for the ATLAS
    // learning program's next-use prediction.
    info.previous_idle = idle;
  }
  info.use = true;
  if (write) {
    info.modified = true;
  }
  info.last_use = now;
  ListRemove(lru_, frame.value);
  ListPushBack(lru_, frame.value);
}

void FrameTable::Pin(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  DSA_ASSERT(info.occupied, "pinning an empty frame");
  if (!info.pinned) {
    ++pinned_;
  }
  info.pinned = true;
}

void FrameTable::Unpin(FrameId frame) {
  FrameInfo& info = MutableInfo(frame);
  if (info.pinned) {
    --pinned_;
  }
  info.pinned = false;
}

void FrameTable::ClearUse(FrameId frame) { MutableInfo(frame).use = false; }

void FrameTable::ClearModified(FrameId frame) { MutableInfo(frame).modified = false; }

std::vector<FrameId> FrameTable::EvictionCandidates() const {
  std::vector<FrameId> candidates;
  candidates.reserve(occupied_);
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    if (frames_[f].occupied && !frames_[f].pinned) {
      candidates.push_back(FrameId{f});
    }
  }
  return candidates;
}

}  // namespace dsa
