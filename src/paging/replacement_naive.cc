#include "src/paging/replacement_naive.h"

#include "src/core/assert.h"

namespace dsa {

FrameId ScanFifoReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");
  FrameId victim = candidates.front();
  for (FrameId f : candidates) {
    if (frames->info(f).load_time < frames->info(victim).load_time) {
      victim = f;
    }
  }
  return victim;
}

FrameId ScanLruReplacement::ChooseVictim(FrameTable* frames, Cycles now) {
  (void)now;
  const auto candidates = frames->EvictionCandidates();
  DSA_ASSERT(!candidates.empty(), "no eviction candidates");
  FrameId victim = candidates.front();
  for (FrameId f : candidates) {
    if (frames->info(f).last_use < frames->info(victim).last_use) {
      victim = f;
    }
  }
  return victim;
}

}  // namespace dsa
