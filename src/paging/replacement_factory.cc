#include "src/paging/replacement_factory.h"

#include "src/core/assert.h"
#include "src/paging/atlas_learning.h"
#include "src/paging/m44_class.h"
#include "src/paging/opt.h"
#include "src/paging/replacement_simple.h"
#include "src/paging/working_set.h"

namespace dsa {

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(ReplacementStrategyKind kind,
                                                         ReplacementOptions options) {
  switch (kind) {
    case ReplacementStrategyKind::kFifo:
      return std::make_unique<FifoReplacement>();
    case ReplacementStrategyKind::kLru:
      return std::make_unique<LruReplacement>();
    case ReplacementStrategyKind::kRandom:
      return std::make_unique<RandomReplacement>(options.seed);
    case ReplacementStrategyKind::kClock:
      return std::make_unique<ClockReplacement>();
    case ReplacementStrategyKind::kAtlasLearning:
      return std::make_unique<AtlasLearningReplacement>(options.atlas_margin);
    case ReplacementStrategyKind::kM44Class:
      return std::make_unique<M44ClassReplacement>(options.seed);
    case ReplacementStrategyKind::kWorkingSet:
      return std::make_unique<WorkingSetReplacement>(options.working_set_tau);
    case ReplacementStrategyKind::kOpt:
      DSA_ASSERT(!options.page_string.empty(), "OPT needs the future reference string");
      return std::make_unique<OptReplacement>(options.page_string);
  }
  DSA_ASSERT(false, "unknown replacement kind");
  return nullptr;
}

std::vector<ReplacementStrategyKind> OnlineReplacementKinds() {
  return {
      ReplacementStrategyKind::kFifo,   ReplacementStrategyKind::kLru,
      ReplacementStrategyKind::kRandom, ReplacementStrategyKind::kClock,
      ReplacementStrategyKind::kAtlasLearning, ReplacementStrategyKind::kM44Class,
      ReplacementStrategyKind::kWorkingSet,
  };
}

}  // namespace dsa
