#include "src/paging/lifetime.h"

#include <memory>

#include "src/core/assert.h"
#include "src/mem/backing_store.h"
#include "src/paging/pager.h"
#include "src/paging/replacement_factory.h"

namespace dsa {

std::size_t LifetimeCurve::KneeFrames(double tolerance) const {
  if (points.empty()) {
    return 0;
  }
  const double floor_rate = points.back().fault_rate;
  for (const LifetimePoint& point : points) {
    if (point.fault_rate <= floor_rate * (1.0 + tolerance) ||
        point.fault_rate - floor_rate < 1e-12) {
      return point.frames;
    }
  }
  return points.back().frames;
}

LifetimeCurve ComputeLifetimeCurve(const std::vector<PageId>& refs,
                                   const std::vector<std::size_t>& frames,
                                   ReplacementStrategyKind policy, std::uint64_t seed) {
  DSA_ASSERT(!refs.empty(), "lifetime curve needs a reference string");
  LifetimeCurve curve;
  curve.policy = policy;
  for (const std::size_t frame_count : frames) {
    DSA_ASSERT(frame_count > 0, "memory sizes must be positive");
    BackingStore backing(MakeDrumLevel("drum", 1u << 22, /*word_time=*/0,
                                       /*rotational_delay=*/0));
    PagerConfig config;
    config.page_words = 1;
    config.frames = frame_count;
    ReplacementOptions options;
    options.seed = seed;
    if (policy == ReplacementStrategyKind::kOpt) {
      options.page_string = refs;
    }
    Pager pager(config, &backing, /*channel=*/nullptr, MakeReplacementPolicy(policy, options),
                std::make_unique<DemandFetch>(), /*advice=*/nullptr);
    Cycles now = 0;
    for (const PageId page : refs) {
      pager.Access(page, AccessKind::kRead, now++);
    }
    LifetimePoint point;
    point.frames = frame_count;
    point.faults = pager.stats().faults;
    point.fault_rate =
        static_cast<double>(point.faults) / static_cast<double>(refs.size());
    point.mean_lifetime = point.faults == 0
                              ? static_cast<double>(refs.size())
                              : static_cast<double>(refs.size()) /
                                    static_cast<double>(point.faults);
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace dsa
