#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

#include "src/core/assert.h"

namespace dsa {

void RunningSummary::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningSummary::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

double Percentiles::Percentile(double p) const {
  DSA_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (values_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const auto n = values_.size();
  // Nearest-rank: ceil(p/100 * n), clamped to [1, n].
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  return values_[rank - 1];
}

}  // namespace dsa
