#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/core/assert.h"

namespace dsa {

namespace {

// "-0.00" and "-0.000e+00" mean the value rounded to zero; drop the sign so
// metrics-backed reports agree with accumulators that produced an exact 0.
std::string DropNegativeZero(std::string text) {
  if (text.empty() || text[0] != '-') {
    return text;
  }
  for (std::size_t i = 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '0' || c == '.' || c == '+' || c == 'e') {
      continue;
    }
    return text;  // a nonzero digit (or nan/inf): genuinely negative
  }
  return text.substr(1);
}

}  // namespace

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return DropNegativeZero(buf);
}

std::string FormatScientific(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return DropNegativeZero(buf);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DSA_ASSERT(!headers_.empty(), "Table needs at least one column");
}

Table& Table::AddRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::AddCell(std::string text) {
  DSA_ASSERT(!rows_.empty(), "AddCell before AddRow");
  DSA_ASSERT(rows_.back().size() < headers_.size(), "row has more cells than headers");
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::AddCell(const char* text) { return AddCell(std::string(text)); }

Table& Table::AddCell(std::uint64_t value) { return AddCell(std::to_string(value)); }

Table& Table::AddCell(std::int64_t value) { return AddCell(std::to_string(value)); }

Table& Table::AddCell(int value) { return AddCell(std::to_string(value)); }

Table& Table::AddCell(double value, int digits) { return AddCell(FormatFixed(value, digits)); }

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      out << ' ' << text;
      for (std::size_t pad = text.size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
      out << " |";
    }
    out << '\n';
  };

  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) {
      out << '-';
    }
    out << "|";
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace dsa
