#include "src/stats/fragmentation.h"

#include <algorithm>

namespace dsa {

double FragmentationReport::ExternalFragmentation() const {
  if (free == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(largest_free) / static_cast<double>(free);
}

double FragmentationReport::InternalFragmentation() const {
  if (allocated == 0) {
    return 0.0;
  }
  return static_cast<double>(allocated - live) / static_cast<double>(allocated);
}

double FragmentationReport::TotalWasteFraction() const {
  if (capacity == 0) {
    return 0.0;
  }
  return static_cast<double>(capacity - live) / static_cast<double>(capacity);
}

FragmentationReport ReportFromHoles(WordCount capacity, WordCount live, WordCount allocated,
                                    const std::vector<WordCount>& hole_sizes) {
  FragmentationReport report;
  report.capacity = capacity;
  report.live = live;
  report.allocated = allocated;
  report.hole_count = hole_sizes.size();
  for (WordCount h : hole_sizes) {
    report.free += h;
    report.largest_free = std::max(report.largest_free, h);
  }
  return report;
}

}  // namespace dsa
