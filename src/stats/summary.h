// Streaming and batch summary statistics used by every experiment harness.

#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <cstdint>
#include <vector>

namespace dsa {

// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class RunningSummary {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  // Sample variance / standard deviation (n-1 denominator).
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

// Batch percentile computation over a retained sample vector.
class Percentiles {
 public:
  void Add(double x) { values_.push_back(x); }
  void Reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }

  // Returns the p-th percentile (0 <= p <= 100) by nearest-rank on the
  // sorted sample.  Returns 0 for an empty sample.
  double Percentile(double p) const;

  double Median() const { return Percentile(50.0); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_{false};
};

}  // namespace dsa

#endif  // SRC_STATS_SUMMARY_H_
