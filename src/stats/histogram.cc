#include "src/stats/histogram.h"

#include <bit>
#include <sstream>

namespace dsa {

int LogHistogram::BucketFor(std::uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return std::bit_width(value);  // value in [2^(w-1), 2^w) => bucket w
}

std::uint64_t LogHistogram::BucketLow(int bucket) {
  if (bucket <= 0) {
    return 0;
  }
  return std::uint64_t{1} << (bucket - 1);
}

std::string LogHistogram::Render(int bar_width) const {
  std::uint64_t max_count = 0;
  for (auto c : counts_) {
    if (c > max_count) {
      max_count = c;
    }
  }
  std::ostringstream out;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(b)];
    if (c == 0) {
      continue;
    }
    const std::uint64_t lo = BucketLow(b);
    const std::uint64_t hi = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
    const int bar =
        max_count == 0 ? 0 : static_cast<int>(c * static_cast<std::uint64_t>(bar_width) / max_count);
    out << "[" << lo << ", " << hi << "]  " << c << "  ";
    for (int i = 0; i < bar; ++i) {
      out << '#';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace dsa
