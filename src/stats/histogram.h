// Power-of-two bucketed histogram, used for request sizes, hole sizes, and
// fault inter-arrival times.

#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace dsa {

class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Add(std::uint64_t value) {
    ++counts_[BucketFor(value)];
    ++total_;
  }

  // Bin-wise addition of another histogram (same fixed bucket layout);
  // used to fold per-cell histograms after a parallel sweep.  Commutative
  // and associative, so any fold order gives the same result.
  void MergeFrom(const LogHistogram& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t BucketCount(int bucket) const { return counts_[static_cast<std::size_t>(bucket)]; }

  // Bucket index: 0 holds value 0, bucket i>0 holds [2^(i-1), 2^i).
  static int BucketFor(std::uint64_t value);

  // Inclusive lower bound of a bucket.
  static std::uint64_t BucketLow(int bucket);

  // Multi-line ASCII rendering: one row per nonempty bucket with a bar.
  std::string Render(int bar_width = 40) const;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_{0};
};

}  // namespace dsa

#endif  // SRC_STATS_HISTOGRAM_H_
