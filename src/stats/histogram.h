// Power-of-two bucketed histogram, used for request sizes, hole sizes, and
// fault inter-arrival times.

#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/core/snapshot.h"

namespace dsa {

class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Add(std::uint64_t value) {
    ++counts_[BucketFor(value)];
    ++total_;
  }

  // Bin-wise addition of another histogram (same fixed bucket layout);
  // used to fold per-cell histograms after a parallel sweep.  Commutative
  // and associative, so any fold order gives the same result.
  void MergeFrom(const LogHistogram& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t BucketCount(int bucket) const { return counts_[static_cast<std::size_t>(bucket)]; }

  // Bucket index: 0 holds value 0, bucket i>0 holds [2^(i-1), 2^i).
  static int BucketFor(std::uint64_t value);

  // Inclusive lower bound of a bucket.
  static std::uint64_t BucketLow(int bucket);

  // Multi-line ASCII rendering: one row per nonempty bucket with a bar.
  std::string Render(int bar_width = 40) const;

  void SaveState(SnapshotWriter* w) const {
    for (std::uint64_t count : counts_) {
      w->U64(count);
    }
    w->U64(total_);
  }
  void LoadState(SnapshotReader* r) {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t sum = 0;
    for (std::uint64_t& count : counts) {
      count = r->U64();
      sum += count;
    }
    const std::uint64_t total = r->U64();
    if (r->ok() && total != sum) {
      r->Fail(SnapshotErrorKind::kBadValue, "histogram total disagrees with its buckets");
      return;
    }
    if (!r->ok()) {
      return;
    }
    counts_ = counts;
    total_ = total;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_{0};
};

}  // namespace dsa

#endif  // SRC_STATS_HISTOGRAM_H_
