// ASCII table rendering for the experiment harnesses.  Every bench binary
// prints its paper-table/figure data through this, so EXPERIMENTS.md rows can
// be regenerated verbatim.

#ifndef SRC_STATS_TABLE_H_
#define SRC_STATS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dsa {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Starts a new row.  Cells are appended with Add* until the next AddRow.
  Table& AddRow();

  Table& AddCell(std::string text);
  Table& AddCell(const char* text);
  Table& AddCell(std::uint64_t value);
  Table& AddCell(std::int64_t value);
  Table& AddCell(int value);
  // Fixed-point with `digits` decimals.
  Table& AddCell(double value, int digits = 2);

  // Renders with column-aligned pipes and a header rule.
  std::string Render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `digits` decimals (helper shared with benches).
// A value that rounds to zero renders as "0.00…", never "-0.00…": reports
// derive gauges by subtraction, and a -1e-18 residue must format exactly
// like the 0.0 the legacy accumulators produced.
std::string FormatFixed(double value, int digits);

// Scientific notation with `digits` mantissa decimals ("1.633e+09"), the
// shared form of the space-time columns; normalizes negative zero like
// FormatFixed.
std::string FormatScientific(double value, int digits);

}  // namespace dsa

#endif  // SRC_STATS_TABLE_H_
