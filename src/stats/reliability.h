// Reliability accounting for the fault-injection and resilience layer.
//
// Every counter here is driven by deterministic, seeded fault draws (see
// src/mem/fault_injection.h), so for a fixed injector seed and a fixed
// reference trace the whole struct is byte-identical across runs and
// platforms.  Pagers embed one of these in their stats; VmReport carries it
// up to examples and benches.

#ifndef SRC_STATS_RELIABILITY_H_
#define SRC_STATS_RELIABILITY_H_

#include <cstdint>
#include <string>

#include "src/core/types.h"

namespace dsa {

struct ReliabilityStats {
  // Transient transfer errors (drum parity / missed revolution): the
  // transfer is re-issued on the same channel with a fresh latency charge.
  std::uint64_t transient_errors{0};
  std::uint64_t retries{0};       // retry transfers actually issued
  Cycles retry_cycles{0};         // extra stall attributable to retries

  // Permanent slot failures (bad sector): the backing slot is retired and
  // the page moves to a spare slot, or spills to the next backing level.
  std::uint64_t slot_failures{0};
  std::uint64_t relocations{0};        // re-homed to a spare slot, same level
  std::uint64_t spill_relocations{0};  // pushed down to the next level

  // Core frame failures (parity hit): the frame is retired from service.
  std::uint64_t frame_failures{0};  // parity hits that forced retirement
  std::uint64_t retired_frames{0};  // all frames out of service (any cause)
  std::uint64_t residual_frames{0}; // usable frames remaining right now

  // Terminal outcomes.
  std::uint64_t failed_accesses{0}; // accesses that returned PageAccessError
  std::uint64_t lost_pages{0};      // page contents unrecoverable

  // True iff no fault ever fired and no capacity was lost — the state a
  // zero-rate injector must leave behind (the fault-parity guarantee).
  bool Quiet() const;

  // Folds `other` into this accumulator (counters add; residual capacity
  // takes the minimum, being a point-in-time gauge).
  void Merge(const ReliabilityStats& other);

  // One-line human-readable summary for bench/example output.
  std::string Describe() const;
};

}  // namespace dsa

#endif  // SRC_STATS_RELIABILITY_H_
