#include "src/stats/reliability.h"

#include <algorithm>
#include <sstream>

namespace dsa {

bool ReliabilityStats::Quiet() const {
  return transient_errors == 0 && retries == 0 && retry_cycles == 0 && slot_failures == 0 &&
         relocations == 0 && spill_relocations == 0 && frame_failures == 0 &&
         retired_frames == 0 && failed_accesses == 0 && lost_pages == 0;
}

void ReliabilityStats::Merge(const ReliabilityStats& other) {
  transient_errors += other.transient_errors;
  retries += other.retries;
  retry_cycles += other.retry_cycles;
  slot_failures += other.slot_failures;
  relocations += other.relocations;
  spill_relocations += other.spill_relocations;
  frame_failures += other.frame_failures;
  retired_frames += other.retired_frames;
  residual_frames = std::min(residual_frames, other.residual_frames);
  failed_accesses += other.failed_accesses;
  lost_pages += other.lost_pages;
}

std::string ReliabilityStats::Describe() const {
  std::ostringstream out;
  out << "transient=" << transient_errors << " retries=" << retries
      << " retry_cycles=" << retry_cycles << " bad_slots=" << slot_failures
      << " relocations=" << relocations << "+" << spill_relocations
      << " frame_failures=" << frame_failures << " retired=" << retired_frames
      << " residual_frames=" << residual_frames << " failed_accesses=" << failed_accesses
      << " lost_pages=" << lost_pages;
  return out.str();
}

}  // namespace dsa
