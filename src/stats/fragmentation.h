// Fragmentation metrics.
//
// The paper's §"Uniformity of Unit of Storage Allocation" argues that paging
// does not eliminate fragmentation but moves it inside pages.  To test that
// claim (experiment E1) the two forms must be measured on a common scale:
//
//   * external fragmentation — free storage exists but is scattered in holes
//     too small to satisfy a request (variable-unit systems);
//   * internal fragmentation — storage inside allocated units is unused
//     because requests rarely fill an integral number of page frames.

#ifndef SRC_STATS_FRAGMENTATION_H_
#define SRC_STATS_FRAGMENTATION_H_

#include <vector>

#include "src/core/types.h"

namespace dsa {

struct FragmentationReport {
  WordCount capacity{0};        // total words managed
  WordCount live{0};            // words the program actually asked for
  WordCount allocated{0};       // words handed out (>= live under paging)
  WordCount free{0};            // words not handed out
  WordCount largest_free{0};    // largest contiguous free extent
  std::size_t hole_count{0};    // number of free extents

  // Fraction of free storage unusable for a request of `largest_free` scale:
  // 1 - largest_free/free.  Zero when storage is unfragmented or full.
  double ExternalFragmentation() const;

  // Fraction of allocated storage wasted inside allocation units:
  // (allocated - live) / allocated.
  double InternalFragmentation() const;

  // Overall waste relative to capacity: (capacity - live) / capacity when the
  // system cannot accept more work, i.e. the utilisation ceiling.
  double TotalWasteFraction() const;
};

// Computes hole statistics from a list of free extents.
FragmentationReport ReportFromHoles(WordCount capacity, WordCount live, WordCount allocated,
                                    const std::vector<WordCount>& hole_sizes);

}  // namespace dsa

#endif  // SRC_STATS_FRAGMENTATION_H_
