// Mapping faults: the paper's hardware facility (v), "the automatic trapping
// of attempts to access information not currently in working storage ... at
// the heart of the demand paging strategy", plus facility (ii), address
// bound violation detection.

#ifndef SRC_MAP_FAULT_H_
#define SRC_MAP_FAULT_H_

#include <cstdint>

#include "src/core/types.h"

namespace dsa {

enum class FaultKind : std::uint8_t {
  kPageNotPresent,     // demand-paging trap
  kSegmentNotPresent,  // demand-segment trap (B5000/Rice fetch on first reference)
  kBoundsViolation,    // name outside the segment/limit extent (illegal subscript)
  kInvalidSegment,     // no such segment in the table
  kInvalidName,        // name outside the address representation
  kProtectionViolation,  // access kind forbidden by the segment's protection
};

struct Fault {
  FaultKind kind{FaultKind::kInvalidName};
  Name name;               // the offending name
  SegmentId segment;       // meaningful for segment-related faults
  PageId page;             // meaningful for page-related faults
  Cycles detection_cost{0};  // translation cycles spent before the trap fired
};

const char* ToString(FaultKind kind);

}  // namespace dsa

#endif  // SRC_MAP_FAULT_H_
