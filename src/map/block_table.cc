#include "src/map/block_table.h"

#include <bit>

#include "src/core/assert.h"

namespace dsa {

BlockTableMapper::BlockTableMapper(WordCount block_words, std::size_t blocks,
                                   MappingCostModel costs)
    : block_words_(block_words), table_(blocks), costs_(costs) {
  DSA_ASSERT(block_words_ > 0 && std::has_single_bit(block_words_),
             "block size must be a power of two");
  DSA_ASSERT(blocks > 0, "block table needs at least one entry");
  offset_bits_ = std::bit_width(block_words_) - 1;
}

void BlockTableMapper::SetBlock(std::size_t index, PhysicalAddress base) {
  DSA_ASSERT(index < table_.size(), "block index out of range");
  table_[index] = base;
}

void BlockTableMapper::ClearBlock(std::size_t index) {
  DSA_ASSERT(index < table_.size(), "block index out of range");
  table_[index].reset();
}

TranslationResult BlockTableMapper::Translate(Name name, AccessKind kind, Cycles now) {
  (void)kind;
  (void)now;
  const std::uint64_t block = name.value >> offset_bits_;
  const std::uint64_t offset = name.value & (block_words_ - 1);
  // One core reference to read the table entry, one register op to combine.
  const Cycles cost = costs_.core_reference + costs_.register_op;
  if (block >= table_.size()) {
    Fault fault{FaultKind::kInvalidName, name, {}, PageId{block}, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  const std::optional<PhysicalAddress>& base = table_[block];
  if (!base.has_value()) {
    Fault fault{FaultKind::kPageNotPresent, name, {}, PageId{block}, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  CountTranslation(cost);
  return Translation{PhysicalAddress{base->value + offset}, cost, false};
}

}  // namespace dsa
