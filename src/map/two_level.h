// Figure 4: the two-level mapping scheme.
//
// "Name contiguity within segments is provided by a mapping mechanism using
// two levels of indirect addressing, through a segment table and a set of
// page tables ...  A small associative memory is used to contain the
// locations of recently accessed pages in order to reduce the overhead
// caused by the mapping process."  (MULTICS, IBM 360/67.)

#ifndef SRC_MAP_TWO_LEVEL_H_
#define SRC_MAP_TWO_LEVEL_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/map/associative_memory.h"
#include "src/map/cost_model.h"
#include "src/map/mapper.h"
#include "src/map/page_table.h"
#include "src/naming/segmented_name.h"

namespace dsa {

class SegmentPageMapper : public AddressMapper {
 public:
  // The linear view of names splits into `segment_bits` + `offset_bits`;
  // segments are paged with `page_words`-word pages; `tlb_entries` sizes the
  // associative memory (0 disables it).
  // `dedicated_execute_register` models the 360/67's "ninth associative
  // register ... used to speed up the mapping of the instruction counter":
  // a one-entry cache consulted for execute accesses only.
  SegmentPageMapper(int segment_bits, int offset_bits, WordCount page_words,
                    std::size_t tlb_entries, MappingCostModel costs = {},
                    bool dedicated_execute_register = false);

  // --- segment lifecycle ---------------------------------------------------
  // Declares a segment of `extent` words (creates its page table).
  void DefineSegment(SegmentId segment, WordCount extent);
  // Dynamic segments: "the extent of each segment can be varied during
  // execution by special program directives."
  void ResizeSegment(SegmentId segment, WordCount extent);
  void DestroySegment(SegmentId segment);
  bool SegmentIsDefined(SegmentId segment) const;
  WordCount SegmentExtent(SegmentId segment) const;

  // --- page residency ------------------------------------------------------
  void MapPage(SegmentId segment, PageId page, FrameId frame);
  void UnmapPage(SegmentId segment, PageId page);

  // --- translation ---------------------------------------------------------
  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override;
  TranslationResult TranslateSegmented(SegmentedName name, AccessKind kind, Cycles now);

  std::string name() const override { return "segment+page tables"; }

  WordCount page_words() const { return page_words_; }
  std::uint64_t max_segments() const { return std::uint64_t{1} << segment_bits_; }
  WordCount max_segment_extent() const { return WordCount{1} << offset_bits_; }
  const AssociativeMemory& tlb() const { return tlb_; }
  std::uint64_t execute_register_hits() const { return execute_register_hits_; }
  std::uint64_t line_hits() const { return line_hits_; }

  // Core occupied by all mapping tables (segment table + live page tables).
  WordCount TableWords() const;

  PageId PageOf(WordCount offset) const { return PageId{offset / page_words_}; }

 private:
  struct SegmentTableEntry {
    bool valid{false};
    WordCount extent{0};
    std::unique_ptr<PageTable> pages;
  };

  SegmentTableEntry& EntryFor(SegmentId segment);
  const SegmentTableEntry& EntryFor(SegmentId segment) const;
  static std::uint64_t TlbKey(SegmentId segment, PageId page) {
    return (segment.value << 32) | page.value;
  }

  int segment_bits_;
  int offset_bits_;
  WordCount page_words_;
  std::vector<SegmentTableEntry> table_;
  AssociativeMemory tlb_;
  MappingCostModel costs_;
  bool dedicated_execute_register_;
  // (key, frame) of the last execute-mapped page; key 0 is never valid
  // because a real key always has nonzero tag bits once loaded.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> execute_register_;
  std::uint64_t execute_register_hits_{0};
  // Software last-translation line: memoizes the most recent successful
  // (segment, page) -> frame translation so repeated references skip both
  // table walks while charging the identical simulated cost.  Invalidated
  // whenever the cached mapping could change (unmap/remap/resize/destroy).
  // Only consulted when no associative memory and no dedicated execute
  // register are configured: those facilities are the modeled fast paths and
  // their recency and hit statistics must keep advancing.
  bool line_valid_{false};
  std::uint64_t line_key_{0};
  std::uint64_t line_frame_{0};
  std::uint64_t line_hits_{0};
};

}  // namespace dsa

#endif  // SRC_MAP_TWO_LEVEL_H_
