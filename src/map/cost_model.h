// Cycle costs of the address-translation path.
//
// "The complexity is not too detrimental in itself, but it can possibly
// cause a significant increase in the time taken to address storage."  The
// experiments that quantify that increase (F1, F4, E7) charge translations
// through this model so the cost of each mechanism is explicit:
//
//   * register_op      — an add/compare against a live register
//                        (relocation + limit checking);
//   * core_reference   — one extra working-storage access to read a mapping
//                        table entry (block table, segment table, page table);
//   * associative_search — one probe of a small associative memory.

#ifndef SRC_MAP_COST_MODEL_H_
#define SRC_MAP_COST_MODEL_H_

#include "src/core/types.h"

namespace dsa {

struct MappingCostModel {
  Cycles register_op{1};
  Cycles core_reference{2};
  Cycles associative_search{1};
};

}  // namespace dsa

#endif  // SRC_MAP_COST_MODEL_H_
