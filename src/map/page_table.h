// Single-level page mapping: a page table in core, optionally fronted by a
// small associative memory (the Fig. 4 fast path without the segment level),
// plus the ATLAS page-address-register scheme where the associative memory
// *is* the map.

#ifndef SRC_MAP_PAGE_TABLE_H_
#define SRC_MAP_PAGE_TABLE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/map/associative_memory.h"
#include "src/map/cost_model.h"
#include "src/map/mapper.h"

namespace dsa {

struct PageTableEntry {
  bool present{false};
  FrameId frame;
};

// The in-core table of page locations.  Use/modified sensors live with the
// frame table (src/paging/frame_table.h), matching the paper's description
// of per-page-frame recording hardware.
class PageTable {
 public:
  explicit PageTable(std::size_t pages) : entries_(pages) {}

  std::size_t page_count() const { return entries_.size(); }

  const PageTableEntry& entry(PageId page) const;
  void Map(PageId page, FrameId frame);
  void Unmap(PageId page);

  // Words of core the table occupies (one word per entry).
  WordCount TableWords() const { return entries_.size(); }

  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  std::vector<PageTableEntry> entries_;
};

// Name -> (page, offset) -> frame via the page table, with an optional TLB.
class PageTableMapper : public AddressMapper {
 public:
  // `page_words` must be a power of two.  `tlb_entries == 0` disables the
  // associative memory (every translation pays the table reference).
  PageTableMapper(WordCount page_words, std::size_t pages, std::size_t tlb_entries,
                  MappingCostModel costs = {});

  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override;

  std::string name() const override { return "page-table"; }

  // Page-load/unload hooks for the pager.  Unmap also shoots down the TLB.
  void Map(PageId page, FrameId frame);
  void Unmap(PageId page);

  WordCount page_words() const { return page_words_; }
  const PageTable& table() const { return table_; }
  const AssociativeMemory& tlb() const { return tlb_; }

  PageId PageOf(Name name) const { return PageId{name.value >> offset_bits_}; }
  WordCount OffsetOf(Name name) const { return name.value & (page_words_ - 1); }

  // Resident hits served from the last-translation line (see below).
  std::uint64_t line_hits() const { return line_hits_; }

  // Checkpoint serialization: the table, the TLB, the last-translation line,
  // and the inherited accounting block.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  WordCount page_words_;
  int offset_bits_;
  PageTable table_;
  AssociativeMemory tlb_;
  MappingCostModel costs_;
  // Software last-translation line: memoizes the most recent successful
  // translation so repeated references to the same page skip the table walk.
  // Invalidated whenever the page's mapping changes (Map/Unmap).  Only
  // consulted when no associative memory is configured — with a TLB the TLB
  // is the modeled fast path and its recency/hit statistics must keep
  // advancing exactly as the hardware's would.
  bool line_valid_{false};
  PageId line_page_{};
  std::uint64_t line_frame_{0};
  std::uint64_t line_hits_{0};
};

// The Ferranti ATLAS scheme: one page-address register per page frame; the
// mapping is performed directly by an associative search over the registers.
// A miss *is* the not-in-core trap — there is no in-core table behind it.
class AtlasPageRegisterMapper : public AddressMapper {
 public:
  AtlasPageRegisterMapper(WordCount page_words, std::size_t frames, MappingCostModel costs = {});

  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override;

  std::string name() const override { return "atlas-page-registers"; }

  void LoadFrame(FrameId frame, PageId page);
  void ClearFrame(FrameId frame);

  WordCount page_words() const { return page_words_; }
  std::size_t frame_count() const { return registers_.size(); }

  PageId PageOf(Name name) const { return PageId{name.value >> offset_bits_}; }

  // Checkpoint serialization: the registers plus accounting; the reverse
  // index is rebuilt, not stored.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  WordCount page_words_;
  int offset_bits_;
  std::vector<std::optional<PageId>> registers_;
  // Reverse index (page -> frame) kept coherent with the registers.  The
  // modeled hardware searches every register in parallel at one fixed cost;
  // the index only makes the *simulation* of that search O(1).
  std::unordered_map<std::uint64_t, std::size_t> frame_of_page_;
  MappingCostModel costs_;
};

}  // namespace dsa

#endif  // SRC_MAP_PAGE_TABLE_H_
