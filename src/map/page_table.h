// Single-level page mapping: a page table in core, optionally fronted by a
// small associative memory (the Fig. 4 fast path without the segment level),
// plus the ATLAS page-address-register scheme where the associative memory
// *is* the map.

#ifndef SRC_MAP_PAGE_TABLE_H_
#define SRC_MAP_PAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/snapshot.h"
#include "src/core/types.h"
#include "src/map/associative_memory.h"
#include "src/map/cost_model.h"
#include "src/map/mapper.h"

namespace dsa {

struct PageTableEntry {
  bool present{false};
  FrameId frame;
};

// The in-core table of page locations.  Use/modified sensors live with the
// frame table (src/paging/frame_table.h), matching the paper's description
// of per-page-frame recording hardware.
class PageTable {
 public:
  explicit PageTable(std::size_t pages) : entries_(pages), chunk_versions_(ChunkCount(), 1) {}

  std::size_t page_count() const { return entries_.size(); }

  const PageTableEntry& entry(PageId page) const;
  void Map(PageId page, FrameId frame);
  void Unmap(PageId page);

  // Words of core the table occupies (one word per entry).
  WordCount TableWords() const { return entries_.size(); }

  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

  // --- chunked view, the delta-checkpoint dirty-tracking granule ---
  // The table is split into fixed chunks of kChunkEntries entries; every
  // Map/Unmap bumps the touched chunk's version, so a serialization cache
  // keyed on versions knows exactly which chunk bodies are stale.  This is
  // what collapses the ~2.3 MB page-table floor under steady-state tenant
  // snapshots: a commit re-encodes only the chunks the pager touched.
  static constexpr std::size_t kChunkEntries = 4096;

  std::size_t ChunkCount() const {
    return (entries_.size() + kChunkEntries - 1) / kChunkEntries;
  }
  std::uint64_t chunk_version(std::size_t chunk) const { return chunk_versions_[chunk]; }

  // Serializes/loads one chunk's entries (no count prefix; the chunk's size
  // is implied by the table geometry).
  void SaveChunk(std::size_t chunk, SnapshotWriter* w) const;
  void LoadChunk(std::size_t chunk, SnapshotReader* r);

 private:
  std::vector<PageTableEntry> entries_;
  std::vector<std::uint64_t> chunk_versions_;
};

// Name -> (page, offset) -> frame via the page table, with an optional TLB.
class PageTableMapper : public AddressMapper {
 public:
  // `page_words` must be a power of two.  `tlb_entries == 0` disables the
  // associative memory (every translation pays the table reference).
  PageTableMapper(WordCount page_words, std::size_t pages, std::size_t tlb_entries,
                  MappingCostModel costs = {});

  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override;

  std::string name() const override { return "page-table"; }

  // Page-load/unload hooks for the pager.  Unmap also shoots down the TLB.
  void Map(PageId page, FrameId frame);
  void Unmap(PageId page);

  WordCount page_words() const { return page_words_; }
  const PageTable& table() const { return table_; }
  const AssociativeMemory& tlb() const { return tlb_; }

  PageId PageOf(Name name) const { return PageId{name.value >> offset_bits_}; }
  WordCount OffsetOf(Name name) const { return name.value & (page_words_ - 1); }

  // Resident hits served from the last-translation line (see below).
  std::uint64_t line_hits() const { return line_hits_; }

  // Checkpoint serialization: the table, the TLB, the last-translation line,
  // and the inherited accounting block.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

  // Sectioned serialization for delta checkpoints: a "map.head" section
  // (geometry, TLB, translation line, accounting) followed by one
  // "map.pt.<k>" section per page-table chunk.  Chunk bodies are served
  // from a version-keyed cache, so a chunk untouched since the previous
  // seal costs a hash lookup instead of a re-encode — and an unchanged
  // body then collapses to a 17-byte ref in the delta seal.
  void SaveSections(SectionedSnapshotWriter* w) const;
  void LoadSections(SectionSource* src);

 private:
  struct ChunkCache {
    std::uint64_t version{0};  // 0 never matches a live chunk version
    std::string body;
  };

  WordCount page_words_;
  int offset_bits_;
  PageTable table_;
  AssociativeMemory tlb_;
  MappingCostModel costs_;
  // Software last-translation line: memoizes the most recent successful
  // translation so repeated references to the same page skip the table walk.
  // Invalidated whenever the page's mapping changes (Map/Unmap).  Only
  // consulted when no associative memory is configured — with a TLB the TLB
  // is the modeled fast path and its recency/hit statistics must keep
  // advancing exactly as the hardware's would.
  bool line_valid_{false};
  PageId line_page_{};
  std::uint64_t line_frame_{0};
  std::uint64_t line_hits_{0};
  // Serialization cache for SaveSections; mutable because caching chunk
  // bodies does not change observable mapper state.
  mutable std::vector<ChunkCache> chunk_cache_;
};

// The Ferranti ATLAS scheme: one page-address register per page frame; the
// mapping is performed directly by an associative search over the registers.
// A miss *is* the not-in-core trap — there is no in-core table behind it.
class AtlasPageRegisterMapper : public AddressMapper {
 public:
  AtlasPageRegisterMapper(WordCount page_words, std::size_t frames, MappingCostModel costs = {});

  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override;

  std::string name() const override { return "atlas-page-registers"; }

  void LoadFrame(FrameId frame, PageId page);
  void ClearFrame(FrameId frame);

  WordCount page_words() const { return page_words_; }
  std::size_t frame_count() const { return registers_.size(); }

  PageId PageOf(Name name) const { return PageId{name.value >> offset_bits_}; }

  // Checkpoint serialization: the registers plus accounting; the reverse
  // index is rebuilt, not stored.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  WordCount page_words_;
  int offset_bits_;
  std::vector<std::optional<PageId>> registers_;
  // Reverse index (page -> frame) kept coherent with the registers.  The
  // modeled hardware searches every register in parallel at one fixed cost;
  // the index only makes the *simulation* of that search O(1).
  std::unordered_map<std::uint64_t, std::size_t> frame_of_page_;
  MappingCostModel costs_;
};

}  // namespace dsa

#endif  // SRC_MAP_PAGE_TABLE_H_
