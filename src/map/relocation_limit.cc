#include "src/map/relocation_limit.h"

namespace dsa {

TranslationResult RelocationLimitMapper::Translate(Name name, AccessKind kind, Cycles now) {
  (void)kind;
  (void)now;
  // Limit check, then relocation add: two register operations.
  const Cycles cost = 2 * costs_.register_op;
  if (name.value >= limit_) {
    Fault fault{FaultKind::kBoundsViolation, name, {}, {}, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  CountTranslation(cost);
  return Translation{PhysicalAddress{relocation_.value + name.value}, cost, false};
}

}  // namespace dsa
