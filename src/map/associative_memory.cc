#include "src/map/associative_memory.h"

namespace dsa {

std::optional<std::uint64_t> AssociativeMemory::Lookup(std::uint64_t key, Cycles now) {
  for (Slot& slot : slots_) {
    if (slot.key == key) {
      slot.last_use = now;
      ++hits_;
      return slot.value;
    }
  }
  ++misses_;
  return std::nullopt;
}

void AssociativeMemory::Insert(std::uint64_t key, std::uint64_t value, Cycles now) {
  if (entries_ == 0) {
    return;
  }
  for (Slot& slot : slots_) {
    if (slot.key == key) {
      slot.value = value;
      slot.last_use = now;
      return;
    }
  }
  if (slots_.size() < entries_) {
    slots_.push_back(Slot{key, value, now});
    return;
  }
  // Evict the least recently used slot.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].last_use < slots_[victim].last_use) {
      victim = i;
    }
  }
  slots_[victim] = Slot{key, value, now};
}

void AssociativeMemory::Invalidate(std::uint64_t key) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].key == key) {
      slots_[i] = slots_.back();
      slots_.pop_back();
      return;
    }
  }
}

void AssociativeMemory::InvalidateAll() { slots_.clear(); }

}  // namespace dsa
