#include "src/map/page_table.h"

#include <bit>

#include "src/core/assert.h"

namespace dsa {

const PageTableEntry& PageTable::entry(PageId page) const {
  DSA_ASSERT(page.value < entries_.size(), "page out of table range");
  return entries_[page.value];
}

void PageTable::Map(PageId page, FrameId frame) {
  DSA_ASSERT(page.value < entries_.size(), "page out of table range");
  entries_[page.value] = PageTableEntry{true, frame};
}

void PageTable::Unmap(PageId page) {
  DSA_ASSERT(page.value < entries_.size(), "page out of table range");
  entries_[page.value] = PageTableEntry{};
}

PageTableMapper::PageTableMapper(WordCount page_words, std::size_t pages,
                                 std::size_t tlb_entries, MappingCostModel costs)
    : page_words_(page_words), table_(pages), tlb_(tlb_entries), costs_(costs) {
  DSA_ASSERT(page_words_ > 0 && std::has_single_bit(page_words_),
             "page size must be a power of two");
  offset_bits_ = std::bit_width(page_words_) - 1;
}

TranslationResult PageTableMapper::Translate(Name name, AccessKind kind, Cycles now) {
  (void)kind;
  const PageId page = PageOf(name);
  const WordCount offset = OffsetOf(name);
  Cycles cost = 0;

  if (page.value >= table_.page_count()) {
    Fault fault{FaultKind::kInvalidName, name, {}, page, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }

  // Associative probe first, when the facility exists.
  if (tlb_.capacity() > 0) {
    cost += costs_.associative_search;
    if (auto frame = tlb_.Lookup(page.value, now)) {
      CountTranslation(cost);
      return Translation{PhysicalAddress{*frame * page_words_ + offset}, cost, true};
    }
  }

  // Slow path: read the page table entry from core.
  cost += costs_.core_reference;
  const PageTableEntry& entry = table_.entry(page);
  if (!entry.present) {
    Fault fault{FaultKind::kPageNotPresent, name, {}, page, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  if (tlb_.capacity() > 0) {
    tlb_.Insert(page.value, entry.frame.value, now);
  }
  CountTranslation(cost);
  return Translation{PhysicalAddress{entry.frame.value * page_words_ + offset}, cost, false};
}

void PageTableMapper::Map(PageId page, FrameId frame) { table_.Map(page, frame); }

void PageTableMapper::Unmap(PageId page) {
  table_.Unmap(page);
  tlb_.Invalidate(page.value);
}

AtlasPageRegisterMapper::AtlasPageRegisterMapper(WordCount page_words, std::size_t frames,
                                                 MappingCostModel costs)
    : page_words_(page_words), registers_(frames), costs_(costs) {
  DSA_ASSERT(page_words_ > 0 && std::has_single_bit(page_words_),
             "page size must be a power of two");
  DSA_ASSERT(frames > 0, "need at least one page frame");
  offset_bits_ = std::bit_width(page_words_) - 1;
}

TranslationResult AtlasPageRegisterMapper::Translate(Name name, AccessKind kind, Cycles now) {
  (void)kind;
  (void)now;
  const PageId page = PageOf(name);
  const WordCount offset = name.value & (page_words_ - 1);
  // The associative search happens in parallel across all registers: one
  // fixed hardware cost whether it hits or traps.
  const Cycles cost = costs_.associative_search;
  for (std::size_t f = 0; f < registers_.size(); ++f) {
    if (registers_[f].has_value() && registers_[f]->value == page.value) {
      CountTranslation(cost);
      return Translation{PhysicalAddress{f * page_words_ + offset}, cost, true};
    }
  }
  Fault fault{FaultKind::kPageNotPresent, name, {}, page, cost};
  CountFault(cost);
  return MakeUnexpected(fault);
}

void AtlasPageRegisterMapper::LoadFrame(FrameId frame, PageId page) {
  DSA_ASSERT(frame.value < registers_.size(), "frame out of range");
  registers_[frame.value] = page;
}

void AtlasPageRegisterMapper::ClearFrame(FrameId frame) {
  DSA_ASSERT(frame.value < registers_.size(), "frame out of range");
  registers_[frame.value].reset();
}

}  // namespace dsa
