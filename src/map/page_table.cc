#include "src/map/page_table.h"

#include <algorithm>
#include <bit>
#include <string>

#include "src/core/assert.h"

namespace dsa {

const PageTableEntry& PageTable::entry(PageId page) const {
  DSA_ASSERT(page.value < entries_.size(), "page out of table range");
  return entries_[page.value];
}

void PageTable::Map(PageId page, FrameId frame) {
  DSA_ASSERT(page.value < entries_.size(), "page out of table range");
  entries_[page.value] = PageTableEntry{true, frame};
  ++chunk_versions_[page.value / kChunkEntries];
}

void PageTable::Unmap(PageId page) {
  DSA_ASSERT(page.value < entries_.size(), "page out of table range");
  entries_[page.value] = PageTableEntry{};
  ++chunk_versions_[page.value / kChunkEntries];
}

PageTableMapper::PageTableMapper(WordCount page_words, std::size_t pages,
                                 std::size_t tlb_entries, MappingCostModel costs)
    : page_words_(page_words), table_(pages), tlb_(tlb_entries), costs_(costs) {
  DSA_ASSERT(page_words_ > 0 && std::has_single_bit(page_words_),
             "page size must be a power of two");
  offset_bits_ = std::bit_width(page_words_) - 1;
}

TranslationResult PageTableMapper::Translate(Name name, AccessKind kind, Cycles now) {
  (void)kind;
  const PageId page = PageOf(name);
  const WordCount offset = OffsetOf(name);
  Cycles cost = 0;

  if (page.value >= table_.page_count()) {
    Fault fault{FaultKind::kInvalidName, name, {}, page, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }

  // Last-translation line: a repeat reference to the page most recently
  // translated skips the table walk while reporting the identical cost the
  // walk would have charged.
  if (line_valid_ && tlb_.capacity() == 0 && page == line_page_) {
    ++line_hits_;
    cost = costs_.core_reference;
    CountTranslation(cost);
    return Translation{PhysicalAddress{line_frame_ * page_words_ + offset}, cost, false};
  }

  // Associative probe first, when the facility exists.
  if (tlb_.capacity() > 0) {
    cost += costs_.associative_search;
    if (auto frame = tlb_.Lookup(page.value, now)) {
      CountTranslation(cost);
      return Translation{PhysicalAddress{*frame * page_words_ + offset}, cost, true};
    }
  }

  // Slow path: read the page table entry from core.
  cost += costs_.core_reference;
  const PageTableEntry& entry = table_.entry(page);
  if (!entry.present) {
    Fault fault{FaultKind::kPageNotPresent, name, {}, page, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  if (tlb_.capacity() > 0) {
    tlb_.Insert(page.value, entry.frame.value, now);
  }
  line_valid_ = true;
  line_page_ = page;
  line_frame_ = entry.frame.value;
  CountTranslation(cost);
  return Translation{PhysicalAddress{entry.frame.value * page_words_ + offset}, cost, false};
}

void PageTableMapper::Map(PageId page, FrameId frame) {
  table_.Map(page, frame);
  if (line_valid_ && line_page_ == page) {
    line_valid_ = false;
  }
}

void PageTableMapper::Unmap(PageId page) {
  table_.Unmap(page);
  tlb_.Invalidate(page.value);
  if (line_valid_ && line_page_ == page) {
    line_valid_ = false;
  }
}

void PageTable::SaveState(SnapshotWriter* w) const {
  w->U64(entries_.size());
  for (const PageTableEntry& entry : entries_) {
    w->Bool(entry.present);
    w->U64(entry.frame.value);
  }
}

void PageTable::LoadState(SnapshotReader* r) {
  const std::uint64_t count = r->U64();
  if (r->ok() && count != entries_.size()) {
    r->Fail(SnapshotErrorKind::kBadValue, "page table size mismatch");
  }
  std::vector<PageTableEntry> entries(entries_.size());
  for (PageTableEntry& entry : entries) {
    entry.present = r->Bool();
    entry.frame = FrameId{r->U64()};
  }
  if (!r->ok()) {
    return;
  }
  entries_ = std::move(entries);
  for (std::uint64_t& version : chunk_versions_) {
    ++version;  // every chunk may have changed; stale caches must miss
  }
}

void PageTable::SaveChunk(std::size_t chunk, SnapshotWriter* w) const {
  DSA_ASSERT(chunk < ChunkCount(), "chunk out of range");
  const std::size_t begin = chunk * kChunkEntries;
  const std::size_t end = std::min(begin + kChunkEntries, entries_.size());
  for (std::size_t i = begin; i < end; ++i) {
    w->Bool(entries_[i].present);
    w->U64(entries_[i].frame.value);
  }
}

void PageTable::LoadChunk(std::size_t chunk, SnapshotReader* r) {
  DSA_ASSERT(chunk < ChunkCount(), "chunk out of range");
  const std::size_t begin = chunk * kChunkEntries;
  const std::size_t end = std::min(begin + kChunkEntries, entries_.size());
  std::vector<PageTableEntry> entries(end - begin);
  for (PageTableEntry& entry : entries) {
    entry.present = r->Bool();
    entry.frame = FrameId{r->U64()};
  }
  if (!r->ok()) {
    return;
  }
  std::copy(entries.begin(), entries.end(), entries_.begin() + begin);
  ++chunk_versions_[chunk];
}

void PageTableMapper::SaveState(SnapshotWriter* w) const {
  table_.SaveState(w);
  tlb_.SaveState(w);
  w->Bool(line_valid_);
  w->U64(line_page_.value);
  w->U64(line_frame_);
  w->U64(line_hits_);
  SaveAccounting(w);
}

void PageTableMapper::LoadState(SnapshotReader* r) {
  table_.LoadState(r);
  tlb_.LoadState(r);
  const bool line_valid = r->Bool();
  const PageId line_page{r->U64()};
  const std::uint64_t line_frame = r->U64();
  const std::uint64_t line_hits = r->U64();
  LoadAccounting(r);
  if (!r->ok()) {
    return;
  }
  line_valid_ = line_valid;
  line_page_ = line_page;
  line_frame_ = line_frame;
  line_hits_ = line_hits;
}

namespace {

std::string ChunkSectionName(std::size_t chunk) {
  return "map.pt." + std::to_string(chunk);
}

}  // namespace

void PageTableMapper::SaveSections(SectionedSnapshotWriter* w) const {
  {
    SnapshotWriter* head = w->Begin("map.head");
    head->U64(table_.page_count());
    tlb_.SaveState(head);
    head->Bool(line_valid_);
    head->U64(line_page_.value);
    head->U64(line_frame_);
    head->U64(line_hits_);
    SaveAccounting(head);
  }
  if (chunk_cache_.size() != table_.ChunkCount()) {
    chunk_cache_.assign(table_.ChunkCount(), ChunkCache{});
  }
  for (std::size_t k = 0; k < table_.ChunkCount(); ++k) {
    ChunkCache& cache = chunk_cache_[k];
    if (cache.version != table_.chunk_version(k)) {
      SnapshotWriter cw;
      table_.SaveChunk(k, &cw);
      cache.body = cw.TakePayload();
      cache.version = table_.chunk_version(k);
    }
    w->Section(ChunkSectionName(k), cache.body);
  }
}

void PageTableMapper::LoadSections(SectionSource* src) {
  {
    SnapshotReader r = src->Open("map.head");
    const std::uint64_t pages = r.U64();
    if (r.ok() && pages != table_.page_count()) {
      r.Fail(SnapshotErrorKind::kBadValue, "page table size mismatch");
    }
    tlb_.LoadState(&r);
    const bool line_valid = r.Bool();
    const PageId line_page{r.U64()};
    const std::uint64_t line_frame = r.U64();
    const std::uint64_t line_hits = r.U64();
    LoadAccounting(&r);
    if (src->Close(&r, "map.head")) {
      line_valid_ = line_valid;
      line_page_ = line_page;
      line_frame_ = line_frame;
      line_hits_ = line_hits;
    }
  }
  for (std::size_t k = 0; k < table_.ChunkCount() && src->ok(); ++k) {
    const std::string name = ChunkSectionName(k);
    SnapshotReader r = src->Open(name);
    table_.LoadChunk(k, &r);
    src->Close(&r, name);
  }
}

void AtlasPageRegisterMapper::SaveState(SnapshotWriter* w) const {
  w->U64(registers_.size());
  for (const std::optional<PageId>& reg : registers_) {
    w->Bool(reg.has_value());
    w->U64(reg.has_value() ? reg->value : 0);
  }
  SaveAccounting(w);
}

void AtlasPageRegisterMapper::LoadState(SnapshotReader* r) {
  const std::uint64_t count = r->U64();
  if (r->ok() && count != registers_.size()) {
    r->Fail(SnapshotErrorKind::kBadValue, "atlas register count mismatch");
  }
  std::vector<std::optional<PageId>> registers(registers_.size());
  std::unordered_map<std::uint64_t, std::size_t> frame_of_page;
  for (std::size_t f = 0; f < registers.size() && r->ok(); ++f) {
    const bool loaded = r->Bool();
    const std::uint64_t page = r->U64();
    if (loaded) {
      registers[f] = PageId{page};
      if (!frame_of_page.emplace(page, f).second) {
        r->Fail(SnapshotErrorKind::kBadValue, "one page in two atlas registers");
        return;
      }
    }
  }
  LoadAccounting(r);
  if (!r->ok()) {
    return;
  }
  registers_ = std::move(registers);
  frame_of_page_ = std::move(frame_of_page);
}

AtlasPageRegisterMapper::AtlasPageRegisterMapper(WordCount page_words, std::size_t frames,
                                                 MappingCostModel costs)
    : page_words_(page_words), registers_(frames), costs_(costs) {
  DSA_ASSERT(page_words_ > 0 && std::has_single_bit(page_words_),
             "page size must be a power of two");
  DSA_ASSERT(frames > 0, "need at least one page frame");
  offset_bits_ = std::bit_width(page_words_) - 1;
}

TranslationResult AtlasPageRegisterMapper::Translate(Name name, AccessKind kind, Cycles now) {
  (void)kind;
  (void)now;
  const PageId page = PageOf(name);
  const WordCount offset = name.value & (page_words_ - 1);
  // The associative search happens in parallel across all registers: one
  // fixed hardware cost whether it hits or traps.  The reverse index makes
  // simulating that parallel search O(1) instead of a sweep of every
  // register.
  const Cycles cost = costs_.associative_search;
  const auto it = frame_of_page_.find(page.value);
  if (it != frame_of_page_.end()) {
    CountTranslation(cost);
    return Translation{PhysicalAddress{it->second * page_words_ + offset}, cost, true};
  }
  Fault fault{FaultKind::kPageNotPresent, name, {}, page, cost};
  CountFault(cost);
  return MakeUnexpected(fault);
}

void AtlasPageRegisterMapper::LoadFrame(FrameId frame, PageId page) {
  DSA_ASSERT(frame.value < registers_.size(), "frame out of range");
  if (registers_[frame.value].has_value()) {
    frame_of_page_.erase(registers_[frame.value]->value);
  }
  registers_[frame.value] = page;
  frame_of_page_[page.value] = frame.value;
}

void AtlasPageRegisterMapper::ClearFrame(FrameId frame) {
  DSA_ASSERT(frame.value < registers_.size(), "frame out of range");
  if (registers_[frame.value].has_value()) {
    frame_of_page_.erase(registers_[frame.value]->value);
  }
  registers_[frame.value].reset();
}

}  // namespace dsa
