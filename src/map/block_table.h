// Figure 2: "A simple mapping scheme."
//
// The most significant bits of the name index a table of block addresses;
// the remaining bits are the word within the block.  A set of separate
// physical blocks thereby corresponds to a single set of contiguous names —
// artificial contiguity in its simplest form.  All blocks are assumed
// resident; absence is a separate concern layered on by paging.

#ifndef SRC_MAP_BLOCK_TABLE_H_
#define SRC_MAP_BLOCK_TABLE_H_

#include <optional>
#include <vector>

#include "src/map/cost_model.h"
#include "src/map/mapper.h"

namespace dsa {

class BlockTableMapper : public AddressMapper {
 public:
  // `block_words` must be a power of two; the table has `blocks` entries.
  BlockTableMapper(WordCount block_words, std::size_t blocks, MappingCostModel costs = {});

  // Binds name-block `index` to the physical block starting at `base`.
  void SetBlock(std::size_t index, PhysicalAddress base);
  void ClearBlock(std::size_t index);

  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override;

  std::string name() const override { return "block-table"; }

  WordCount block_words() const { return block_words_; }
  std::size_t block_count() const { return table_.size(); }
  // Words of core the mapping table itself occupies (one word per entry) —
  // part of the overhead term in the page-size experiment.
  WordCount TableWords() const { return table_.size(); }

 private:
  WordCount block_words_;
  int offset_bits_;
  std::vector<std::optional<PhysicalAddress>> table_;
  MappingCostModel costs_;
};

}  // namespace dsa

#endif  // SRC_MAP_BLOCK_TABLE_H_
