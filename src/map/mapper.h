// The address-mapping interface: "a mapping function in the path between the
// specification of a name by a program and the accessing by absolute address
// of the corresponding location."

#ifndef SRC_MAP_MAPPER_H_
#define SRC_MAP_MAPPER_H_

#include <cstdint>
#include <string>

#include "src/core/expected.h"
#include "src/core/snapshot.h"
#include "src/core/types.h"
#include "src/map/fault.h"

namespace dsa {

struct Translation {
  PhysicalAddress address;
  Cycles cost{0};            // cycles spent in the mapping path
  bool associative_hit{false};
};

using TranslationResult = Expected<Translation, Fault>;

class AddressMapper {
 public:
  virtual ~AddressMapper() = default;

  // Maps `name` to a physical address at simulated time `now`, charging the
  // translation cost and updating any use/modified sensors.
  virtual TranslationResult Translate(Name name, AccessKind kind, Cycles now) = 0;

  virtual std::string name() const = 0;

  // --- accounting ---------------------------------------------------------
  std::uint64_t translations() const { return translations_; }
  std::uint64_t faults() const { return faults_; }
  Cycles translation_cycles() const { return translation_cycles_; }
  double MeanTranslationCost() const {
    return translations_ == 0
               ? 0.0
               : static_cast<double>(translation_cycles_) / static_cast<double>(translations_);
  }

  // The shared accounting block, serialized by every concrete mapper's
  // SaveState/LoadState alongside its own state.
  void SaveAccounting(SnapshotWriter* w) const {
    w->U64(translations_);
    w->U64(faults_);
    w->U64(translation_cycles_);
  }
  void LoadAccounting(SnapshotReader* r) {
    const std::uint64_t translations = r->U64();
    const std::uint64_t faults = r->U64();
    const Cycles cycles = r->U64();
    if (!r->ok()) {
      return;
    }
    translations_ = translations;
    faults_ = faults;
    translation_cycles_ = cycles;
  }

 protected:
  // Implementations report every attempt through these.
  void CountTranslation(Cycles cost) {
    ++translations_;
    translation_cycles_ += cost;
  }
  void CountFault(Cycles cost) {
    ++translations_;
    ++faults_;
    translation_cycles_ += cost;
  }

 private:
  std::uint64_t translations_{0};
  std::uint64_t faults_{0};
  Cycles translation_cycles_{0};
};

// The no-mapping baseline: names are absolute addresses (early machines).
// Zero translation cost, no relocation, no protection.
class IdentityMapper : public AddressMapper {
 public:
  explicit IdentityMapper(WordCount extent) : extent_(extent) {}

  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override {
    (void)kind;
    (void)now;
    if (name.value >= extent_) {
      Fault fault{FaultKind::kInvalidName, name, {}, {}, 0};
      CountFault(0);
      return MakeUnexpected(fault);
    }
    CountTranslation(0);
    return Translation{PhysicalAddress{name.value}, 0, false};
  }

  std::string name() const override { return "identity"; }

 private:
  WordCount extent_;
};

}  // namespace dsa

#endif  // SRC_MAP_MAPPER_H_
