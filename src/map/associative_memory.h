// Small associative memories: hardware facility (vi), "a small associative
// memory in which recently-used segment and/or page locations are kept.  If
// it were not for such mechanisms, the cost in extra addressing time ...
// would often be unacceptable."
//
// Fully associative, LRU-replaced, fixed entry count.  Instances model the
// 360/67's 8-entry box, the MULTICS page-location memory, and the relevant
// partition of the B8500's 44-word thin-film store.

#ifndef SRC_MAP_ASSOCIATIVE_MEMORY_H_
#define SRC_MAP_ASSOCIATIVE_MEMORY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/snapshot.h"
#include "src/core/types.h"

namespace dsa {

class AssociativeMemory {
 public:
  // `entries == 0` models a machine without the facility: every lookup
  // misses and stores are dropped.
  explicit AssociativeMemory(std::size_t entries) : entries_(entries) {}

  std::size_t capacity() const { return entries_; }

  // Probes for `key`; refreshes recency on hit.
  std::optional<std::uint64_t> Lookup(std::uint64_t key, Cycles now);

  // Inserts or refreshes a mapping, evicting the least recently used entry
  // when full.
  void Insert(std::uint64_t key, std::uint64_t value, Cycles now);

  // Drops one mapping (page replaced) or all (program switch).
  void Invalidate(std::uint64_t key);
  void InvalidateAll();

  // Checkpoint serialization: slot contents in stored order (order matters —
  // LRU eviction scans linearly and ties break by position) plus the hit
  // counters.  The memory must be constructed with the same capacity.
  void SaveState(SnapshotWriter* w) const {
    w->U64(slots_.size());
    for (const Slot& slot : slots_) {
      w->U64(slot.key);
      w->U64(slot.value);
      w->U64(slot.last_use);
    }
    w->U64(hits_);
    w->U64(misses_);
  }
  void LoadState(SnapshotReader* r) {
    const std::uint64_t count = r->Count(entries_);
    std::vector<Slot> slots;
    slots.reserve(count);
    for (std::uint64_t i = 0; i < count && r->ok(); ++i) {
      Slot slot{};
      slot.key = r->U64();
      slot.value = r->U64();
      slot.last_use = r->U64();
      slots.push_back(slot);
    }
    const std::uint64_t hits = r->U64();
    const std::uint64_t misses = r->U64();
    if (!r->ok()) {
      return;
    }
    slots_ = std::move(slots);
    hits_ = hits;
    misses_ = misses;
  }

  std::size_t size() const { return slots_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double HitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t value;
    Cycles last_use;
  };

  std::size_t entries_;
  std::vector<Slot> slots_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

}  // namespace dsa

#endif  // SRC_MAP_ASSOCIATIVE_MEMORY_H_
