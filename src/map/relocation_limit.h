// "The next level in sophistication is obtained in many systems by providing
// a relocation register, limit register pair.  All name representations are
// checked against the contents of the limit register and then have the
// contents of the relocation register added to them."

#ifndef SRC_MAP_RELOCATION_LIMIT_H_
#define SRC_MAP_RELOCATION_LIMIT_H_

#include "src/map/cost_model.h"
#include "src/map/mapper.h"

namespace dsa {

class RelocationLimitMapper : public AddressMapper {
 public:
  RelocationLimitMapper(PhysicalAddress relocation, WordCount limit,
                        MappingCostModel costs = {})
      : relocation_(relocation), limit_(limit), costs_(costs) {}

  TranslationResult Translate(Name name, AccessKind kind, Cycles now) override;

  std::string name() const override { return "relocation+limit"; }

  // The registers are reloaded when the program is moved — the whole point
  // of keeping absolute addresses out of the program body.
  void Load(PhysicalAddress relocation, WordCount limit) {
    relocation_ = relocation;
    limit_ = limit;
  }

  PhysicalAddress relocation() const { return relocation_; }
  WordCount limit() const { return limit_; }

 private:
  PhysicalAddress relocation_;
  WordCount limit_;
  MappingCostModel costs_;
};

}  // namespace dsa

#endif  // SRC_MAP_RELOCATION_LIMIT_H_
