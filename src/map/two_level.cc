#include "src/map/two_level.h"

#include <bit>

#include "src/core/assert.h"

namespace dsa {

SegmentPageMapper::SegmentPageMapper(int segment_bits, int offset_bits, WordCount page_words,
                                     std::size_t tlb_entries, MappingCostModel costs,
                                     bool dedicated_execute_register)
    : segment_bits_(segment_bits),
      offset_bits_(offset_bits),
      page_words_(page_words),
      table_(std::size_t{1} << segment_bits),
      tlb_(tlb_entries),
      costs_(costs),
      dedicated_execute_register_(dedicated_execute_register) {
  DSA_ASSERT(segment_bits_ > 0 && segment_bits_ <= 30, "segment bits out of range");
  DSA_ASSERT(offset_bits_ > 0 && offset_bits_ <= 32, "offset bits out of range");
  DSA_ASSERT(page_words_ > 0 && std::has_single_bit(page_words_),
             "page size must be a power of two");
  DSA_ASSERT(page_words_ <= max_segment_extent(), "page exceeds maximum segment extent");
}

SegmentPageMapper::SegmentTableEntry& SegmentPageMapper::EntryFor(SegmentId segment) {
  DSA_ASSERT(segment.value < table_.size(), "segment beyond the table");
  return table_[segment.value];
}

const SegmentPageMapper::SegmentTableEntry& SegmentPageMapper::EntryFor(
    SegmentId segment) const {
  DSA_ASSERT(segment.value < table_.size(), "segment beyond the table");
  return table_[segment.value];
}

void SegmentPageMapper::DefineSegment(SegmentId segment, WordCount extent) {
  DSA_ASSERT(extent <= max_segment_extent(), "segment extent exceeds the representation");
  SegmentTableEntry& entry = EntryFor(segment);
  DSA_ASSERT(!entry.valid, "segment already defined");
  entry.valid = true;
  entry.extent = extent;
  const std::size_t pages = static_cast<std::size_t>((extent + page_words_ - 1) / page_words_);
  entry.pages = std::make_unique<PageTable>(pages);
}

void SegmentPageMapper::ResizeSegment(SegmentId segment, WordCount extent) {
  DSA_ASSERT(extent <= max_segment_extent(), "segment extent exceeds the representation");
  SegmentTableEntry& entry = EntryFor(segment);
  DSA_ASSERT(entry.valid, "resize of undefined segment");
  const std::size_t pages = static_cast<std::size_t>((extent + page_words_ - 1) / page_words_);
  // Rebuild the page table preserving mappings that survive the resize.
  auto grown = std::make_unique<PageTable>(pages);
  const std::size_t keep = std::min(pages, entry.pages->page_count());
  for (std::size_t p = 0; p < keep; ++p) {
    const PageTableEntry& old_entry = entry.pages->entry(PageId{p});
    if (old_entry.present) {
      grown->Map(PageId{p}, old_entry.frame);
    }
  }
  // Shrinking invalidates TLB entries for truncated pages.
  for (std::size_t p = pages; p < entry.pages->page_count(); ++p) {
    tlb_.Invalidate(TlbKey(segment, PageId{p}));
  }
  entry.pages = std::move(grown);
  entry.extent = extent;
  // The cached line may point into the truncated tail; drop it wholesale.
  line_valid_ = false;
}

void SegmentPageMapper::DestroySegment(SegmentId segment) {
  SegmentTableEntry& entry = EntryFor(segment);
  DSA_ASSERT(entry.valid, "destroy of undefined segment");
  for (std::size_t p = 0; p < entry.pages->page_count(); ++p) {
    tlb_.Invalidate(TlbKey(segment, PageId{p}));
  }
  entry = SegmentTableEntry{};
  line_valid_ = false;
}

bool SegmentPageMapper::SegmentIsDefined(SegmentId segment) const {
  return segment.value < table_.size() && table_[segment.value].valid;
}

WordCount SegmentPageMapper::SegmentExtent(SegmentId segment) const {
  const SegmentTableEntry& entry = EntryFor(segment);
  DSA_ASSERT(entry.valid, "extent of undefined segment");
  return entry.extent;
}

void SegmentPageMapper::MapPage(SegmentId segment, PageId page, FrameId frame) {
  SegmentTableEntry& entry = EntryFor(segment);
  DSA_ASSERT(entry.valid, "mapping a page of an undefined segment");
  entry.pages->Map(page, frame);
  if (line_valid_ && line_key_ == TlbKey(segment, page)) {
    line_valid_ = false;
  }
}

void SegmentPageMapper::UnmapPage(SegmentId segment, PageId page) {
  SegmentTableEntry& entry = EntryFor(segment);
  DSA_ASSERT(entry.valid, "unmapping a page of an undefined segment");
  entry.pages->Unmap(page);
  tlb_.Invalidate(TlbKey(segment, page));
  if (execute_register_.has_value() && execute_register_->first == TlbKey(segment, page)) {
    execute_register_.reset();
  }
  if (line_valid_ && line_key_ == TlbKey(segment, page)) {
    line_valid_ = false;
  }
}

TranslationResult SegmentPageMapper::Translate(Name name, AccessKind kind, Cycles now) {
  SegmentedName split;
  split.segment = SegmentId{name.value >> offset_bits_};
  split.offset = name.value & (max_segment_extent() - 1);
  if (split.segment.value >= table_.size()) {
    Fault fault{FaultKind::kInvalidName, name, split.segment, {}, 0};
    CountFault(0);
    return MakeUnexpected(fault);
  }
  return TranslateSegmented(split, kind, now);
}

TranslationResult SegmentPageMapper::TranslateSegmented(SegmentedName name, AccessKind kind,
                                                        Cycles now) {
  Cycles cost = 0;
  const Name linear{(name.segment.value << offset_bits_) | name.offset};

  if (name.segment.value >= table_.size()) {
    Fault fault{FaultKind::kInvalidSegment, linear, name.segment, {}, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  const SegmentTableEntry& entry = table_[name.segment.value];
  const PageId page = PageOf(name.offset);
  const WordCount offset_in_page = name.offset & (page_words_ - 1);

  // Last-translation line: a repeat reference to the (segment, page) most
  // recently translated skips both table walks.  The extent check must be
  // redone — the offset within the segment varies — and the charged cost is
  // exactly what the walk would have reported.
  if (line_valid_ && tlb_.capacity() == 0 && !dedicated_execute_register_ && entry.valid &&
      line_key_ == TlbKey(name.segment, page)) {
    if (name.offset >= entry.extent) {
      cost += costs_.core_reference;  // the segment-table reference that detects it
      Fault fault{FaultKind::kBoundsViolation, linear, name.segment, page, cost};
      CountFault(cost);
      return MakeUnexpected(fault);
    }
    ++line_hits_;
    cost += costs_.core_reference + costs_.core_reference;
    CountTranslation(cost);
    return Translation{PhysicalAddress{line_frame_ * page_words_ + offset_in_page}, cost,
                       false};
  }

  // The dedicated instruction-counter register is probed first for
  // instruction fetches (360/67's ninth register).
  if (dedicated_execute_register_ && kind == AccessKind::kExecute &&
      execute_register_.has_value() && execute_register_->first == TlbKey(name.segment, page)) {
    cost += costs_.associative_search;
    if (!entry.valid || name.offset >= entry.extent) {
      Fault fault{FaultKind::kBoundsViolation, linear, name.segment, page, cost};
      CountFault(cost);
      return MakeUnexpected(fault);
    }
    ++execute_register_hits_;
    CountTranslation(cost);
    return Translation{
        PhysicalAddress{execute_register_->second * page_words_ + offset_in_page}, cost, true};
  }

  // The associative memory short-circuits *both* table references.
  if (tlb_.capacity() > 0) {
    cost += costs_.associative_search;
    if (auto frame = tlb_.Lookup(TlbKey(name.segment, page), now)) {
      // Bound check still applies (the extent lives with the hardware path).
      if (!entry.valid || name.offset >= entry.extent) {
        Fault fault{FaultKind::kBoundsViolation, linear, name.segment, page, cost};
        CountFault(cost);
        return MakeUnexpected(fault);
      }
      CountTranslation(cost);
      return Translation{PhysicalAddress{*frame * page_words_ + offset_in_page}, cost, true};
    }
  }

  // Segment table reference.
  cost += costs_.core_reference;
  if (!entry.valid) {
    Fault fault{FaultKind::kInvalidSegment, linear, name.segment, page, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  if (name.offset >= entry.extent) {
    // "Each array used by a program can be specified to be a separate
    // segment in order that attempted violations of the array bounds can be
    // intercepted."
    Fault fault{FaultKind::kBoundsViolation, linear, name.segment, page, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }

  // Page table reference.
  cost += costs_.core_reference;
  const PageTableEntry& page_entry = entry.pages->entry(page);
  if (!page_entry.present) {
    Fault fault{FaultKind::kPageNotPresent, linear, name.segment, page, cost};
    CountFault(cost);
    return MakeUnexpected(fault);
  }
  if (tlb_.capacity() > 0) {
    tlb_.Insert(TlbKey(name.segment, page), page_entry.frame.value, now);
  }
  if (dedicated_execute_register_ && kind == AccessKind::kExecute) {
    execute_register_ = {TlbKey(name.segment, page), page_entry.frame.value};
  }
  line_valid_ = true;
  line_key_ = TlbKey(name.segment, page);
  line_frame_ = page_entry.frame.value;
  CountTranslation(cost);
  return Translation{PhysicalAddress{page_entry.frame.value * page_words_ + offset_in_page},
                     cost, false};
}

WordCount SegmentPageMapper::TableWords() const {
  WordCount words = table_.size();  // one word per segment table entry
  for (const SegmentTableEntry& entry : table_) {
    if (entry.valid) {
      words += entry.pages->TableWords();
    }
  }
  return words;
}

}  // namespace dsa
