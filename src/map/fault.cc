#include "src/map/fault.h"

namespace dsa {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPageNotPresent:
      return "page not present";
    case FaultKind::kSegmentNotPresent:
      return "segment not present";
    case FaultKind::kBoundsViolation:
      return "bounds violation";
    case FaultKind::kInvalidSegment:
      return "invalid segment";
    case FaultKind::kInvalidName:
      return "invalid name";
    case FaultKind::kProtectionViolation:
      return "protection violation";
  }
  return "?";
}

}  // namespace dsa
