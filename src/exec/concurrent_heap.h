// Lock-free fixed-size block allocation for concurrent simulation lanes.
//
// Randell's paper treats the store as one sequential resource; this module is
// the piece that lets several scheduler lanes mutate shared storage at once
// without a lock and without giving up deterministic replay.  The design
// follows Blelloch & Wei ("Concurrent Fixed-Size Allocation and Free in
// Constant Time"): per-size-class free stacks manipulated by CAS, with ABA
// protection from a version counter packed beside the head index, plus
// per-lane arenas that batch-refill from the shared pool so the common case
// never touches the shared cache line at all.
//
// Three layers:
//
//   ConcurrentBlockPool   one size class: a Treiber stack of free block
//                         indices with a versioned 64-bit head.  Links are
//                         a table of atomics indexed by block — indices never
//                         dangle, so there is no reclamation problem to solve.
//   ConcurrentFixedHeap   a small family of pools (distinct block sizes),
//                         allocation escalates to the next larger class when
//                         the exact class is empty (the segregated-fit rule
//                         from src/alloc, restated lock-free).
//   LaneArena             a single lane's private cache of blocks.  Refills
//                         `refill_batch` blocks per shared-pool CAS, drains
//                         half above `high_watermark`; alignas(64) keeps two
//                         lanes' arenas off one cache line.
//
// Determinism contract: block IDENTITY is invisible to simulation semantics.
// The simulator's observable state (page tables, frame sensors, traces,
// metrics) never mentions which physical block backs a frame, so any
// interleaving of pool CASes yields byte-identical simulation output.  Counts
// (acquires == releases at quiescence, no block granted twice) are the
// properties tests pin; which lane got block 17 is deliberately meaningless.
//
// Thread-safety summary: TryAcquire/Release (and the arena calls that wrap
// them) are safe from any number of threads.  GrowSerial and Stats snapshots
// are quiescent-only — callers run them between ParallelFor barriers, which
// is exactly where the simulation admits tenants and commits checkpoints.

#ifndef SRC_EXEC_CONCURRENT_HEAP_H_
#define SRC_EXEC_CONCURRENT_HEAP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/assert.h"

namespace dsa {

// A block handle: which size class, and which block within that class's pool.
struct BlockRef {
  static constexpr std::uint32_t kNoClass = 0xffffffffu;
  static constexpr std::uint32_t kNoBlock = 0xffffffffu;

  std::uint32_t size_class{kNoClass};
  std::uint32_t block{kNoBlock};

  bool valid() const { return size_class != kNoClass && block != kNoBlock; }
  friend bool operator==(const BlockRef&, const BlockRef&) = default;
};

// One size class: a lock-free stack of free block indices.
//
// The head word packs (version << 32) | index; every successful CAS bumps the
// version, so a stale head value whose index happens to match again (the ABA
// hazard: pop A, someone pops B and pushes A back) still fails the compare.
// With 32 version bits a false match needs exactly 2^32 successful CASes
// between a thread's read and its CAS — not reachable inside one bounded
// simulation round.
class ConcurrentBlockPool {
 public:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  explicit ConcurrentBlockPool(std::size_t block_words)
      : block_words_(block_words) {
    DSA_ASSERT(block_words > 0, "ConcurrentBlockPool: zero block size");
  }

  ConcurrentBlockPool(const ConcurrentBlockPool&) = delete;
  ConcurrentBlockPool& operator=(const ConcurrentBlockPool&) = delete;

  std::size_t block_words() const { return block_words_; }
  std::size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }

  // Pops a free block.  Lock-free; safe from any thread.  Returns false when
  // the pool is empty (the caller escalates to a larger class or treats it as
  // capacity exhaustion).
  bool TryAcquire(std::uint32_t* index);

  // Pushes `index` back onto the free stack.  Lock-free; safe from any
  // thread.  The caller must own the block (acquired and not yet released) —
  // double release is the caller's bug and corrupts the stack, exactly as
  // double free corrupts a serial free list.
  void Release(std::uint32_t index);

  // Appends `blocks` fresh blocks to the pool.  QUIESCENT-ONLY: no concurrent
  // TryAcquire/Release may be in flight.  The simulation calls this at
  // admission points, which sit between ParallelFor barriers.
  void GrowSerial(std::size_t blocks);

  // Relaxed accounting; exact only at quiescence.
  std::size_t FreeCountApprox() const { return free_count_.load(std::memory_order_relaxed); }

  struct Stats {
    std::uint64_t acquires{0};
    std::uint64_t releases{0};
    std::uint64_t cas_retries{0};  // failed head CASes (contention indicator)
  };
  Stats stats() const {
    return Stats{acquires_.load(std::memory_order_relaxed),
                 releases_.load(std::memory_order_relaxed),
                 cas_retries_.load(std::memory_order_relaxed)};
  }

  // --- Test-only surface for the ABA regression -------------------------
  // Exposes the raw head word and a single CAS attempt so a test can script
  // the classic interleaving (read head; pop A; pop B; push A; CAS with the
  // stale head) and assert the version bits make the stale CAS fail.
  std::uint64_t TestOnlyHead() const { return head_.load(std::memory_order_acquire); }
  bool TestOnlyCasHead(std::uint64_t expected, std::uint64_t desired) {
    return head_.compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }
  static std::uint32_t HeadIndex(std::uint64_t head) {
    return static_cast<std::uint32_t>(head & 0xffffffffu);
  }
  static std::uint32_t HeadVersion(std::uint64_t head) {
    return static_cast<std::uint32_t>(head >> 32);
  }
  static std::uint64_t PackHead(std::uint32_t version, std::uint32_t index) {
    return (static_cast<std::uint64_t>(version) << 32) | index;
  }

 private:
  std::size_t block_words_;
  // head: (version << 32) | top-of-stack block index (kNull when empty).
  std::atomic<std::uint64_t> head_{PackHead(0, kNull)};
  // next_[i]: the block under i on the free stack.  A deque so GrowSerial
  // extends it without relocating existing atomics.
  std::deque<std::atomic<std::uint32_t>> next_;
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::size_t> free_count_{0};
  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> releases_{0};
  std::atomic<std::uint64_t> cas_retries_{0};
};

// A size class the heap is built from: blocks of `block_words` words,
// initially `blocks` of them (GrowSerial can add more later).
struct HeapClassSpec {
  std::size_t block_words{0};
  std::size_t blocks{0};
};

// The shared heap: one pool per distinct block size, ascending.  Allocation
// picks the smallest class that fits and escalates upward when a class runs
// dry, so transient imbalance between classes degrades placement (a bigger
// block than needed) instead of failing the allocation.
class ConcurrentFixedHeap {
 public:
  static constexpr std::size_t kNoClass = static_cast<std::size_t>(-1);

  // `classes` need not be sorted; duplicates of one block size merge.
  explicit ConcurrentFixedHeap(const std::vector<HeapClassSpec>& classes);

  ConcurrentFixedHeap(const ConcurrentFixedHeap&) = delete;
  ConcurrentFixedHeap& operator=(const ConcurrentFixedHeap&) = delete;

  std::size_t class_count() const { return pools_.size(); }
  ConcurrentBlockPool& pool(std::size_t size_class) { return pools_[size_class]; }
  const ConcurrentBlockPool& pool(std::size_t size_class) const { return pools_[size_class]; }

  // Smallest class whose blocks hold `words` words; kNoClass when even the
  // largest class is too small.
  std::size_t ClassFor(std::size_t words) const;

  // Allocates a block of at least `words` words, escalating across classes.
  // Lock-free; safe from any thread.  False only when every eligible class
  // is empty.
  bool TryAllocate(std::size_t words, BlockRef* out);

  // Returns a block to its own class's pool.  Lock-free.
  void Free(BlockRef ref);

  // QUIESCENT-ONLY capacity growth of one class.
  void GrowSerial(std::size_t size_class, std::size_t blocks);

  // acquires - releases across all classes; exact only at quiescence, where
  // it must equal the number of blocks callers still hold (zero after a
  // clean teardown — the conservation property the tests pin).
  std::uint64_t OutstandingApprox() const;

  struct Stats {
    std::uint64_t acquires{0};
    std::uint64_t releases{0};
    std::uint64_t cas_retries{0};
    std::uint64_t escalations{0};  // allocations served by a larger class
  };
  Stats stats() const;

 private:
  std::deque<ConcurrentBlockPool> pools_;  // ascending block_words
  std::atomic<std::uint64_t> escalations_{0};
};

// One lane's private block cache.  Not thread-safe: a LaneArena belongs to
// exactly one lane (thread) at a time; handing it across a barrier is fine,
// sharing it inside one is not.
class alignas(64) LaneArena {
 public:
  static constexpr std::size_t kDefaultRefillBatch = 16;
  static constexpr std::size_t kDefaultHighWatermark = 32;

  explicit LaneArena(ConcurrentFixedHeap* heap,
                     std::size_t refill_batch = kDefaultRefillBatch,
                     std::size_t high_watermark = kDefaultHighWatermark);
  ~LaneArena() { Drain(); }

  LaneArena(const LaneArena&) = delete;
  LaneArena& operator=(const LaneArena&) = delete;

  // Serves from the cache; on a miss, pulls up to `refill_batch` blocks from
  // the shared pool in one burst.  Escalates across classes like the heap.
  bool TryAllocate(std::size_t words, BlockRef* out);

  // Caches the block; above `high_watermark` cached blocks of that class,
  // half drain back to the shared pool (hysteresis: a lane oscillating
  // around the watermark does not ping-pong blocks).
  void Free(BlockRef ref);

  // Returns every cached block to the shared pool.
  void Drain();

  std::size_t CachedCount() const;

  struct Stats {
    std::uint64_t cache_hits{0};
    std::uint64_t refills{0};        // shared-pool pull bursts
    std::uint64_t refill_blocks{0};  // blocks pulled across all refills
    std::uint64_t drains{0};         // watermark + final drain events
  };
  const Stats& stats() const { return stats_; }

 private:
  ConcurrentFixedHeap* heap_;
  std::size_t refill_batch_;
  std::size_t high_watermark_;
  std::vector<std::vector<std::uint32_t>> cache_;  // per class, LIFO
  Stats stats_;
};

}  // namespace dsa

#endif  // SRC_EXEC_CONCURRENT_HEAP_H_
