#include "src/exec/concurrent_heap.h"

#include <algorithm>

namespace dsa {

bool ConcurrentBlockPool::TryAcquire(std::uint32_t* index) {
  std::uint64_t head = head_.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t top = HeadIndex(head);
    if (top == kNull) {
      return false;
    }
    // The link read is safe even if another thread pops `top` first: the
    // slot stays allocated (indices never dangle), and our CAS then fails
    // on the version bump and reloads.
    const std::uint32_t next = next_[top].load(std::memory_order_relaxed);
    const std::uint64_t desired = PackHead(HeadVersion(head) + 1, next);
    if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      *index = top;
      free_count_.fetch_sub(1, std::memory_order_relaxed);
      acquires_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    cas_retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ConcurrentBlockPool::Release(std::uint32_t index) {
  DSA_ASSERT(index < capacity_.load(std::memory_order_relaxed),
             "ConcurrentBlockPool::Release: index out of range");
  std::uint64_t head = head_.load(std::memory_order_acquire);
  for (;;) {
    next_[index].store(HeadIndex(head), std::memory_order_relaxed);
    const std::uint64_t desired = PackHead(HeadVersion(head) + 1, index);
    // Release ordering publishes the link store above to the next acquirer.
    if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      free_count_.fetch_add(1, std::memory_order_relaxed);
      releases_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    cas_retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ConcurrentBlockPool::GrowSerial(std::size_t blocks) {
  // Quiescent by contract: plain read-modify-write of head is fine, and the
  // deque extension never relocates existing atomics.
  std::size_t base = capacity_.load(std::memory_order_relaxed);
  std::uint64_t head = head_.load(std::memory_order_relaxed);
  std::uint32_t top = HeadIndex(head);
  for (std::size_t i = 0; i < blocks; ++i) {
    const auto index = static_cast<std::uint32_t>(base + i);
    next_.emplace_back();
    next_.back().store(top, std::memory_order_relaxed);
    top = index;
  }
  head_.store(PackHead(HeadVersion(head) + 1, top), std::memory_order_release);
  capacity_.store(base + blocks, std::memory_order_relaxed);
  free_count_.fetch_add(blocks, std::memory_order_relaxed);
}

ConcurrentFixedHeap::ConcurrentFixedHeap(const std::vector<HeapClassSpec>& classes) {
  std::vector<HeapClassSpec> sorted = classes;
  std::sort(sorted.begin(), sorted.end(),
            [](const HeapClassSpec& a, const HeapClassSpec& b) {
              return a.block_words < b.block_words;
            });
  for (const HeapClassSpec& spec : sorted) {
    DSA_ASSERT(spec.block_words > 0, "ConcurrentFixedHeap: zero-word class");
    if (!pools_.empty() && pools_.back().block_words() == spec.block_words) {
      pools_.back().GrowSerial(spec.blocks);
      continue;
    }
    pools_.emplace_back(spec.block_words);
    pools_.back().GrowSerial(spec.blocks);
  }
  DSA_ASSERT(!pools_.empty(), "ConcurrentFixedHeap: no size classes");
}

std::size_t ConcurrentFixedHeap::ClassFor(std::size_t words) const {
  for (std::size_t k = 0; k < pools_.size(); ++k) {
    if (pools_[k].block_words() >= words) {
      return k;
    }
  }
  return kNoClass;
}

bool ConcurrentFixedHeap::TryAllocate(std::size_t words, BlockRef* out) {
  const std::size_t first = ClassFor(words);
  if (first == kNoClass) {
    return false;
  }
  for (std::size_t k = first; k < pools_.size(); ++k) {
    std::uint32_t index = ConcurrentBlockPool::kNull;
    if (pools_[k].TryAcquire(&index)) {
      if (k != first) {
        escalations_.fetch_add(1, std::memory_order_relaxed);
      }
      out->size_class = static_cast<std::uint32_t>(k);
      out->block = index;
      return true;
    }
  }
  return false;
}

void ConcurrentFixedHeap::Free(BlockRef ref) {
  DSA_ASSERT(ref.valid() && ref.size_class < pools_.size(),
             "ConcurrentFixedHeap::Free: bad block ref");
  pools_[ref.size_class].Release(ref.block);
}

void ConcurrentFixedHeap::GrowSerial(std::size_t size_class, std::size_t blocks) {
  DSA_ASSERT(size_class < pools_.size(), "ConcurrentFixedHeap::GrowSerial: bad class");
  pools_[size_class].GrowSerial(blocks);
}

std::uint64_t ConcurrentFixedHeap::OutstandingApprox() const {
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  for (const ConcurrentBlockPool& pool : pools_) {
    const ConcurrentBlockPool::Stats s = pool.stats();
    acquires += s.acquires;
    releases += s.releases;
  }
  return acquires - releases;
}

ConcurrentFixedHeap::Stats ConcurrentFixedHeap::stats() const {
  Stats total;
  for (const ConcurrentBlockPool& pool : pools_) {
    const ConcurrentBlockPool::Stats s = pool.stats();
    total.acquires += s.acquires;
    total.releases += s.releases;
    total.cas_retries += s.cas_retries;
  }
  total.escalations = escalations_.load(std::memory_order_relaxed);
  return total;
}

LaneArena::LaneArena(ConcurrentFixedHeap* heap, std::size_t refill_batch,
                     std::size_t high_watermark)
    : heap_(heap),
      refill_batch_(refill_batch),
      high_watermark_(high_watermark),
      cache_(heap->class_count()) {
  DSA_ASSERT(refill_batch > 0, "LaneArena: zero refill batch");
  DSA_ASSERT(high_watermark >= refill_batch,
             "LaneArena: watermark below refill batch would thrash");
}

bool LaneArena::TryAllocate(std::size_t words, BlockRef* out) {
  const std::size_t first = heap_->ClassFor(words);
  if (first == ConcurrentFixedHeap::kNoClass) {
    return false;
  }
  for (std::size_t k = first; k < cache_.size(); ++k) {
    if (!cache_[k].empty()) {
      out->size_class = static_cast<std::uint32_t>(k);
      out->block = cache_[k].back();
      cache_[k].pop_back();
      ++stats_.cache_hits;
      return true;
    }
  }
  // Miss: refill the exact class in one burst, then retry the cache; if the
  // shared pool for `first` is dry the burst comes back short or empty and
  // escalation walks the larger classes.
  for (std::size_t k = first; k < cache_.size(); ++k) {
    std::size_t pulled = 0;
    std::uint32_t index = ConcurrentBlockPool::kNull;
    while (pulled < refill_batch_ && heap_->pool(k).TryAcquire(&index)) {
      cache_[k].push_back(index);
      ++pulled;
    }
    if (pulled > 0) {
      ++stats_.refills;
      stats_.refill_blocks += pulled;
      out->size_class = static_cast<std::uint32_t>(k);
      out->block = cache_[k].back();
      cache_[k].pop_back();
      return true;
    }
  }
  return false;
}

void LaneArena::Free(BlockRef ref) {
  DSA_ASSERT(ref.valid() && ref.size_class < cache_.size(),
             "LaneArena::Free: bad block ref");
  std::vector<std::uint32_t>& bucket = cache_[ref.size_class];
  bucket.push_back(ref.block);
  if (bucket.size() > high_watermark_) {
    const std::size_t keep = high_watermark_ / 2;
    while (bucket.size() > keep) {
      heap_->pool(ref.size_class).Release(bucket.back());
      bucket.pop_back();
    }
    ++stats_.drains;
  }
}

void LaneArena::Drain() {
  bool drained = false;
  for (std::size_t k = 0; k < cache_.size(); ++k) {
    drained = drained || !cache_[k].empty();
    while (!cache_[k].empty()) {
      heap_->pool(k).Release(cache_[k].back());
      cache_[k].pop_back();
    }
  }
  if (drained) {
    ++stats_.drains;
  }
}

std::size_t LaneArena::CachedCount() const {
  std::size_t total = 0;
  for (const std::vector<std::uint32_t>& bucket : cache_) {
    total += bucket.size();
  }
  return total;
}

}  // namespace dsa
