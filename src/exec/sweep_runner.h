// SweepRunner: deterministic fan-out of independent simulation cells.
//
// A sweep is a pure function cell_index -> result over a fixed index range
// (a bench grid, a soak matrix, a batch of trace files).  The runner
// evaluates every cell at most `jobs`-wide on a work-stealing ThreadPool
// and collects results into index-ordered slots: slot i is written only by
// cell i, so the merged output is byte-identical regardless of scheduling
// or completion order.  The slots are a fixed-size pre-allocated vector —
// cross-thread publication without locks or ordering sensitivity (cf.
// Blelloch & Wei's fixed-size-pool result cells) — and with jobs == 1 the
// runner is a plain serial in-index-order loop, today's path exactly.
//
// Determinism contract for cell functions: a cell may only read shared
// immutable inputs and its own index; any randomness must come from a
// generator the cell owns, derived by Rng::Fork(cell_index) or an explicit
// per-cell seed.  No cell may touch another cell's slot.

#ifndef SRC_EXEC_SWEEP_RUNNER_H_
#define SRC_EXEC_SWEEP_RUNNER_H_

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/exec/thread_pool.h"

namespace dsa {

class SweepRunner {
 public:
  // `jobs` = 1 runs cells serially on the calling thread (no pool, no
  // threads); > 1 engages a work-stealing pool of that width.
  explicit SweepRunner(unsigned jobs = 1) {
    if (jobs > 1) {
      pool_.emplace(jobs);
    }
  }

  unsigned jobs() const { return pool_ ? pool_->workers() : 1u; }

  // Evaluates fn(0) ... fn(cells-1), returning results in index order.
  // The result type must be default-constructible (slots are pre-sized).
  template <typename Fn>
  auto Run(std::size_t cells, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> slots(cells);
    if (!pool_) {
      for (std::size_t i = 0; i < cells; ++i) {
        slots[i] = fn(i);
      }
      return slots;
    }
    pool_->ParallelFor(cells, [&](std::size_t i) { slots[i] = fn(i); });
    return slots;
  }

  // Index-only form for callers that manage their own slots.
  void ForEach(std::size_t cells, const std::function<void(std::size_t)>& body) {
    if (!pool_) {
      for (std::size_t i = 0; i < cells; ++i) {
        body(i);
      }
      return;
    }
    pool_->ParallelFor(cells, body);
  }

 private:
  std::optional<ThreadPool> pool_;
};

}  // namespace dsa

#endif  // SRC_EXEC_SWEEP_RUNNER_H_
