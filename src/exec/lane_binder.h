// LaneFrameBinder: the concrete FrameBackingBinder that backs one simulated
// frame table from the shared lock-free heap.
//
// Each lane-owned simulation (a job group in the multi-lane simulator, a
// tenant in the service loop) gets one binder.  The binder keeps a private
// frame→block ledger; the allocation path goes through the lane's arena when
// one is attached (the concurrent fast path) and straight to the shared heap
// otherwise (serial contexts: construction, checkpoint restore, teardown).
//
// SetArena is how a lane "checks out" the binder for a parallel round: the
// multi-lane executors point every binder they are about to step at the
// stepping lane's arena before the ParallelFor, and detach after the
// barrier.  The ledger itself is single-threaded by construction — only the
// lane that owns the simulation this round touches it.

#ifndef SRC_EXEC_LANE_BINDER_H_
#define SRC_EXEC_LANE_BINDER_H_

#include <cstdint>
#include <vector>

#include "src/core/assert.h"
#include "src/core/types.h"
#include "src/exec/concurrent_heap.h"
#include "src/paging/backing_binder.h"

namespace dsa {

class LaneFrameBinder : public FrameBackingBinder {
 public:
  // Every frame this binder backs holds one page of `page_words` words.
  LaneFrameBinder(ConcurrentFixedHeap* heap, std::size_t page_words)
      : heap_(heap), page_words_(page_words) {}

  ~LaneFrameBinder() override { ReleaseAllFrameBlocks(); }

  LaneFrameBinder(const LaneFrameBinder&) = delete;
  LaneFrameBinder& operator=(const LaneFrameBinder&) = delete;

  // Routes subsequent acquires/releases through `arena` (nullptr detaches —
  // back to direct shared-heap access).  Called at round boundaries by the
  // executing lane.
  void SetArena(LaneArena* arena) { arena_ = arena; }

  void AcquireFrameBlock(FrameId frame) override {
    if (held_.size() <= frame.value) {
      held_.resize(frame.value + 1);
    }
    DSA_ASSERT(!held_[frame.value].valid(), "frame already holds a block");
    BlockRef ref;
    const bool ok = arena_ != nullptr ? arena_->TryAllocate(page_words_, &ref)
                                      : heap_->TryAllocate(page_words_, &ref);
    // The heap is sized for worst-case demand plus arena slack before any
    // lane runs; exhaustion here is a sizing bug, not a runtime condition.
    DSA_ASSERT(ok, "shared heap exhausted: undersized for lane demand");
    held_[frame.value] = ref;
    ++held_count_;
    ++acquired_total_;
  }

  void ReleaseFrameBlock(FrameId frame) override {
    DSA_ASSERT(frame.value < held_.size() && held_[frame.value].valid(),
               "releasing a frame that holds no block");
    if (arena_ != nullptr) {
      arena_->Free(held_[frame.value]);
    } else {
      heap_->Free(held_[frame.value]);
    }
    held_[frame.value] = BlockRef{};
    --held_count_;
    ++released_total_;
  }

  void ReleaseAllFrameBlocks() override {
    for (BlockRef& ref : held_) {
      if (ref.valid()) {
        if (arena_ != nullptr) {
          arena_->Free(ref);
        } else {
          heap_->Free(ref);
        }
        ref = BlockRef{};
        --held_count_;
        ++released_total_;
      }
    }
  }

  std::size_t held_count() const { return held_count_; }
  // Deterministic ledgers (pure functions of the simulated load/evict
  // sequence, unlike the pool's contention stats).
  std::uint64_t acquired_total() const { return acquired_total_; }
  std::uint64_t released_total() const { return released_total_; }

 private:
  ConcurrentFixedHeap* heap_;
  LaneArena* arena_{nullptr};
  std::size_t page_words_;
  std::vector<BlockRef> held_;  // indexed by frame
  std::size_t held_count_{0};
  std::uint64_t acquired_total_{0};
  std::uint64_t released_total_{0};
};

}  // namespace dsa

#endif  // SRC_EXEC_LANE_BINDER_H_
