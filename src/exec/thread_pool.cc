#include "src/exec/thread_pool.h"

#include <cstdlib>
#include <string>

namespace dsa {

unsigned HardwareJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

unsigned JobsFromEnv(unsigned fallback) {
  const char* raw = std::getenv("DSA_JOBS");
  if (raw == nullptr || raw[0] == '\0') {
    return fallback == 0 ? 1u : fallback;
  }
  const std::string value(raw);
  if (value == "auto" || value == "0") {
    return HardwareJobs();
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed == 0) {
    return fallback == 0 ? 1u : fallback;
  }
  return static_cast<unsigned>(parsed);
}

ThreadPool::ThreadPool(unsigned workers) : lanes_(workers == 0 ? 1u : workers) {
  threads_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    threads_.emplace_back(&ThreadPool::WorkerLoop, this, lane);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  if (lanes_ <= 1 || count == 1) {
    // The serial path: index order on the calling thread, no pool traffic.
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  Batch batch(lanes_);
  batch.body = &body;
  batch.remaining.store(count, std::memory_order_relaxed);
  // Deal indices round-robin so every lane starts with local work; the
  // steal path only runs once a lane is dry.
  for (std::size_t i = 0; i < count; ++i) {
    batch.lanes[i % lanes_].indices.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  Drain(&batch, /*lane=*/0);

  {
    // The batch lives on this stack frame: wait until every cell has run
    // AND every pool thread has stepped out of Drain before letting it die.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch.remaining.load(std::memory_order_acquire) == 0 &&
             batch.active_workers == 0;
    });
    batch_ = nullptr;
  }
  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

void ThreadPool::WorkerLoop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && generation_ != seen);
      });
      if (stop_) {
        return;
      }
      batch = batch_;
      seen = generation_;
      ++batch->active_workers;
    }
    Drain(batch, lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --batch->active_workers;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::Drain(Batch* batch, std::size_t lane) {
  std::size_t index = 0;
  while (NextIndex(batch, lane, &index)) {
    try {
      (*batch->body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->error_mutex);
      if (!batch->error) {
        batch->error = std::current_exception();
      }
    }
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last cell done; wake the caller (which may already be waiting).
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

bool ThreadPool::NextIndex(Batch* batch, std::size_t lane, std::size_t* index) {
  {
    Lane& own = batch->lanes[lane];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.indices.empty()) {
      *index = own.indices.front();
      own.indices.pop_front();
      return true;
    }
  }
  // Steal from the back of the other lanes, nearest neighbour first.
  for (std::size_t step = 1; step < batch->lanes.size(); ++step) {
    Lane& victim = batch->lanes[(lane + step) % batch->lanes.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.indices.empty()) {
      *index = victim.indices.back();
      victim.indices.pop_back();
      return true;
    }
  }
  // Indices are never re-enqueued, so a full dry scan is terminal.
  return false;
}

}  // namespace dsa
