// A work-stealing thread pool for deterministic sweep execution.
//
// The simulator's experiments are embarrassingly parallel at the cell level
// (a cell = one seeded simulation run), so the pool's only job is a
// blocking ParallelFor over a fixed index range.  Determinism is preserved
// by construction: the pool never owns results — callers hand every cell
// its own pre-allocated slot (see sweep_runner.h), so scheduling and
// completion order are invisible in the output.
//
// Scheduling is work-stealing over per-lane deques: indices are dealt
// round-robin across lanes up front, each lane pops its own deque from the
// front and steals from other lanes' backs when dry.  Cells are coarse
// (milliseconds each), so mutex-guarded deques cost nothing measurable and
// stay trivially clean under TSan.  The calling thread participates as
// lane 0; a pool built with `workers == 1` owns no threads at all and
// ParallelFor degenerates to today's serial in-order loop.
//
// Worker count selection: DSA_JOBS env (via JobsFromEnv) or an explicit
// --jobs flag, 1 = serial.

#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsa {

// Usable hardware parallelism, never zero (1 when unknown).
unsigned HardwareJobs();

// Worker count from the DSA_JOBS environment variable: a positive integer,
// or "0"/"auto" for HardwareJobs().  Unset or malformed: `fallback`.
unsigned JobsFromEnv(unsigned fallback);

class ThreadPool {
 public:
  // `workers` is the total lane count including the calling thread, so the
  // pool owns workers-1 threads; 0 is clamped to 1 (serial).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return lanes_; }

  // Runs body(0) ... body(count-1) exactly once each and returns when all
  // have completed.  With one lane the calls happen in index order on the
  // calling thread; otherwise order is unspecified.  The first exception
  // thrown by any call is rethrown here after the batch drains.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  struct Lane {
    std::mutex mutex;
    std::deque<std::size_t> indices;
  };

  struct Batch {
    explicit Batch(unsigned lane_count) : lanes(lane_count) {}
    std::deque<Lane> lanes;  // deque: Lane holds a mutex and must not move
    const std::function<void(std::size_t)>* body{nullptr};
    std::atomic<std::size_t> remaining{0};
    std::size_t active_workers{0};  // pool threads inside Drain; guarded by pool mutex
    std::exception_ptr error;       // first failure; guarded by error_mutex
    std::mutex error_mutex;
  };

  void WorkerLoop(std::size_t lane);
  // Pops the own lane, then steals; runs cells until the batch is dry.
  void Drain(Batch* batch, std::size_t lane);
  bool NextIndex(Batch* batch, std::size_t lane, std::size_t* index);

  unsigned lanes_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a new batch is available
  std::condition_variable done_cv_;  // caller: batch drained and workers out
  Batch* batch_{nullptr};
  std::uint64_t generation_{0};
  bool stop_{false};
};

}  // namespace dsa

#endif  // SRC_EXEC_THREAD_POOL_H_
