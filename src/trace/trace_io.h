// Plain-text serialisation for traces, so experiments can be re-run on
// externally captured or hand-written workloads.
//
// Reference trace format (one record per line, '#' comments allowed):
//   ref <name> <r|w|x>
// Allocation trace format:
//   alloc <request-id> <size>
//   free <request-id>

#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/core/expected.h"
#include "src/trace/allocation.h"
#include "src/trace/reference.h"

namespace dsa {

struct TraceParseError {
  std::size_t line{0};
  std::string message;
};

void WriteReferenceTrace(const ReferenceTrace& trace, std::ostream* out);
Expected<ReferenceTrace, TraceParseError> ReadReferenceTrace(std::istream* in);

void WriteAllocationTrace(const AllocationTrace& trace, std::ostream* out);
Expected<AllocationTrace, TraceParseError> ReadAllocationTrace(std::istream* in);

}  // namespace dsa

#endif  // SRC_TRACE_TRACE_IO_H_
