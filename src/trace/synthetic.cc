#include "src/trace/synthetic.h"

#include <cmath>
#include <vector>

#include "src/core/assert.h"
#include "src/core/rng.h"

namespace dsa {

namespace {

AccessKind PickKind(Rng* rng, double write_fraction) {
  return rng->Chance(write_fraction) ? AccessKind::kWrite : AccessKind::kRead;
}

}  // namespace

ReferenceTrace MakeSequentialTrace(const SequentialTraceParams& params) {
  DSA_ASSERT(params.extent > 0, "sequential trace needs a nonzero extent");
  Rng rng(params.seed);
  ReferenceTrace trace;
  trace.label = "sequential";
  trace.refs.reserve(params.length);
  for (std::size_t i = 0; i < params.length; ++i) {
    const Name name{static_cast<std::uint64_t>(i) % params.extent};
    trace.refs.push_back({name, PickKind(&rng, params.write_fraction)});
  }
  return trace;
}

ReferenceTrace MakeRandomTrace(const RandomTraceParams& params) {
  DSA_ASSERT(params.extent > 0, "random trace needs a nonzero extent");
  Rng rng(params.seed);
  ReferenceTrace trace;
  trace.label = "random";
  trace.refs.reserve(params.length);
  for (std::size_t i = 0; i < params.length; ++i) {
    trace.refs.push_back({Name{rng.Below(params.extent)}, PickKind(&rng, params.write_fraction)});
  }
  return trace;
}

ReferenceTrace MakeLoopTrace(const LoopTraceParams& params) {
  DSA_ASSERT(params.body_words > 0, "loop body must be nonempty");
  DSA_ASSERT(params.extent >= params.body_words, "loop body exceeds extent");
  Rng rng(params.seed);
  ReferenceTrace trace;
  trace.label = "loop";
  trace.refs.reserve(params.length);
  WordCount body_base = 0;
  std::size_t iteration = 0;
  WordCount offset = 0;
  while (trace.refs.size() < params.length) {
    const Name name{(body_base + offset) % params.extent};
    trace.refs.push_back({name, PickKind(&rng, params.write_fraction)});
    ++offset;
    if (offset == params.body_words) {
      offset = 0;
      ++iteration;
      if (iteration == params.iterations) {
        iteration = 0;
        body_base = (body_base + params.advance_words) % params.extent;
      }
    }
  }
  return trace;
}

ReferenceTrace MakeWorkingSetTrace(const WorkingSetTraceParams& params) {
  DSA_ASSERT(params.region_words > 0, "region size must be positive");
  DSA_ASSERT(params.extent >= params.region_words, "region exceeds extent");
  Rng rng(params.seed);
  ReferenceTrace trace;
  trace.label = "working-set";
  trace.refs.reserve(params.phases * params.phase_length);
  const WordCount region_count = params.extent / params.region_words;
  DSA_ASSERT(region_count >= params.regions_per_phase,
             "extent too small for the requested working set");
  for (std::size_t phase = 0; phase < params.phases; ++phase) {
    // Pick this phase's working set of regions.
    std::vector<WordCount> regions;
    regions.reserve(params.regions_per_phase);
    for (std::size_t i = 0; i < params.regions_per_phase; ++i) {
      regions.push_back(rng.Below(region_count));
    }
    std::size_t hot = 0;
    for (std::size_t i = 0; i < params.phase_length; ++i) {
      if (!rng.Chance(params.rereference_bias)) {
        hot = rng.Below(regions.size());
      }
      const WordCount base = regions[hot] * params.region_words;
      const Name name{base + rng.Below(params.region_words)};
      trace.refs.push_back({name, PickKind(&rng, params.write_fraction)});
    }
  }
  return trace;
}

ReferenceTrace MakeMatrixTrace(const MatrixTraceParams& params) {
  DSA_ASSERT(params.rows > 0 && params.cols > 0, "matrix must be nonempty");
  Rng rng(params.seed);
  ReferenceTrace trace;
  trace.label = params.column_major ? "matrix-column-major" : "matrix-row-major";
  trace.refs.reserve(params.passes * params.rows * params.cols);
  for (std::size_t pass = 0; pass < params.passes; ++pass) {
    if (params.column_major) {
      for (std::size_t c = 0; c < params.cols; ++c) {
        for (std::size_t r = 0; r < params.rows; ++r) {
          const Name name{params.base + r * params.cols + c};
          trace.refs.push_back({name, PickKind(&rng, params.write_fraction)});
        }
      }
    } else {
      for (std::size_t r = 0; r < params.rows; ++r) {
        for (std::size_t c = 0; c < params.cols; ++c) {
          const Name name{params.base + r * params.cols + c};
          trace.refs.push_back({name, PickKind(&rng, params.write_fraction)});
        }
      }
    }
  }
  return trace;
}

ReferenceTrace MakeZipfTrace(const ZipfTraceParams& params) {
  DSA_ASSERT(params.extent > 0, "zipf trace needs a nonzero extent");
  DSA_ASSERT(params.theta >= 0.0 && params.theta < 1.5, "theta out of range");
  Rng rng(params.seed);
  ReferenceTrace trace;
  trace.label = "zipf";
  trace.refs.reserve(params.length);
  // Standard Zipf sampler via the Gray/Knuth approximation.
  const double n = static_cast<double>(params.extent);
  const double theta = params.theta;
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = [&] {
    // Truncated harmonic sum; exact for small extents, sampled for large.
    double z = 0.0;
    const std::uint64_t limit = params.extent > 100000 ? 100000 : params.extent;
    for (std::uint64_t i = 1; i <= limit; ++i) {
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (params.extent > limit) {
      // Integral tail approximation.
      z += (std::pow(n, 1.0 - theta) - std::pow(static_cast<double>(limit), 1.0 - theta)) /
           (1.0 - theta);
    }
    return z;
  }();
  const double zeta2 = 1.0 + std::pow(0.5, theta);
  const double eta = (1.0 - std::pow(2.0 / n, 1.0 - theta)) / (1.0 - zeta2 / zetan);
  for (std::size_t i = 0; i < params.length; ++i) {
    const double u = rng.NextDouble();
    const double uz = u * zetan;
    std::uint64_t name_value = 0;
    if (uz < 1.0) {
      name_value = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta)) {
      name_value = 1;
    } else {
      name_value = static_cast<std::uint64_t>(n * std::pow(eta * u - eta + 1.0, alpha));
      if (name_value >= params.extent) {
        name_value = params.extent - 1;
      }
    }
    trace.refs.push_back({Name{name_value}, PickKind(&rng, params.write_fraction)});
  }
  return trace;
}

ReferenceTrace Concatenate(const ReferenceTrace& a, const ReferenceTrace& b) {
  ReferenceTrace out;
  out.label = a.label + "+" + b.label;
  out.refs.reserve(a.refs.size() + b.refs.size());
  out.refs.insert(out.refs.end(), a.refs.begin(), a.refs.end());
  out.refs.insert(out.refs.end(), b.refs.begin(), b.refs.end());
  return out;
}

}  // namespace dsa
