// Synthetic reference-trace generators.
//
// The 1967 paper reasons about program behaviour qualitatively ("if the
// program has started using information from a particular segment, it is
// likely, in a short time, to need to use other information in that
// segment").  These generators parameterise exactly the properties that
// argument depends on: spatial locality, loop structure, phase changes, and
// skew.  Each returns a deterministic trace for a given seed.

#ifndef SRC_TRACE_SYNTHETIC_H_
#define SRC_TRACE_SYNTHETIC_H_

#include <cstdint>

#include "src/trace/reference.h"

namespace dsa {

// Straight-line sweep through [0, extent), wrapping, `length` references.
// The best case for prefetching and the worst case for LRU at small memory.
struct SequentialTraceParams {
  WordCount extent{1 << 16};
  std::size_t length{100000};
  double write_fraction{0.25};
  std::uint64_t seed{1};
};
ReferenceTrace MakeSequentialTrace(const SequentialTraceParams& params);

// Uniform random references over [0, extent): the no-locality baseline where
// every replacement policy degenerates to the same fault rate.
struct RandomTraceParams {
  WordCount extent{1 << 16};
  std::size_t length{100000};
  double write_fraction{0.25};
  std::uint64_t seed{2};
};
ReferenceTrace MakeRandomTrace(const RandomTraceParams& params);

// Nested-loop structure: the trace repeatedly sweeps a loop body of
// `body_words`, re-entering it `iterations` times, then advances the body by
// `advance_words` and repeats.  This is the periodic behaviour the ATLAS
// learning program was designed to exploit.
struct LoopTraceParams {
  WordCount extent{1 << 16};
  WordCount body_words{2048};
  WordCount advance_words{1024};
  std::size_t iterations{8};
  std::size_t length{100000};
  double write_fraction{0.25};
  std::uint64_t seed{3};
};
ReferenceTrace MakeLoopTrace(const LoopTraceParams& params);

// Working-set phase model: execution proceeds in phases; each phase picks a
// fresh random set of `pages_per_phase` page-sized regions and references
// within it (mostly re-referencing recent words).  Phase transitions are the
// locality disruptions that defeat purely historical replacement.
struct WorkingSetTraceParams {
  WordCount extent{1 << 18};
  WordCount region_words{512};     // granularity of the working set
  std::size_t regions_per_phase{12};
  std::size_t phase_length{20000}; // references per phase
  std::size_t phases{10};
  double rereference_bias{0.9};    // probability of staying on the hot region
  double write_fraction{0.25};
  std::uint64_t seed{4};
};
ReferenceTrace MakeWorkingSetTrace(const WorkingSetTraceParams& params);

// Matrix traversal over a row-major rows x cols array starting at `base`.
// Row-major traversal is page-friendly; column-major touches a new page
// almost every reference once rows exceed page_size/cols.
struct MatrixTraceParams {
  WordCount base{0};
  std::size_t rows{256};
  std::size_t cols{256};
  bool column_major{false};
  std::size_t passes{2};
  double write_fraction{0.5};
  std::uint64_t seed{5};
};
ReferenceTrace MakeMatrixTrace(const MatrixTraceParams& params);

// Zipf-skewed references: a few names dominate.  Models the "permanently
// resident supervisor" pattern MULTICS pins explicitly.
struct ZipfTraceParams {
  WordCount extent{1 << 16};
  std::size_t length{100000};
  double theta{0.99};  // skew; 0 = uniform
  double write_fraction{0.25};
  std::uint64_t seed{6};
};
ReferenceTrace MakeZipfTrace(const ZipfTraceParams& params);

// Concatenates b onto a (used to build multi-phase workloads).
ReferenceTrace Concatenate(const ReferenceTrace& a, const ReferenceTrace& b);

}  // namespace dsa

#endif  // SRC_TRACE_SYNTHETIC_H_
