// Allocation-request traces: sequences of variable-size allocate/free
// operations driving the placement-strategy experiments (E3, E6) and the
// paging-vs-variable fragmentation comparison (E1).

#ifndef SRC_TRACE_ALLOCATION_H_
#define SRC_TRACE_ALLOCATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace dsa {

enum class AllocOpKind : std::uint8_t {
  kAllocate,
  kFree,
};

// One allocation-trace operation.  `request` identifies the object so frees
// can name their allocation; `size` is meaningful only for kAllocate.
struct AllocOp {
  AllocOpKind kind{AllocOpKind::kAllocate};
  std::uint64_t request{0};
  WordCount size{0};

  bool operator==(const AllocOp&) const = default;
};

struct AllocationTrace {
  std::string label;
  std::vector<AllocOp> ops;

  std::size_t size() const { return ops.size(); }

  // Peak simultaneously-live words if every allocation succeeded (the load
  // the trace puts on storage, independent of any allocator).
  WordCount PeakLiveWords() const;
};

// The request-size distributions the generators can draw from.  The paper's
// placement discussion keys on "the average size of allocation unit, and the
// number of different allocation units"; these shapes vary exactly that.
enum class SizeDistribution : std::uint8_t {
  kUniform,      // sizes uniform in [min, max]
  kExponential,  // many small, few large (typical segment populations)
  kBimodal,      // small working segments + occasional large arrays
  kFixed,        // all requests the same size (the degenerate paging-friendly case)
};

struct AllocationTraceParams {
  std::size_t operations{20000};
  SizeDistribution distribution{SizeDistribution::kExponential};
  WordCount min_size{1};
  WordCount max_size{4096};
  double mean_size{128.0};          // for kExponential
  WordCount small_size{32};         // for kBimodal
  WordCount large_size{2048};       // for kBimodal
  double large_fraction{0.1};       // for kBimodal
  // Steady-state control: probability that the next op frees a live object
  // instead of allocating, once `target_live` objects exist.
  std::size_t target_live{256};
  std::uint64_t seed{11};
};

// Generates an alloc/free stream: ramps up to target_live objects, then
// holds a churn steady state, freeing objects chosen uniformly at random
// (exponential lifetimes).
AllocationTrace MakeAllocationTrace(const AllocationTraceParams& params);

const char* ToString(SizeDistribution distribution);

}  // namespace dsa

#endif  // SRC_TRACE_ALLOCATION_H_
