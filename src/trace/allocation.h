// Allocation-request traces: sequences of variable-size allocate/free
// operations driving the placement-strategy experiments (E3, E6) and the
// paging-vs-variable fragmentation comparison (E1).

#ifndef SRC_TRACE_ALLOCATION_H_
#define SRC_TRACE_ALLOCATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace dsa {

enum class AllocOpKind : std::uint8_t {
  kAllocate,
  kFree,
};

// One allocation-trace operation.  `request` identifies the object so frees
// can name their allocation; `size` is meaningful only for kAllocate.
struct AllocOp {
  AllocOpKind kind{AllocOpKind::kAllocate};
  std::uint64_t request{0};
  WordCount size{0};

  bool operator==(const AllocOp&) const = default;
};

struct AllocationTrace {
  std::string label;
  std::vector<AllocOp> ops;

  std::size_t size() const { return ops.size(); }

  // Peak simultaneously-live words if every allocation succeeded (the load
  // the trace puts on storage, independent of any allocator).
  WordCount PeakLiveWords() const;
};

// The request-size distributions the generators can draw from.  The paper's
// placement discussion keys on "the average size of allocation unit, and the
// number of different allocation units"; these shapes vary exactly that.
enum class SizeDistribution : std::uint8_t {
  kUniform,      // sizes uniform in [min, max]
  kExponential,  // many small, few large (typical segment populations)
  kBimodal,      // small working segments + occasional large arrays
  kFixed,        // all requests the same size (the degenerate paging-friendly case)
  kZipf,         // popularity-ranked distinct sizes (real heaps reuse few sizes a lot)
};

struct AllocationTraceParams {
  std::size_t operations{20000};
  SizeDistribution distribution{SizeDistribution::kExponential};
  WordCount min_size{1};
  WordCount max_size{4096};
  double mean_size{128.0};          // for kExponential
  WordCount small_size{32};         // for kBimodal
  WordCount large_size{2048};       // for kBimodal
  double large_fraction{0.1};       // for kBimodal
  // kZipf: rank r (0-based, most popular first) has weight 1/(r+1)^theta
  // over `zipf_distinct_sizes` distinct sizes spaced geometrically from
  // min_size (rank 0) to max_size (last rank) — popular sizes are small,
  // the shape segregated quick lists are built for.
  double zipf_theta{1.1};
  std::size_t zipf_distinct_sizes{32};
  // Steady-state control: probability that the next op frees a live object
  // instead of allocating, once `target_live` objects exist.
  std::size_t target_live{256};
  std::uint64_t seed{11};
};

// Generates an alloc/free stream: ramps up to target_live objects, then
// holds a churn steady state, freeing objects chosen uniformly at random
// (exponential lifetimes).
AllocationTrace MakeAllocationTrace(const AllocationTraceParams& params);

// Phase-model workload: computation proceeds in phases, each reusing a
// small private set of distinct sizes (tight size locality — the quick
// lists' best case) plus a few large long-lived objects that all die
// together when the phase ends (the bulk-free cliff that punishes designs
// with expensive coalescing).
struct PhaseTraceParams {
  std::size_t operations{20000};
  std::size_t phases{8};
  // Distinct small sizes active within one phase, drawn per phase from
  // [small_min, small_max].
  std::size_t sizes_per_phase{4};
  WordCount small_min{8};
  WordCount small_max{192};
  // Long-lived large objects allocated at phase start, freed at phase end.
  std::size_t large_per_phase{6};
  WordCount large_min{512};
  WordCount large_max{2048};
  std::size_t target_live{256};
  std::uint64_t seed{23};
};

AllocationTrace MakePhaseAllocationTrace(const PhaseTraceParams& params);

// Measured workload: request sizes drawn from an empirical histogram (the
// size spectrum malloc studies keep reporting — dense small sizes, sparse
// powers of two above) and bimodal object lifetimes (most objects die
// young, a fixed fraction lives ~30x longer).  Frees are scheduled by a
// death clock rather than uniform victim choice, so free order correlates
// with allocation order like real heaps.
struct MeasuredTraceParams {
  std::size_t allocations{10000};
  double short_lifetime{48.0};  // mean ops until death for short-lived objects
  double long_lifetime{1500.0};
  double long_fraction{0.2};
  std::uint64_t seed{37};
};

AllocationTrace MakeMeasuredAllocationTrace(const MeasuredTraceParams& params);

const char* ToString(SizeDistribution distribution);

}  // namespace dsa

#endif  // SRC_TRACE_ALLOCATION_H_
