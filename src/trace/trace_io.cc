#include "src/trace/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace dsa {

namespace {

char KindChar(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return 'r';
    case AccessKind::kWrite:
      return 'w';
    case AccessKind::kExecute:
      return 'x';
  }
  return '?';
}

bool ParseKind(const std::string& token, AccessKind* kind) {
  if (token == "r") {
    *kind = AccessKind::kRead;
  } else if (token == "w") {
    *kind = AccessKind::kWrite;
  } else if (token == "x") {
    *kind = AccessKind::kExecute;
  } else {
    return false;
  }
  return true;
}

// Strips comments and leading whitespace; returns false for blank lines.
bool MeaningfulLine(std::string* line) {
  const auto hash = line->find('#');
  if (hash != std::string::npos) {
    line->erase(hash);
  }
  const auto first = line->find_first_not_of(" \t\r");
  if (first == std::string::npos) {
    return false;
  }
  line->erase(0, first);
  return true;
}

}  // namespace

void WriteReferenceTrace(const ReferenceTrace& trace, std::ostream* out) {
  *out << "# reference trace: " << trace.label << "\n";
  *out << "label " << trace.label << "\n";
  for (const Reference& r : trace.refs) {
    *out << "ref " << r.name.value << ' ' << KindChar(r.kind) << "\n";
  }
}

Expected<ReferenceTrace, TraceParseError> ReadReferenceTrace(std::istream* in) {
  ReferenceTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (!MeaningfulLine(&line)) {
      continue;
    }
    std::istringstream fields(line);
    std::string verb;
    fields >> verb;
    if (verb == "label") {
      fields >> trace.label;
    } else if (verb == "ref") {
      std::uint64_t name = 0;
      std::string kind_token;
      if (!(fields >> name >> kind_token)) {
        return MakeUnexpected(TraceParseError{line_no, "expected: ref <name> <r|w|x>"});
      }
      AccessKind kind{};
      if (!ParseKind(kind_token, &kind)) {
        return MakeUnexpected(TraceParseError{line_no, "bad access kind: " + kind_token});
      }
      trace.refs.push_back({Name{name}, kind});
    } else {
      return MakeUnexpected(TraceParseError{line_no, "unknown record: " + verb});
    }
  }
  return trace;
}

void WriteAllocationTrace(const AllocationTrace& trace, std::ostream* out) {
  *out << "# allocation trace: " << trace.label << "\n";
  *out << "label " << trace.label << "\n";
  for (const AllocOp& op : trace.ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      *out << "alloc " << op.request << ' ' << op.size << "\n";
    } else {
      *out << "free " << op.request << "\n";
    }
  }
}

Expected<AllocationTrace, TraceParseError> ReadAllocationTrace(std::istream* in) {
  AllocationTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (!MeaningfulLine(&line)) {
      continue;
    }
    std::istringstream fields(line);
    std::string verb;
    fields >> verb;
    if (verb == "label") {
      fields >> trace.label;
    } else if (verb == "alloc") {
      std::uint64_t request = 0;
      WordCount size = 0;
      if (!(fields >> request >> size) || size == 0) {
        return MakeUnexpected(TraceParseError{line_no, "expected: alloc <request> <size>=1..>"});
      }
      trace.ops.push_back({AllocOpKind::kAllocate, request, size});
    } else if (verb == "free") {
      std::uint64_t request = 0;
      if (!(fields >> request)) {
        return MakeUnexpected(TraceParseError{line_no, "expected: free <request>"});
      }
      trace.ops.push_back({AllocOpKind::kFree, request, 0});
    } else {
      return MakeUnexpected(TraceParseError{line_no, "unknown record: " + verb});
    }
  }
  return trace;
}

}  // namespace dsa
