// Reference traces: the instruction-level storage accesses a program makes.
//
// A trace is the workload unit for every paging/VM experiment.  References
// carry linear names; the naming module (and the segmented machines) layer
// their interpretation on top.

#ifndef SRC_TRACE_REFERENCE_H_
#define SRC_TRACE_REFERENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace dsa {

// One storage reference.
struct Reference {
  Name name;
  AccessKind kind{AccessKind::kRead};

  bool operator==(const Reference&) const = default;
};

// An ordered reference string, with an identifying label for reports.
struct ReferenceTrace {
  std::string label;
  std::vector<Reference> refs;

  std::size_t size() const { return refs.size(); }
  bool empty() const { return refs.empty(); }

  // Highest name referenced plus one; the minimal linear name space extent
  // this trace requires.  Zero for an empty trace.
  WordCount NameExtent() const;

  // The trace reduced to page numbers for a given page size; used by
  // offline-optimal replacement and by analysis helpers.
  std::vector<PageId> PageString(WordCount page_size) const;

  // Number of distinct pages touched at a given page size.
  std::size_t DistinctPages(WordCount page_size) const;
};

}  // namespace dsa

#endif  // SRC_TRACE_REFERENCE_H_
