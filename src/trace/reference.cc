#include "src/trace/reference.h"

#include <unordered_set>

#include "src/core/assert.h"

namespace dsa {

WordCount ReferenceTrace::NameExtent() const {
  WordCount extent = 0;
  for (const Reference& r : refs) {
    if (r.name.value + 1 > extent) {
      extent = r.name.value + 1;
    }
  }
  return extent;
}

std::vector<PageId> ReferenceTrace::PageString(WordCount page_size) const {
  DSA_ASSERT(page_size > 0, "page size must be positive");
  std::vector<PageId> pages;
  pages.reserve(refs.size());
  for (const Reference& r : refs) {
    pages.push_back(PageId{r.name.value / page_size});
  }
  return pages;
}

std::size_t ReferenceTrace::DistinctPages(WordCount page_size) const {
  DSA_ASSERT(page_size > 0, "page size must be positive");
  std::unordered_set<std::uint64_t> seen;
  for (const Reference& r : refs) {
    seen.insert(r.name.value / page_size);
  }
  return seen.size();
}

}  // namespace dsa
