#include "src/trace/allocation.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/assert.h"
#include "src/core/rng.h"

namespace dsa {

WordCount AllocationTrace::PeakLiveWords() const {
  WordCount live = 0;
  WordCount peak = 0;
  std::unordered_map<std::uint64_t, WordCount> sizes;
  for (const AllocOp& op : ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      sizes[op.request] = op.size;
      live += op.size;
      if (live > peak) {
        peak = live;
      }
    } else {
      auto it = sizes.find(op.request);
      DSA_ASSERT(it != sizes.end(), "free of unknown request in trace");
      live -= it->second;
      sizes.erase(it);
    }
  }
  return peak;
}

const char* ToString(SizeDistribution distribution) {
  switch (distribution) {
    case SizeDistribution::kUniform:
      return "uniform";
    case SizeDistribution::kExponential:
      return "exponential";
    case SizeDistribution::kBimodal:
      return "bimodal";
    case SizeDistribution::kFixed:
      return "fixed";
    case SizeDistribution::kZipf:
      return "zipf";
  }
  return "?";
}

namespace {

// Weighted discrete sampler over a fixed size table: cumulative weights +
// binary search, so one Draw costs one uniform double.
class SizeTable {
 public:
  SizeTable(std::vector<WordCount> sizes, std::vector<double> weights)
      : sizes_(std::move(sizes)) {
    cumulative_.reserve(weights.size());
    double total = 0.0;
    for (const double w : weights) {
      total += w;
      cumulative_.push_back(total);
    }
    for (double& c : cumulative_) {
      c /= total;
    }
  }

  WordCount Draw(Rng* rng) const {
    const double u = rng->NextDouble();
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    const std::size_t idx =
        it == cumulative_.end() ? cumulative_.size() - 1
                                : static_cast<std::size_t>(it - cumulative_.begin());
    return sizes_[idx];
  }

 private:
  std::vector<WordCount> sizes_;
  std::vector<double> cumulative_;
};

SizeTable MakeZipfTable(const AllocationTraceParams& params) {
  DSA_ASSERT(params.zipf_distinct_sizes >= 1, "zipf needs at least one size");
  const std::size_t n = params.zipf_distinct_sizes;
  std::vector<WordCount> sizes;
  std::vector<double> weights;
  sizes.reserve(n);
  weights.reserve(n);
  // Rank 0 = min_size, last rank = max_size, geometric spacing between;
  // duplicate sizes from integer rounding just merge probability mass.
  const double lo = static_cast<double>(params.min_size);
  const double hi = static_cast<double>(params.max_size);
  for (std::size_t r = 0; r < n; ++r) {
    const double t = n == 1 ? 0.0 : static_cast<double>(r) / static_cast<double>(n - 1);
    const double raw = lo * std::exp(t * std::log(hi / lo));
    auto size = static_cast<WordCount>(raw + 0.5);
    size = std::min(std::max(size, params.min_size), params.max_size);
    sizes.push_back(size);
    weights.push_back(1.0 / std::pow(static_cast<double>(r + 1), params.zipf_theta));
  }
  return SizeTable(std::move(sizes), std::move(weights));
}

WordCount DrawSize(const AllocationTraceParams& params, const SizeTable* zipf, Rng* rng) {
  switch (params.distribution) {
    case SizeDistribution::kUniform:
      return rng->Between(params.min_size, params.max_size);
    case SizeDistribution::kExponential: {
      const WordCount s = rng->ExponentialSize(params.mean_size, params.max_size);
      return s < params.min_size ? params.min_size : s;
    }
    case SizeDistribution::kBimodal:
      return rng->Chance(params.large_fraction) ? params.large_size : params.small_size;
    case SizeDistribution::kFixed:
      return params.mean_size < 1.0 ? 1 : static_cast<WordCount>(params.mean_size);
    case SizeDistribution::kZipf:
      return zipf->Draw(rng);
  }
  return params.min_size;
}

}  // namespace

AllocationTrace MakeAllocationTrace(const AllocationTraceParams& params) {
  DSA_ASSERT(params.min_size >= 1, "minimum request size is one word");
  DSA_ASSERT(params.min_size <= params.max_size, "min_size > max_size");
  Rng rng(params.seed);
  AllocationTrace trace;
  trace.label = std::string("alloc-") + ToString(params.distribution);
  trace.ops.reserve(params.operations);

  std::optional<SizeTable> zipf;
  if (params.distribution == SizeDistribution::kZipf) {
    zipf.emplace(MakeZipfTable(params));
  }

  std::vector<std::uint64_t> live;  // request ids currently allocated
  std::uint64_t next_request = 0;

  for (std::size_t i = 0; i < params.operations; ++i) {
    const bool at_steady_state = live.size() >= params.target_live;
    // In steady state alternate ~50/50 so the live population hovers at the
    // target; during ramp-up allocate with high probability.
    const bool do_free = !live.empty() && (at_steady_state ? rng.Chance(0.5) : rng.Chance(0.1));
    if (do_free) {
      const std::size_t victim = rng.Below(live.size());
      trace.ops.push_back({AllocOpKind::kFree, live[victim], 0});
      live[victim] = live.back();
      live.pop_back();
    } else {
      const WordCount size = DrawSize(params, zipf ? &*zipf : nullptr, &rng);
      trace.ops.push_back({AllocOpKind::kAllocate, next_request, size});
      live.push_back(next_request);
      ++next_request;
    }
  }
  return trace;
}

AllocationTrace MakePhaseAllocationTrace(const PhaseTraceParams& params) {
  DSA_ASSERT(params.phases >= 1, "phase trace needs at least one phase");
  DSA_ASSERT(params.sizes_per_phase >= 1, "phase trace needs at least one size per phase");
  DSA_ASSERT(params.small_min >= 1 && params.small_min <= params.small_max,
             "bad small size range");
  DSA_ASSERT(params.large_min >= 1 && params.large_min <= params.large_max,
             "bad large size range");
  Rng rng(params.seed);
  AllocationTrace trace;
  trace.label = "alloc-phase";
  trace.ops.reserve(params.operations + 2 * params.phases * params.large_per_phase);

  const std::size_t ops_per_phase = params.operations / params.phases;
  std::vector<std::uint64_t> live;  // churning small objects
  std::uint64_t next_request = 0;

  for (std::size_t phase = 0; phase < params.phases; ++phase) {
    // The phase's private size vocabulary.
    std::vector<WordCount> sizes(params.sizes_per_phase);
    for (WordCount& s : sizes) {
      s = rng.Between(params.small_min, params.small_max);
    }
    // Phase-scoped large objects, live until the phase ends.
    std::vector<std::uint64_t> phase_large;
    for (std::size_t i = 0; i < params.large_per_phase; ++i) {
      const WordCount size = rng.Between(params.large_min, params.large_max);
      trace.ops.push_back({AllocOpKind::kAllocate, next_request, size});
      phase_large.push_back(next_request);
      ++next_request;
    }
    // Small-object churn over the phase vocabulary.
    for (std::size_t i = 0; i < ops_per_phase; ++i) {
      const bool at_steady_state = live.size() >= params.target_live;
      const bool do_free =
          !live.empty() && (at_steady_state ? rng.Chance(0.5) : rng.Chance(0.1));
      if (do_free) {
        const std::size_t victim = rng.Below(live.size());
        trace.ops.push_back({AllocOpKind::kFree, live[victim], 0});
        live[victim] = live.back();
        live.pop_back();
      } else {
        const WordCount size = sizes[rng.Below(sizes.size())];
        trace.ops.push_back({AllocOpKind::kAllocate, next_request, size});
        live.push_back(next_request);
        ++next_request;
      }
    }
    // The phase-end cliff: every large object dies at once.
    for (const std::uint64_t request : phase_large) {
      trace.ops.push_back({AllocOpKind::kFree, request, 0});
    }
  }
  return trace;
}

AllocationTrace MakeMeasuredAllocationTrace(const MeasuredTraceParams& params) {
  DSA_ASSERT(params.allocations >= 1, "measured trace needs allocations");
  Rng rng(params.seed);
  AllocationTrace trace;
  trace.label = "alloc-measured";
  trace.ops.reserve(2 * params.allocations);

  // Size spectrum distilled from published malloc workload studies: the
  // small sizes dominate heavily and the tail is sparse powers of two.
  static const std::vector<WordCount> kSizes = {8,   12,  16,  24,  32,   48,   64,
                                                96,  128, 192, 256, 512,  1024, 2048};
  static const std::vector<double> kWeights = {18, 14, 16, 10, 12, 7, 8,
                                               4,  4,  2,  2,  1.5, 1, 0.5};
  const SizeTable table(kSizes, kWeights);

  // Death clock: (death time, request id) min-heap; std::greater makes the
  // earliest death pop first, ties broken by request id for determinism.
  using Death = std::pair<std::uint64_t, std::uint64_t>;
  std::priority_queue<Death, std::vector<Death>, std::greater<Death>> deaths;

  std::uint64_t next_request = 0;
  for (std::uint64_t t = 0; t < params.allocations; ++t) {
    while (!deaths.empty() && deaths.top().first <= t) {
      trace.ops.push_back({AllocOpKind::kFree, deaths.top().second, 0});
      deaths.pop();
    }
    const WordCount size = table.Draw(&rng);
    trace.ops.push_back({AllocOpKind::kAllocate, next_request, size});
    const double mean_life =
        rng.Chance(params.long_fraction) ? params.long_lifetime : params.short_lifetime;
    const std::uint64_t life = rng.ExponentialSize(mean_life, params.allocations);
    deaths.emplace(t + life, next_request);
    ++next_request;
  }
  // Run the clock out so the trace ends near-empty (final fragmentation is
  // then a property of the allocator, not of an arbitrary cut).
  while (!deaths.empty()) {
    trace.ops.push_back({AllocOpKind::kFree, deaths.top().second, 0});
    deaths.pop();
  }
  return trace;
}

}  // namespace dsa
