#include "src/trace/allocation.h"

#include <unordered_map>
#include <vector>

#include "src/core/assert.h"
#include "src/core/rng.h"

namespace dsa {

WordCount AllocationTrace::PeakLiveWords() const {
  WordCount live = 0;
  WordCount peak = 0;
  std::unordered_map<std::uint64_t, WordCount> sizes;
  for (const AllocOp& op : ops) {
    if (op.kind == AllocOpKind::kAllocate) {
      sizes[op.request] = op.size;
      live += op.size;
      if (live > peak) {
        peak = live;
      }
    } else {
      auto it = sizes.find(op.request);
      DSA_ASSERT(it != sizes.end(), "free of unknown request in trace");
      live -= it->second;
      sizes.erase(it);
    }
  }
  return peak;
}

const char* ToString(SizeDistribution distribution) {
  switch (distribution) {
    case SizeDistribution::kUniform:
      return "uniform";
    case SizeDistribution::kExponential:
      return "exponential";
    case SizeDistribution::kBimodal:
      return "bimodal";
    case SizeDistribution::kFixed:
      return "fixed";
  }
  return "?";
}

namespace {

WordCount DrawSize(const AllocationTraceParams& params, Rng* rng) {
  switch (params.distribution) {
    case SizeDistribution::kUniform:
      return rng->Between(params.min_size, params.max_size);
    case SizeDistribution::kExponential: {
      const WordCount s = rng->ExponentialSize(params.mean_size, params.max_size);
      return s < params.min_size ? params.min_size : s;
    }
    case SizeDistribution::kBimodal:
      return rng->Chance(params.large_fraction) ? params.large_size : params.small_size;
    case SizeDistribution::kFixed:
      return params.mean_size < 1.0 ? 1 : static_cast<WordCount>(params.mean_size);
  }
  return params.min_size;
}

}  // namespace

AllocationTrace MakeAllocationTrace(const AllocationTraceParams& params) {
  DSA_ASSERT(params.min_size >= 1, "minimum request size is one word");
  DSA_ASSERT(params.min_size <= params.max_size, "min_size > max_size");
  Rng rng(params.seed);
  AllocationTrace trace;
  trace.label = std::string("alloc-") + ToString(params.distribution);
  trace.ops.reserve(params.operations);

  std::vector<std::uint64_t> live;  // request ids currently allocated
  std::uint64_t next_request = 0;

  for (std::size_t i = 0; i < params.operations; ++i) {
    const bool at_steady_state = live.size() >= params.target_live;
    // In steady state alternate ~50/50 so the live population hovers at the
    // target; during ramp-up allocate with high probability.
    const bool do_free = !live.empty() && (at_steady_state ? rng.Chance(0.5) : rng.Chance(0.1));
    if (do_free) {
      const std::size_t victim = rng.Below(live.size());
      trace.ops.push_back({AllocOpKind::kFree, live[victim], 0});
      live[victim] = live.back();
      live.pop_back();
    } else {
      const WordCount size = DrawSize(params, &rng);
      trace.ops.push_back({AllocOpKind::kAllocate, next_request, size});
      live.push_back(next_request);
      ++next_request;
    }
  }
  return trace;
}

}  // namespace dsa
