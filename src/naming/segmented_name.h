// The two-component name of an item in a segmented name space:
// "(name of segment, name of item within segment)".

#ifndef SRC_NAMING_SEGMENTED_NAME_H_
#define SRC_NAMING_SEGMENTED_NAME_H_

#include "src/core/types.h"

namespace dsa {

struct SegmentedName {
  SegmentId segment;
  WordCount offset{0};

  bool operator==(const SegmentedName&) const = default;
};

}  // namespace dsa

#endif  // SRC_NAMING_SEGMENTED_NAME_H_
