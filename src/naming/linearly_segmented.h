// The linearly segmented name space (IBM 360/67, MULTICS hardware): "a
// sequence of bits at the most significant end of the address representation
// is considered to be the segment name."
//
// Because segment names are ordered and indexable, allocating the names of a
// multi-segment object means finding a *contiguous run* of free segment
// names — the same fragmentation problem as storage allocation, re-created
// one level up.  `AllocateRun`/`FreeRun` expose that bookkeeping so
// experiment E8 can measure it against the symbolic directory.

#ifndef SRC_NAMING_LINEARLY_SEGMENTED_H_
#define SRC_NAMING_LINEARLY_SEGMENTED_H_

#include <cstdint>
#include <optional>

#include "src/alloc/free_list.h"
#include "src/core/expected.h"
#include "src/core/types.h"
#include "src/naming/segmented_name.h"

namespace dsa {

enum class NamePackError : std::uint8_t {
  kSegmentOutOfRange,
  kOffsetOutOfRange,
};

class LinearlySegmentedNameSpace {
 public:
  // The address representation is split into `segment_bits` high bits and
  // `offset_bits` low bits (360/67 with 24-bit addressing: 4 + 20).
  LinearlySegmentedNameSpace(int segment_bits, int offset_bits);

  int segment_bits() const { return segment_bits_; }
  int offset_bits() const { return offset_bits_; }
  std::uint64_t max_segments() const { return std::uint64_t{1} << segment_bits_; }
  WordCount max_segment_extent() const { return WordCount{1} << offset_bits_; }

  // Packs a two-component name into the linear representation.
  Expected<Name, NamePackError> Pack(SegmentedName name) const;

  // Splits a linear representation into its two components.
  SegmentedName Unpack(Name name) const;

  // --- Segment-name bookkeeping ------------------------------------------
  // Allocates `count` *contiguous* segment names (first-fit over the segment
  // name dictionary).  Nullopt when no contiguous run exists, even if enough
  // names are free in total — that shortfall is name-space fragmentation.
  std::optional<SegmentId> AllocateRun(std::uint64_t count);
  void FreeRun(SegmentId first, std::uint64_t count);

  std::uint64_t free_names() const { return name_holes_.total_free(); }
  std::uint64_t largest_free_run() const { return name_holes_.largest_hole(); }
  std::size_t name_hole_count() const { return name_holes_.hole_count(); }

  // Dictionary operations performed (the bookkeeping-cost metric of E8).
  std::uint64_t bookkeeping_ops() const { return bookkeeping_ops_; }
  std::uint64_t run_failures() const { return run_failures_; }

 private:
  int segment_bits_;
  int offset_bits_;
  FreeList name_holes_;  // reuse hole management over the segment-name space
  std::uint64_t bookkeeping_ops_{0};
  std::uint64_t run_failures_{0};
};

}  // namespace dsa

#endif  // SRC_NAMING_LINEARLY_SEGMENTED_H_
