#include "src/naming/linearly_segmented.h"

#include "src/core/assert.h"

namespace dsa {

LinearlySegmentedNameSpace::LinearlySegmentedNameSpace(int segment_bits, int offset_bits)
    : segment_bits_(segment_bits),
      offset_bits_(offset_bits),
      name_holes_(std::uint64_t{1} << segment_bits) {
  DSA_ASSERT(segment_bits_ > 0 && offset_bits_ > 0, "both name components need bits");
  DSA_ASSERT(segment_bits_ + offset_bits_ <= 63, "address representation too wide");
}

Expected<Name, NamePackError> LinearlySegmentedNameSpace::Pack(SegmentedName name) const {
  if (name.segment.value >= max_segments()) {
    return MakeUnexpected(NamePackError::kSegmentOutOfRange);
  }
  if (name.offset >= max_segment_extent()) {
    return MakeUnexpected(NamePackError::kOffsetOutOfRange);
  }
  return Name{(name.segment.value << offset_bits_) | name.offset};
}

SegmentedName LinearlySegmentedNameSpace::Unpack(Name name) const {
  SegmentedName out;
  out.segment = SegmentId{name.value >> offset_bits_};
  out.offset = name.value & (max_segment_extent() - 1);
  DSA_ASSERT(out.segment.value < max_segments(), "name exceeds the address representation");
  return out;
}

std::optional<SegmentId> LinearlySegmentedNameSpace::AllocateRun(std::uint64_t count) {
  DSA_ASSERT(count > 0, "cannot allocate zero segment names");
  // First-fit search over the dictionary of free name runs.
  for (const auto& [start, size] : name_holes_) {
    ++bookkeeping_ops_;
    if (size >= count) {
      const std::uint64_t first = start;  // copy: TakeRange invalidates the iterator
      name_holes_.TakeRange(PhysicalAddress{first}, count);
      ++bookkeeping_ops_;
      return SegmentId{first};
    }
  }
  ++run_failures_;
  return std::nullopt;
}

void LinearlySegmentedNameSpace::FreeRun(SegmentId first, std::uint64_t count) {
  DSA_ASSERT(count > 0, "cannot free zero segment names");
  name_holes_.Insert(Block{PhysicalAddress{first.value}, count});
  ++bookkeeping_ops_;
}

}  // namespace dsa
