// The symbolically segmented name space (Burroughs B5000): "the segments are
// in no sense ordered, since users are not provided with any means of
// manipulating a segment name to produce another name."
//
// With no ordering there is no name contiguity, hence no search for
// contiguous free names and no dictionary fragmentation — the directory is a
// flat symbol table with O(1)-ish bookkeeping per operation.  The counters
// here pair with LinearlySegmentedNameSpace's for experiment E8.

#ifndef SRC_NAMING_SYMBOLIC_H_
#define SRC_NAMING_SYMBOLIC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"

namespace dsa {

class SymbolicSegmentDirectory {
 public:
  explicit SymbolicSegmentDirectory(std::uint64_t max_segments = 1u << 20)
      : max_segments_(max_segments) {}

  // Binds a fresh segment id to `symbol`.  Nullopt if the symbol is already
  // bound or the directory is full.
  std::optional<SegmentId> Create(const std::string& symbol);

  // Unbinds `symbol`; its id returns to the free pool immediately — no
  // reallocation or tolerated fragmentation, which is the paper's point.
  bool Destroy(const std::string& symbol);

  std::optional<SegmentId> Lookup(const std::string& symbol) const;

  // Reverse lookup, for reports.
  std::optional<std::string> SymbolOf(SegmentId id) const;

  std::size_t size() const { return by_symbol_.size(); }
  std::uint64_t max_segments() const { return max_segments_; }

  // Dictionary operations performed (one per create/destroy/lookup step).
  std::uint64_t bookkeeping_ops() const { return bookkeeping_ops_; }

 private:
  std::uint64_t max_segments_;
  std::unordered_map<std::string, SegmentId> by_symbol_;
  std::unordered_map<std::uint64_t, std::string> by_id_;
  std::vector<SegmentId> free_ids_;
  std::uint64_t next_fresh_id_{0};
  mutable std::uint64_t bookkeeping_ops_{0};
};

}  // namespace dsa

#endif  // SRC_NAMING_SYMBOLIC_H_
