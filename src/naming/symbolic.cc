#include "src/naming/symbolic.h"

namespace dsa {

std::optional<SegmentId> SymbolicSegmentDirectory::Create(const std::string& symbol) {
  ++bookkeeping_ops_;
  if (by_symbol_.contains(symbol)) {
    return std::nullopt;
  }
  SegmentId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    if (next_fresh_id_ >= max_segments_) {
      return std::nullopt;
    }
    id = SegmentId{next_fresh_id_++};
  }
  by_symbol_.emplace(symbol, id);
  by_id_.emplace(id.value, symbol);
  return id;
}

bool SymbolicSegmentDirectory::Destroy(const std::string& symbol) {
  ++bookkeeping_ops_;
  auto it = by_symbol_.find(symbol);
  if (it == by_symbol_.end()) {
    return false;
  }
  by_id_.erase(it->second.value);
  free_ids_.push_back(it->second);
  by_symbol_.erase(it);
  return true;
}

std::optional<SegmentId> SymbolicSegmentDirectory::Lookup(const std::string& symbol) const {
  ++bookkeeping_ops_;
  auto it = by_symbol_.find(symbol);
  if (it == by_symbol_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<std::string> SymbolicSegmentDirectory::SymbolOf(SegmentId id) const {
  ++bookkeeping_ops_;
  auto it = by_id_.find(id.value);
  if (it == by_id_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace dsa
