// The linear name space: "one in which permissible names are the integers
// 0, 1, ..., n".
//
// Its extent is fixed by the address representation, not by physical
// storage — the decoupling that artificial contiguity exploits (the M44/44X
// gives each user ~2 million words of name space over ~200K words of core).

#ifndef SRC_NAMING_LINEAR_H_
#define SRC_NAMING_LINEAR_H_

#include "src/core/assert.h"
#include "src/core/types.h"

namespace dsa {

class LinearNameSpace {
 public:
  // `address_bits` bounds the extent by the name representation; `extent`
  // may be smaller (a base/limit system with a reduced limit).
  LinearNameSpace(int address_bits, WordCount extent)
      : address_bits_(address_bits), extent_(extent) {
    DSA_ASSERT(address_bits_ > 0 && address_bits_ <= 63, "address bits out of range");
    DSA_ASSERT(extent_ <= MaxExtent(), "extent exceeds address representation");
  }

  explicit LinearNameSpace(int address_bits)
      : LinearNameSpace(address_bits, WordCount{1} << address_bits) {}

  int address_bits() const { return address_bits_; }
  WordCount extent() const { return extent_; }
  WordCount MaxExtent() const { return WordCount{1} << address_bits_; }

  bool Contains(Name name) const { return name.value < extent_; }

  // Grows/shrinks the permissible extent (limit-register update).  The new
  // extent must still fit the address representation.
  void SetExtent(WordCount extent) {
    DSA_ASSERT(extent <= MaxExtent(), "extent exceeds address representation");
    extent_ = extent;
  }

 private:
  int address_bits_;
  WordCount extent_;
};

}  // namespace dsa

#endif  // SRC_NAMING_LINEAR_H_
