#include "src/machines/survey.h"

#include <sstream>

#include "src/exec/sweep_runner.h"
#include "src/stats/table.h"
#include "src/trace/synthetic.h"
#include "src/vm/paged_vm.h"

namespace dsa {

ReferenceTrace SurveyWorkload(WordCount core_words, double pressure, std::size_t length,
                              std::uint64_t seed) {
  WorkingSetTraceParams params;
  params.extent = static_cast<WordCount>(static_cast<double>(core_words) * pressure);
  params.region_words = 256;
  // The live working set covers roughly half of core, so replacement has
  // real decisions to make without thrashing every reference.
  params.regions_per_phase =
      static_cast<std::size_t>(core_words / (2 * params.region_words)) + 1;
  params.phases = 8;
  params.phase_length = length / params.phases;
  params.seed = seed;
  ReferenceTrace trace = MakeWorkingSetTrace(params);
  trace.label = "survey-workload";
  return trace;
}

std::vector<SurveyRow> RunSurvey(double pressure, std::size_t length, std::uint64_t seed,
                                 unsigned jobs) {
  // One factory per appendix entry so a sweep cell can build machine i in
  // isolation (a Machine owns a running system and must not be shared).
  using MachineFactory = Machine (*)();
  static constexpr MachineFactory kFactories[] = {
      +[] { return MakeAtlasMachine(); },   +[] { return MakeM44Machine(1024); },
      +[] { return MakeB5000Machine(); },   +[] { return MakeRiceMachine(); },
      +[] { return MakeB8500Machine(); },   +[] { return MakeMulticsMachine(); },
      +[] { return Make360M67Machine(); }};
  constexpr std::size_t kNumMachines = sizeof(kFactories) / sizeof(kFactories[0]);

  SweepRunner runner(jobs);
  return runner.Run(kNumMachines, [&](std::size_t i) {
    Machine machine = kFactories[i]();
    WordCount core = 0;
    // Scale the workload to each machine's working storage.
    if (machine.description.appendix == "A.1") {
      core = 16384;
    } else if (machine.description.appendix == "A.2") {
      core = 192 * 1024;
    } else if (machine.description.appendix == "A.3") {
      core = 24000;
    } else if (machine.description.appendix == "A.4") {
      core = 32768;
    } else if (machine.description.appendix == "A.5") {
      core = 65536;
    } else if (machine.description.appendix == "A.6") {
      core = 131072;
    } else {
      core = 196608;
    }
    const ReferenceTrace trace = SurveyWorkload(core, pressure, length, seed);
    SurveyRow row;
    row.report = machine.system->Run(trace);
    row.description = std::move(machine.description);
    return row;
  });
}

std::string RenderSurvey(const std::vector<SurveyRow>& rows) {
  Table design({"machine", "appendix", "name space", "predictions", "artificial contiguity",
                "unit of allocation", "hardware facilities"});
  for (const SurveyRow& row : rows) {
    const Characteristics& c = row.description.characteristics;
    design.AddRow()
        .AddCell(row.description.name)
        .AddCell(row.description.appendix)
        .AddCell(ToString(c.name_space))
        .AddCell(ToString(c.predictive))
        .AddCell(ToString(c.contiguity))
        .AddCell(ToString(c.unit))
        .AddCell(row.description.facilities.Describe());
  }

  Table measured({"machine", "references", "faults", "fault rate", "mean map cost (cyc)",
                  "wait fraction", "space-time waiting %", "assoc hit rate"});
  for (const SurveyRow& row : rows) {
    measured.AddRow()
        .AddCell(row.description.name)
        .AddCell(row.report.references)
        .AddCell(row.report.faults)
        .AddCell(row.report.FaultRate(), 5)
        .AddCell(row.report.MeanTranslationCost(), 2)
        .AddCell(row.report.WaitFraction(), 3)
        .AddCell(100.0 * row.report.space_time.WaitingFraction(), 1)
        .AddCell(row.report.tlb_hit_rate, 3);
  }

  std::ostringstream out;
  out << "Design-space coordinates (the paper's four characteristics):\n"
      << design.Render() << "\nMeasured on the common locality workload (pressure-scaled):\n"
      << measured.Render();
  return out.str();
}

}  // namespace dsa
