// The appendix survey as a measurable table: every machine on a common
// (per-machine-scaled) workload, with its design-space coordinates and its
// measured behaviour side by side.

#ifndef SRC_MACHINES_SURVEY_H_
#define SRC_MACHINES_SURVEY_H_

#include <string>
#include <vector>

#include "src/machines/machine.h"
#include "src/trace/reference.h"

namespace dsa {

struct SurveyRow {
  MachineDescription description;
  VmReport report;
};

// A locality workload scaled to a machine: a working-set phase trace over
// roughly `pressure` x core_words of name space, so every machine feels the
// same relative storage pressure.
ReferenceTrace SurveyWorkload(WordCount core_words, double pressure, std::size_t length,
                              std::uint64_t seed);

// Runs every machine on its scaled workload.  The seven machines are
// independent cells: `jobs` > 1 shards them across a SweepRunner (each cell
// builds its own machine and workload, so nothing is shared), and the
// index-ordered result slots keep the row order — and the rendered tables —
// identical at any worker count.
std::vector<SurveyRow> RunSurvey(double pressure = 2.0, std::size_t length = 60000,
                                 std::uint64_t seed = 7, unsigned jobs = 1);

// Renders the two survey tables (design-space coordinates; measured
// behaviour) as one report string.
std::string RenderSurvey(const std::vector<SurveyRow>& rows);

}  // namespace dsa

#endif  // SRC_MACHINES_SURVEY_H_
