#include "src/machines/machine.h"

#include "src/vm/paged_segmented_vm.h"
#include "src/vm/paged_vm.h"
#include "src/vm/segmented_vm.h"

namespace dsa {

// Timing convention: 1 cycle ~ one core-speed machine operation.  Drums cost
// thousands of cycles to start (rotational delay) and a few cycles per word;
// disks add seek time on top.  The ratios, not the absolute values, carry
// the paper's arguments.

Machine MakeAtlasMachine() {
  PagedVmConfig config;
  config.label = "ATLAS";
  config.address_bits = 24;  // "the programmer could use a full 24-bit address representation"
  config.core_words = 16384;
  config.page_words = 512;
  config.backing_level = MakeDrumLevel("drum", 98304, /*word_time=*/4, /*rotational_delay=*/6000);
  config.mapper = PagedMapperKind::kAtlasRegisters;
  config.replacement = ReplacementStrategyKind::kAtlasLearning;
  config.fetch = FetchStrategyKind::kDemand;
  config.keep_one_frame_vacant = true;

  Machine machine;
  machine.description.name = "Ferranti ATLAS";
  machine.description.appendix = "A.1";
  machine.description.notes =
      "16,384-word core + 98,304-word drum; 512-word pages; demand paging; learning-program "
      "replacement keeping one frame vacant";
  machine.description.facilities.Add(HardwareFacility::kAddressMapping)
      .Add(HardwareFacility::kInformationGathering)
      .Add(HardwareFacility::kInvalidAccessTrapping)
      .Add(HardwareFacility::kAddressingOverheadReduction);
  machine.system = std::make_unique<PagedLinearVm>(config);
  machine.description.characteristics = machine.system->characteristics();
  return machine;
}

Machine MakeM44Machine(WordCount page_words) {
  PagedVmConfig config;
  config.label = "IBM M44/44X";
  config.address_bits = 21;  // "a 2 million word linear name space"
  config.page_words = page_words;
  config.core_words = 192 * 1024;  // ~200,000 words of 8us core
  // IBM 1301 disk: long access, modest transfer rate relative to core.
  config.backing_level = MakeDiskLevel("ibm1301", 9000000, /*word_time=*/2,
                                       /*seek_plus_rotation=*/20000);
  config.mapper = PagedMapperKind::kPageTable;  // "indirect addressing through a special mapping store"
  config.tlb_entries = 0;                       // the mapping store is the full map, not a cache
  config.replacement = ReplacementStrategyKind::kM44Class;
  config.fetch = FetchStrategyKind::kDemand;
  config.accept_advice = true;  // the two special advise instructions

  Machine machine;
  machine.description.name = "IBM M44/44X";
  machine.description.appendix = "A.2";
  machine.description.notes =
      "virtual machines with 2M-word linear name spaces over ~200K words of core + IBM 1301 "
      "disk; page size settable at start-up; class-based random replacement; advise "
      "instructions accepted";
  machine.description.facilities.Add(HardwareFacility::kAddressMapping)
      .Add(HardwareFacility::kInformationGathering)
      .Add(HardwareFacility::kInvalidAccessTrapping);
  machine.system = std::make_unique<PagedLinearVm>(config);
  machine.description.characteristics = machine.system->characteristics();
  return machine;
}

Machine MakeB5000Machine() {
  SegmentedVmConfig config;
  config.label = "Burroughs B5000";
  config.core_words = 24000;  // "a typical size for working storage is 24,000 words"
  config.max_segment_extent = 1024;
  config.workload_segment_words = 512;
  config.backing_level = MakeDrumLevel("drum", 1u << 20, /*word_time=*/4,
                                       /*rotational_delay=*/6000);
  config.placement = PlacementStrategyKind::kBestFit;  // "smallest available block of sufficient size"
  config.replacement = SegmentReplacementKind::kCyclic;
  config.symbolic_names = true;
  config.descriptor_cache_entries = 0;

  Machine machine;
  machine.description.name = "Burroughs B5000";
  machine.description.appendix = "A.3";
  machine.description.notes =
      "symbolically segmented; segments <= 1024 words and the unit of allocation; fetched on "
      "first reference; best-fit placement; essentially cyclical replacement; PRT descriptors";
  machine.description.facilities.Add(HardwareFacility::kAddressMapping)
      .Add(HardwareFacility::kBoundViolationDetection)
      .Add(HardwareFacility::kInvalidAccessTrapping);
  machine.system = std::make_unique<SegmentedVm>(config);
  machine.description.characteristics = machine.system->characteristics();
  return machine;
}

Machine MakeRiceMachine() {
  SegmentedVmConfig config;
  config.label = "Rice University";
  config.core_words = 32768;
  config.max_segment_extent = 8192;  // limited only by working storage
  config.workload_segment_words = 1024;
  // The delivered machine had only tape backing; the paper notes proposals
  // for a drum.  The drum variant keeps the replacement path exercised.
  config.backing_level = MakeDrumLevel("proposed-drum", 1u << 20, /*word_time=*/4,
                                       /*rotational_delay=*/8000);
  config.placement = PlacementStrategyKind::kFirstFit;  // sequential placement + chain search
  config.replacement = SegmentReplacementKind::kRiceSecondChance;
  config.symbolic_names = true;  // codewords are unordered handles

  Machine machine;
  machine.description.name = "Rice University computer";
  machine.description.appendix = "A.4";
  machine.description.notes =
      "codeword-addressed segments; sequential placement with inactive-block chain and "
      "combining (modelled by first-fit over a coalescing free list); replacement prefers "
      "unused segments with backing copies";
  machine.description.facilities.Add(HardwareFacility::kAddressMapping)
      .Add(HardwareFacility::kBoundViolationDetection);
  machine.system = std::make_unique<SegmentedVm>(config);
  machine.description.characteristics = machine.system->characteristics();
  return machine;
}

Machine MakeB8500Machine() {
  SegmentedVmConfig config;
  config.label = "Burroughs B8500";
  config.core_words = 65536;
  config.max_segment_extent = 1024;
  config.workload_segment_words = 512;
  config.backing_level = MakeDrumLevel("drum", 1u << 21, /*word_time=*/3,
                                       /*rotational_delay=*/5000);
  config.placement = PlacementStrategyKind::kBestFit;
  config.replacement = SegmentReplacementKind::kCyclic;
  config.symbolic_names = true;
  // 24 of the 44 thin-film words hold PRT elements and index words.
  config.descriptor_cache_entries = 24;

  Machine machine;
  machine.description.name = "Burroughs B8500";
  machine.description.appendix = "A.5";
  machine.description.notes =
      "B5000 storage design plus a 44-word thin-film associative memory (24 words modelled as "
      "a descriptor/index cache)";
  machine.description.facilities.Add(HardwareFacility::kAddressMapping)
      .Add(HardwareFacility::kBoundViolationDetection)
      .Add(HardwareFacility::kInvalidAccessTrapping)
      .Add(HardwareFacility::kAddressingOverheadReduction);
  machine.system = std::make_unique<SegmentedVm>(config);
  machine.description.characteristics = machine.system->characteristics();
  return machine;
}

Machine MakeMulticsMachine() {
  PagedSegmentedVmConfig config;
  config.label = "MULTICS (GE 645)";
  config.segment_bits = 12;  // scaled model of the 256K-segment name space
  config.offset_bits = 18;   // "segments ... have a maximum extent of 256K words"
  config.core_words = 131072;  // "128K words of core storage"
  config.page_words = 1024;    // principal page size (64-word pages make the unit mixed)
  config.backing_level = MakeDrumLevel("drum", 1u << 22, /*word_time=*/4,
                                       /*rotational_delay=*/6000);
  config.tlb_entries = 16;
  config.replacement = ReplacementStrategyKind::kClock;
  config.fetch = FetchStrategyKind::kDemand;
  config.accept_advice = true;  // the three MULTICS directives
  config.workload_segment_words = 4096;
  config.reported_unit = AllocationUnit::kMixedPages;

  Machine machine;
  machine.description.name = "MULTICS (GE 645)";
  machine.description.appendix = "A.6";
  machine.description.notes =
      "linearly segmented name space used symbolically by convention; paged segments via "
      "segment table + page tables with a small associative memory; page sizes 1024 and 64 "
      "(mixed unit); demand paging plus keep/will-need/wont-need directives";
  machine.description.facilities.Add(HardwareFacility::kAddressMapping)
      .Add(HardwareFacility::kBoundViolationDetection)
      .Add(HardwareFacility::kInvalidAccessTrapping)
      .Add(HardwareFacility::kInformationGathering)
      .Add(HardwareFacility::kAddressingOverheadReduction);
  machine.system = std::make_unique<PagedSegmentedVm>(config);
  machine.description.characteristics = machine.system->characteristics();
  // The convention-over-hardware nuance the paper highlights:
  machine.description.characteristics.name_space = NameSpaceKind::kLinearlySegmented;
  return machine;
}

Machine Make360M67Machine() {
  PagedSegmentedVmConfig config;
  config.label = "IBM 360/67";
  config.segment_bits = 4;   // 24-bit addressing: 16 segments
  config.offset_bits = 20;   // of one million bytes each
  config.core_words = 196608;  // three 256KB modules, in word-equivalents
  config.page_words = 1024;    // 4096-byte pages
  config.backing_level = MakeDrumLevel("drum", 1u << 22, /*word_time=*/3,
                                       /*rotational_delay=*/5000);
  config.tlb_entries = 8;  // the eight-word associative memory
  config.dedicated_execute_register = true;  // the ninth register, for the instruction counter
  config.replacement = ReplacementStrategyKind::kLru;
  config.fetch = FetchStrategyKind::kDemand;
  config.accept_advice = false;
  config.workload_segment_words = 65536;
  config.reported_unit = AllocationUnit::kUniformPages;

  Machine machine;
  machine.description.name = "IBM System/360 Model 67";
  machine.description.appendix = "A.7";
  machine.description.notes =
      "linearly segmented, 16 x 1M with 24-bit addressing; segmentation reduces page-table "
      "storage rather than conveying structure; 8-entry associative memory; automatic "
      "use/modified recording";
  machine.description.facilities.Add(HardwareFacility::kAddressMapping)
      .Add(HardwareFacility::kBoundViolationDetection)
      .Add(HardwareFacility::kInvalidAccessTrapping)
      .Add(HardwareFacility::kInformationGathering)
      .Add(HardwareFacility::kAddressingOverheadReduction);
  machine.system = std::make_unique<PagedSegmentedVm>(config);
  machine.description.characteristics = machine.system->characteristics();
  return machine;
}

std::vector<Machine> MakeAllMachines() {
  std::vector<Machine> machines;
  machines.push_back(MakeAtlasMachine());
  machines.push_back(MakeM44Machine());
  machines.push_back(MakeB5000Machine());
  machines.push_back(MakeRiceMachine());
  machines.push_back(MakeB8500Machine());
  machines.push_back(MakeMulticsMachine());
  machines.push_back(Make360M67Machine());
  return machines;
}

}  // namespace dsa
