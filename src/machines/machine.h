// The appendix: "a brief survey of relevant aspects of several computer
// systems ... intended to illustrate the many combinations of functional
// capability, underlying strategies, and special hardware facilities that
// have been chosen by system designers."
//
// Each factory returns a machine model: a point in the design space
// (Characteristics + hardware facilities) bound to a runnable system built
// from the library's substrates, with the paper's own capacity and timing
// parameters.

#ifndef SRC_MACHINES_MACHINE_H_
#define SRC_MACHINES_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/characteristics.h"
#include "src/core/hardware.h"
#include "src/vm/system.h"

namespace dsa {

struct MachineDescription {
  std::string name;
  std::string appendix;  // "A.1" ... "A.7"
  Characteristics characteristics;
  HardwareFacilitySet facilities;
  std::string notes;  // capacities, page/segment sizes, strategy summary
};

struct Machine {
  MachineDescription description;
  std::unique_ptr<StorageAllocationSystem> system;
};

// A.1  Ferranti ATLAS: 16K-word core + 96K-word drum, 512-word pages, demand
// paging via page-address registers, the learning-program replacement, one
// frame kept vacant.
Machine MakeAtlasMachine();

// A.2  IBM M44/44X: ~200K words of core, IBM 1301 disk, 2M-word virtual
// linear name space per 44X, variable page size (default 1024), class-based
// random replacement, advise instructions accepted.
Machine MakeM44Machine(WordCount page_words = 1024);

// A.3  Burroughs B5000: symbolically segmented, segments <= 1024 words and
// the unit of allocation, fetch on first reference, best-fit placement,
// cyclic replacement, PRT descriptors.
Machine MakeB5000Machine();

// A.4  Rice University computer: codeword-addressed segments, sequential
// placement with an inactive-block chain (modelled by first-fit over a
// coalescing free list; the chain allocator itself is exercised in the
// placement experiments), replacement honouring backing copies and use
// sensors.
Machine MakeRiceMachine();

// A.5  Burroughs B8500: the B5000 design plus the 44-word thin-film
// associative memory (24 words of PRT/index caching modelled as a
// descriptor cache).
Machine MakeB8500Machine();

// A.6  MULTICS / GE 645: linearly segmented (used symbolically by
// convention), paged segments via the Fig. 4 two-level map with a small
// associative memory, demand paging plus the three predictive directives.
// Two page sizes in the real machine make the unit formally non-uniform.
Machine MakeMulticsMachine();

// A.7  IBM System/360 Model 67: 24-bit linearly segmented name space
// (16 x 1M), two-level map with the 8-entry associative memory, demand
// paging, automatic use/modified recording.
Machine Make360M67Machine();

// All seven, in appendix order.
std::vector<Machine> MakeAllMachines();

}  // namespace dsa

#endif  // SRC_MACHINES_MACHINE_H_
