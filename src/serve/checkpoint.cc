#include "src/serve/checkpoint.h"

#include <cinttypes>
#include <cstdio>

namespace dsa {

namespace {

void AppendField(std::string* canon, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 ";", key, value);
  canon->append(buf);
}

void AppendRate(std::string* canon, const char* key, double value) {
  // %.17g round-trips every double, so the rendering is injective.
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", key, value);
  canon->append(buf);
}

void AppendRates(std::string* canon, const FaultRates& rates) {
  AppendRate(canon, "transient", rates.transient_transfer);
  AppendRate(canon, "permanent", rates.permanent_slot);
  AppendRate(canon, "frame", rates.frame_failure);
}

}  // namespace

std::uint64_t SpecFingerprint(const SystemSpec& spec) {
  // Canonical key=value rendering of every field BuildSystem consumes.
  // The label is deliberately excluded: it names the run, it does not
  // change the machine.
  std::string canon;
  canon.reserve(512);
  AppendField(&canon, "ns", static_cast<std::uint64_t>(spec.characteristics.name_space));
  AppendField(&canon, "pred", static_cast<std::uint64_t>(spec.characteristics.predictive));
  AppendField(&canon, "psrc",
              static_cast<std::uint64_t>(spec.characteristics.prediction_source));
  AppendField(&canon, "contig", static_cast<std::uint64_t>(spec.characteristics.contiguity));
  AppendField(&canon, "unit", static_cast<std::uint64_t>(spec.characteristics.unit));
  AppendField(&canon, "fetch", static_cast<std::uint64_t>(spec.fetch));
  AppendField(&canon, "place", static_cast<std::uint64_t>(spec.placement));
  AppendField(&canon, "repl", static_cast<std::uint64_t>(spec.replacement));
  AppendField(&canon, "core", spec.core_words);
  AppendField(&canon, "page", spec.page_words);
  AppendField(&canon, "maxseg", spec.max_segment_extent);
  AppendField(&canon, "wseg", spec.workload_segment_words);
  AppendField(&canon, "blkind", static_cast<std::uint64_t>(spec.backing_level.kind));
  AppendField(&canon, "blcap", spec.backing_level.capacity_words);
  AppendField(&canon, "blword", spec.backing_level.cycles_per_word);
  AppendField(&canon, "bllat", spec.backing_level.access_latency);
  AppendField(&canon, "tlb", spec.tlb_entries);
  AppendField(&canon, "cpr", spec.cycles_per_reference);
  AppendField(&canon, "fseed", spec.fault_injection.seed);
  AppendField(&canon, "fretry", static_cast<std::uint64_t>(spec.fault_injection.max_retries));
  AppendRates(&canon, spec.fault_injection.rates);
  for (const auto& [level, rates] : spec.fault_injection.level_rates) {
    AppendField(&canon, "flevel", level);
    AppendRates(&canon, rates);
  }
  return Fnv64(canon);
}

std::string SealTenantCheckpoint(const TenantCheckpointMeta& meta, const PagedLinearVm& vm) {
  SnapshotWriter w;
  w.Str(meta.tenant);
  w.U64(meta.spec_fingerprint);
  w.U64(meta.trace_fingerprint);
  w.U64(meta.trace_size);
  w.U64(meta.next_ref);
  w.U64(meta.events_published);
  w.U64(meta.jsonl_bytes);
  vm.SaveState(&w);
  return w.Seal();
}

Expected<TenantCheckpointMeta, SnapshotError> OpenTenantCheckpoint(
    std::string_view sealed, std::uint64_t spec_fingerprint,
    std::uint64_t trace_fingerprint, std::uint64_t trace_size, PagedLinearVm* vm) {
  SnapshotReader r(sealed);
  TenantCheckpointMeta meta;
  meta.tenant = r.Str();
  meta.spec_fingerprint = r.U64();
  meta.trace_fingerprint = r.U64();
  meta.trace_size = r.U64();
  meta.next_ref = r.U64();
  meta.events_published = r.U64();
  meta.jsonl_bytes = r.U64();
  if (r.ok() && meta.spec_fingerprint != spec_fingerprint) {
    r.Fail(SnapshotErrorKind::kBadValue,
           "checkpoint was taken under a different system spec");
  }
  if (r.ok() && meta.trace_fingerprint != trace_fingerprint) {
    r.Fail(SnapshotErrorKind::kBadValue,
           "checkpoint was taken against a different trace");
  }
  if (r.ok() && meta.trace_size != trace_size) {
    r.Fail(SnapshotErrorKind::kBadValue, "checkpoint trace length disagrees");
  }
  if (r.ok() && meta.next_ref > trace_size) {
    r.Fail(SnapshotErrorKind::kBadValue, "checkpoint cursor past the trace end");
  }
  if (r.ok()) {
    vm->LoadState(&r);
  }
  if (r.ok() && !r.AtEnd()) {
    r.Fail(SnapshotErrorKind::kBadValue, "trailing bytes after the VM state");
  }
  if (!r.ok()) {
    return MakeUnexpected(r.error());
  }
  return meta;
}

std::string SealTenantCheckpointSections(const TenantCheckpointMeta& meta,
                                         const PagedLinearVm& vm,
                                         const SectionBaseline* baseline,
                                         SectionBaseline* digest_out) {
  SectionedSnapshotWriter w;
  {
    SnapshotWriter* s = w.Begin("meta");
    s->Str(meta.tenant);
    s->U64(meta.spec_fingerprint);
    s->U64(meta.trace_fingerprint);
    s->U64(meta.trace_size);
    s->U64(meta.next_ref);
    s->U64(meta.events_published);
    s->U64(meta.jsonl_bytes);
  }
  vm.SaveSections(&w);
  if (digest_out != nullptr) {
    *digest_out = w.Digest();
  }
  return baseline == nullptr ? w.SealFull() : w.SealDelta(*baseline);
}

Expected<TenantCheckpointMeta, SnapshotError> OpenTenantCheckpointChain(
    const std::vector<std::string>& links, std::uint64_t spec_fingerprint,
    std::uint64_t trace_fingerprint, std::uint64_t trace_size, PagedLinearVm* vm) {
  auto resolved = ResolveSectionChain(links);
  if (!resolved.has_value()) {
    return MakeUnexpected(resolved.error());
  }
  SectionSource& src = resolved.value();
  TenantCheckpointMeta meta;
  {
    SnapshotReader r = src.Open("meta");
    meta.tenant = r.Str();
    meta.spec_fingerprint = r.U64();
    meta.trace_fingerprint = r.U64();
    meta.trace_size = r.U64();
    meta.next_ref = r.U64();
    meta.events_published = r.U64();
    meta.jsonl_bytes = r.U64();
    if (r.ok() && meta.spec_fingerprint != spec_fingerprint) {
      r.Fail(SnapshotErrorKind::kBadValue,
             "checkpoint was taken under a different system spec");
    }
    if (r.ok() && meta.trace_fingerprint != trace_fingerprint) {
      r.Fail(SnapshotErrorKind::kBadValue,
             "checkpoint was taken against a different trace");
    }
    if (r.ok() && meta.trace_size != trace_size) {
      r.Fail(SnapshotErrorKind::kBadValue, "checkpoint trace length disagrees");
    }
    if (r.ok() && meta.next_ref > trace_size) {
      r.Fail(SnapshotErrorKind::kBadValue, "checkpoint cursor past the trace end");
    }
    src.Close(&r, "meta");
  }
  if (src.ok()) {
    vm->LoadSections(&src);
  }
  src.FailIfUnopened();
  if (!src.ok()) {
    return MakeUnexpected(src.error());
  }
  return meta;
}

}  // namespace dsa
