#include "src/serve/batch.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "src/exec/sweep_runner.h"
#include "src/trace/trace_io.h"
#include "src/obs/export.h"
#include "src/obs/merge.h"
#include "src/obs/tracer.h"
#include "src/obs/verifier.h"
#include "src/obs/vm_metrics.h"
#include "src/vm/system_builder.h"

namespace dsa {

namespace {

// One tenant of a --batch run: its own parse, its own system instance, its
// own tracer and metrics registry.  Cells share only the immutable spec, so
// the sweep can shard them across threads; everything order-sensitive
// (printing, file writes, verification, the registry merge) happens after
// the sweep in slot order.
struct BatchCell {
  std::string label;                       // file name (the tenant id)
  std::optional<BatchCellError> rejected;  // set: the cell was skipped
  std::string report_text;                 // rendered report block
  std::uint64_t references{0};
  MetricsRegistry metrics;
  std::vector<TraceEvent> events;
};

}  // namespace

Expected<ReferenceTrace, BatchCellError> LoadBatchTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return MakeUnexpected(BatchCellError{"cannot open trace file"});
  }
  auto parsed = ReadReferenceTrace(&in);
  if (!parsed.has_value()) {
    return MakeUnexpected(BatchCellError{"line " + std::to_string(parsed.error().line) +
                                         ": " + parsed.error().message});
  }
  return std::move(parsed.value());
}

int RunBatch(const SystemSpec& base_spec, const BatchOptions& options) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(options.dir, ec)) {
    if (entry.is_regular_file()) {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "dsa_sim: cannot read --batch directory %s: %s\n",
                 options.dir.c_str(), ec.message().c_str());
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "dsa_sim: --batch directory %s holds no trace files\n",
                 options.dir.c_str());
    return 2;
  }
  // Name order is the cell order, so the merged output is a function of the
  // directory contents alone, not of readdir() or scheduling order.
  std::sort(files.begin(), files.end());

  SweepRunner runner(options.jobs);
  std::printf("== batch: %zu traces from %s (jobs=%u) ==\n\n", files.size(),
              options.dir.c_str(), runner.jobs());

  const bool capture = !options.event_trace_prefix.empty();
  const std::vector<BatchCell> cells = runner.Run(files.size(), [&](std::size_t i) {
    BatchCell cell;
    cell.label = files[i].filename().string();
    auto loaded = LoadBatchTrace(files[i].string());
    if (!loaded.has_value()) {
      cell.rejected = loaded.error();
      return cell;
    }
    const ReferenceTrace trace = std::move(loaded.value());

    SystemSpec spec = base_spec;  // per-cell copy; the tracer differs
    EventTracer tracer(/*capacity=*/0);
    if (capture) {
      spec.tracer = &tracer;
    }
    const auto system = BuildSystem(spec);
    const VmReport report = system->Run(trace);
    cell.references = report.references;
    cell.report_text =
        RenderVmReport(report, Describe(system->characteristics()), cell.label);
    FillVmMetrics(report, &cell.metrics);
    if (capture) {
      cell.events = tracer.Snapshot();
    }
    return cell;
  });

  // Slot-order fold: per-tenant reports, per-cell verification + export,
  // and the aggregate registry are all pure functions of the cell results.
  TraceVerifierConfig verifier_config;
  if (base_spec.page_words != 0) {
    verifier_config.frame_count =
        static_cast<std::size_t>(base_spec.core_words / base_spec.page_words);
  }
  MetricsRegistry aggregate;
  std::size_t rejected = 0;
  bool export_failed = false;
  bool verifier_failed = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const BatchCell& cell = cells[i];
    std::printf("-- tenant %zu: %s\n", i, cell.label.c_str());
    if (cell.rejected.has_value()) {
      std::printf("rejected (skipped): %s\n\n", cell.rejected->reason.c_str());
      std::fprintf(stderr, "dsa_sim: %s: %s\n", cell.label.c_str(),
                   cell.rejected->reason.c_str());
      ++rejected;
      continue;
    }
    std::fputs(cell.report_text.c_str(), stdout);
    MergeRegistryInto(&aggregate, cell.metrics);
    if (capture) {
      const std::string path =
          options.event_trace_prefix + "." + std::to_string(i) + ".jsonl";
      const std::string lines = EventsToJsonl(cell.events);
      // Atomic write with the status checked: the old ofstream path returned
      // exit 0 with an empty or torn file when the disk filled mid-export.
      Fs* fs = options.fs != nullptr ? options.fs : &SystemFs();
      if (auto status = fs->WriteFileAtomic(path, lines); !status.has_value()) {
        std::fprintf(stderr, "dsa_sim: cannot write %s: %s\n", path.c_str(),
                     status.error().Describe().c_str());
        export_failed = true;
        continue;
      }
      const auto violations = TraceReplayVerifier(verifier_config).Verify(cell.events);
      std::printf("event trace      %zu events -> %s (%s)\n", cell.events.size(),
                  path.c_str(), violations.empty() ? "verified" : "VERIFIER VIOLATIONS");
      if (!violations.empty()) {
        std::fputs(TraceReplayVerifier::Describe(violations).c_str(), stderr);
        verifier_failed = true;
      }
    }
    std::printf("\n");
  }

  const std::uint64_t references = aggregate.CounterValue("vm/references");
  const std::uint64_t faults = aggregate.CounterValue("vm/faults");
  std::printf("== batch aggregate (%zu of %zu tenants ran, %zu rejected) ==\n",
              cells.size() - rejected, cells.size(), rejected);
  std::printf("references       %llu\n", static_cast<unsigned long long>(references));
  std::printf("faults           %llu  (rate %.5f)\n",
              static_cast<unsigned long long>(faults),
              references == 0 ? 0.0
                              : static_cast<double>(faults) / static_cast<double>(references));
  std::printf("write-backs      %llu\n",
              static_cast<unsigned long long>(aggregate.CounterValue("vm/writebacks")));
  std::printf("total cycles     %llu\n",
              static_cast<unsigned long long>(aggregate.CounterValue("vm/total_cycles")));
  std::printf("wait cycles      %llu\n",
              static_cast<unsigned long long>(aggregate.CounterValue("vm/wait_cycles")));
  if (export_failed) {
    return 2;
  }
  if (verifier_failed) {
    return 1;
  }
  if (rejected > 0) {
    return 3;
  }
  return 0;
}

}  // namespace dsa
