#include "src/serve/service.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/obs/export.h"
#include "src/obs/merge.h"
#include "src/obs/vm_metrics.h"
#include "src/trace/trace_io.h"

namespace dsa {

namespace {

SnapshotError IoError(std::string detail) {
  return SnapshotError{SnapshotErrorKind::kIo, std::move(detail)};
}

bool UsableTenantName(const std::string& name) {
  if (name.empty() || name[0] == '.') {
    return false;
  }
  // Member names travel through the whitespace-delimited manifest.
  return name.find_first_of(" \t\n") == std::string::npos;
}

}  // namespace

ServiceLoop::ServiceLoop(SystemSpec base_spec, ServeConfig config)
    : spec_(std::move(base_spec)),
      config_(std::move(config)),
      spec_fingerprint_(SpecFingerprint(spec_)),
      // Taking &service_clock_ before that member is initialized is fine:
      // the decorator only dereferences it per op, long after construction.
      io_(config_.fs != nullptr ? config_.fs : &SystemFs(), config_.io_retry,
          &service_clock_, &io_stats_),
      store_(config_.checkpoint_dir, &io_),
      controller_(config_.load_control, spec_.core_words, spec_.page_words),
      lanes_(std::max(1u, config_.lanes == 0 ? HardwareJobs() : config_.lanes)),
      tenant_frames_(static_cast<std::size_t>(
          spec_.page_words == 0 ? 0 : spec_.core_words / spec_.page_words)),
      heap_({HeapClassSpec{static_cast<std::size_t>(std::max<WordCount>(1, spec_.page_words)),
                           lanes_ * LaneArena::kDefaultHighWatermark}}) {
  spec_.tracer = nullptr;  // tenants own their tracers
  for (unsigned lane = 0; lane < lanes_; ++lane) {
    arenas_.emplace_back(&heap_);
  }
  if (lanes_ > 1) {
    pool_ = std::make_unique<ThreadPool>(lanes_);
  }
}

std::string ServiceLoop::EventsPath(const Tenant& t) const {
  return config_.out_dir + "/" + t.name + ".events.jsonl";
}

std::string ServiceLoop::ReportPath(const Tenant& t) const {
  return config_.out_dir + "/" + t.name + ".report.txt";
}

std::unique_ptr<PagedLinearVm> ServiceLoop::BuildVm(Tenant* t) {
  PagedVmConfig config = PagedConfigFromSpec(spec_);
  config.tracer = &t->tracer;
  if (t->binder == nullptr) {
    // First incarnation of this tenant: grow the shared heap by its exact
    // worst-case frame demand.  This is a serial point (admission/restore),
    // which GrowSerial's quiescence contract requires.
    t->binder = std::make_unique<LaneFrameBinder>(
        &heap_, static_cast<std::size_t>(spec_.page_words));
    heap_.GrowSerial(0, tenant_frames_);
  }
  config.frame_binder = t->binder.get();
  return std::make_unique<PagedLinearVm>(config);
}

Status<SnapshotError> ServiceLoop::AdmitTenants() {
  auto files = io_.ListDir(config_.spool_dir);
  if (!files.has_value()) {
    return MakeUnexpected(IoError("cannot read spool dir " + config_.spool_dir + ": " +
                                  files.error().Describe()));
  }

  for (const std::string& name : *files) {
    if (std::find(seen_.begin(), seen_.end(), name) != seen_.end()) {
      continue;
    }
    seen_.push_back(name);
    auto reject = [&](const std::string& reason) {
      outcome_.rejected.push_back(name + ": " + reason);
      ++outcome_.tenants_rejected;
    };
    if (!UsableTenantName(name)) {
      reject("unusable file name (hidden or whitespace)");
      continue;
    }
    auto bytes = io_.ReadFile(config_.spool_dir + "/" + name);
    if (!bytes.has_value()) {
      // Rejection is for properties of the DATA (vanished file, bad
      // permissions, malformed contents).  A retry-exhausted transient
      // error or a crash says the MEDIUM is down: dropping the tenant
      // would silently serve less than the spool holds, so that is an
      // environment error and the supervisor restarts us.
      if (RetryableErrno(bytes.error().err) || bytes.error().fatal) {
        return MakeUnexpected(IoError("cannot read spool file " + name + ": " +
                                      bytes.error().Describe()));
      }
      reject(bytes.error().Describe());
      continue;
    }
    std::istringstream in(*bytes);
    auto parsed = ReadReferenceTrace(&in);
    if (!parsed.has_value()) {
      reject("line " + std::to_string(parsed.error().line) + ": " + parsed.error().message);
      continue;
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->trace_fingerprint = Fnv64(*bytes);
    tenant->trace = std::move(parsed.value());
    tenant->vm = BuildVm(tenant.get());
    // A fresh tenant's event log starts empty; a crash may have left
    // uncommitted bytes from a previous incarnation.
    if (auto status = io_.Truncate(EventsPath(*tenant), 0); !status.has_value()) {
      return MakeUnexpected(
          IoError("cannot create " + EventsPath(*tenant) + ": " + status.error().Describe()));
    }
    tenants_.push_back(std::move(tenant));
  }
  return Ok();
}

std::string ServiceLoop::BuildSvcMember() const {
  SnapshotWriter w;
  w.U64(spec_fingerprint_);
  w.U64(service_clock_);
  w.U64(last_commit_clock_);
  w.U64(concurrency_);
  w.Bool(shed_since_start_);
  // IO health counters survive restarts; the degraded_ flag itself does not
  // (a restarted daemon begins healthy and re-degrades on fresh evidence).
  w.U64(io_stats_.retries);
  w.U64(io_stats_.giveups);
  w.U64(degraded_cycles_);
  controller_.SaveState(&w);
  aggregate_.SaveState(&w);
  w.U64(tenants_.size());
  for (const auto& t : tenants_) {
    w.Str(t->name);
    w.Bool(t->done);
  }
  return w.Seal();
}

bool ServiceLoop::LoadSvcMember(std::string_view sealed, std::string* reason) {
  SnapshotReader r(sealed);
  const std::uint64_t fingerprint = r.U64();
  if (r.ok() && fingerprint != spec_fingerprint_) {
    *reason = "checkpoint was taken under a different system spec";
    return false;
  }
  const Cycles service_clock = r.U64();
  const Cycles last_commit_clock = r.U64();
  const std::uint64_t concurrency = r.U64();
  const bool shed_since_start = r.Bool();
  const std::uint64_t io_retries = r.U64();
  const std::uint64_t io_giveups = r.U64();
  const Cycles degraded_cycles = r.U64();
  controller_.LoadState(&r);
  aggregate_.LoadState(&r);
  const std::uint64_t count = r.Count(1u << 20);
  if (!r.ok()) {
    *reason = r.error().Describe();
    return false;
  }
  if (concurrency == 0) {
    *reason = "service concurrency of zero";
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = r.Str();
    const bool done = r.Bool();
    if (!r.ok()) {
      *reason = r.error().Describe();
      return false;
    }
    auto bytes = ReadFileBytes(&io_, config_.spool_dir + "/" + name);
    if (!bytes.has_value()) {
      *reason = "tenant " + name + " vanished from the spool";
      return false;
    }
    std::istringstream in(*bytes);
    auto parsed = ReadReferenceTrace(&in);
    if (!parsed.has_value()) {
      *reason = "tenant " + name + " no longer parses";
      return false;
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->trace_fingerprint = Fnv64(*bytes);
    tenant->trace = std::move(parsed.value());
    tenant->done = done;
    if (done) {
      // Outputs are already final; no VM state exists or is needed.
      tenant->next_ref = tenant->trace.size();
    }
    tenants_.push_back(std::move(tenant));
    seen_.push_back(name);
  }
  if (!r.AtEnd()) {
    *reason = "trailing bytes after the service state";
    return false;
  }
  service_clock_ = service_clock;
  last_commit_clock_ = last_commit_clock;
  last_flush_attempt_clock_ = last_commit_clock;
  concurrency_ = static_cast<std::size_t>(concurrency);
  shed_since_start_ = shed_since_start;
  io_stats_.retries = io_retries;
  io_stats_.giveups = io_giveups;
  degraded_cycles_ = degraded_cycles;
  return true;
}

void ServiceLoop::RestoreCut(CheckpointStore::Recovered* recovered) {
  auto fresh_start = [&](const std::string& reason) {
    outcome_.quarantined.push_back("cut discarded: " + reason);
    tenants_.clear();
    seen_.clear();
    outcome_.tenants_resumed = 0;
    service_clock_ = 0;
    last_commit_clock_ = 0;
    last_flush_attempt_clock_ = 0;
    concurrency_ = 1;
    shed_since_start_ = false;
    io_stats_ = IoStats{};
    degraded_cycles_ = 0;
    controller_ = LoadController(config_.load_control, spec_.core_words, spec_.page_words);
    aggregate_ = MetricsRegistry{};
  };

  auto svc = recovered->members.find("svc");
  if (svc == recovered->members.end()) {
    if (!recovered->members.empty()) {
      fresh_start("committed cut lacks the svc member");
    }
    return;
  }
  if (svc->second.size() != 1) {
    fresh_start("svc member is not a single full link");
    return;
  }
  std::string reason;
  if (!LoadSvcMember(svc->second.front(), &reason)) {
    fresh_start(reason);
    return;
  }
  for (auto& t : tenants_) {
    if (t->done) {
      continue;
    }
    auto member = recovered->members.find("tenant." + t->name);
    if (member == recovered->members.end()) {
      fresh_start("committed cut lacks tenant " + t->name);
      return;
    }
    t->vm = BuildVm(t.get());
    auto meta = OpenTenantCheckpointChain(member->second, spec_fingerprint_,
                                          t->trace_fingerprint, t->trace.size(), t->vm.get());
    if (!meta.has_value()) {
      fresh_start("tenant " + t->name + ": " + meta.error().Describe());
      return;
    }
    t->next_ref = meta->next_ref;
    t->events_published = meta->events_published;
    t->jsonl_bytes = meta->jsonl_bytes;
    t->last_space_time = t->vm->Snapshot().space_time;
    // Discard event bytes appended after the committed cut; the resumed
    // steps regenerate them identically.  A missing log is an empty one
    // (only valid when the committed prefix is empty too).
    std::uint64_t actual = 0;
    if (auto size = io_.FileSize(EventsPath(*t)); size.has_value()) {
      actual = *size;
    } else if (size.error().err != ENOENT) {
      fresh_start("tenant " + t->name + ": cannot size event log: " +
                  size.error().Describe());
      return;
    }
    if (actual < t->jsonl_bytes) {
      fresh_start("tenant " + t->name + ": event log shorter than the committed prefix");
      return;
    }
    if (actual > t->jsonl_bytes) {
      if (auto status = io_.Truncate(EventsPath(*t), t->jsonl_bytes); !status.has_value()) {
        fresh_start("tenant " + t->name + ": cannot truncate event log");
        return;
      }
    }
    ++outcome_.tenants_resumed;
  }
}

void ServiceLoop::StepSlice(Tenant* t) {
  const std::vector<Reference>& refs = t->trace.refs;
  const std::uint64_t end =
      std::min<std::uint64_t>(t->next_ref + config_.slice_references, refs.size());
  t->feed.clear();
  while (t->next_ref < end) {
    const Cycles before = t->vm->clock().now();
    const Cycles stall = t->vm->Step(refs[static_cast<std::size_t>(t->next_ref)]);
    ++t->next_ref;
    t->feed.emplace_back(t->vm->clock().now() - before, stall);
  }
}

void ServiceLoop::ReplayFeed(Tenant* t) {
  ThrashingDetector& detector = controller_.detector();
  for (const auto& [delta, stall] : t->feed) {
    service_clock_ += delta;
    detector.RecordReference(service_clock_);
    if (stall > 0) {
      detector.RecordFault(service_clock_, stall);
    }
  }
  t->feed.clear();
  const SpaceTime now_product = t->vm->Snapshot().space_time;
  detector.RecordSpaceTime(service_clock_, now_product.active - t->last_space_time.active,
                           now_product.waiting - t->last_space_time.waiting);
  t->last_space_time = now_product;
}

void ServiceLoop::RunSlice(Tenant* t) {
  // The serial composition is step-for-step the pre-lanes loop: the feed is
  // generated and immediately replayed, so the detector sees each reference
  // at the same service-clock instant it always did.
  StepSlice(t);
  ReplayFeed(t);
}

Status<SnapshotError> ServiceLoop::FinishTenant(Tenant* t) {
  // The report write is the only durable step left for this tenant; its
  // metrics were folded into the aggregate when the simulation completed.
  // `done` flips only once the report is on disk, so done-in-a-cut always
  // implies report-on-disk and a restart can re-render any pending report
  // from the restored VM.
  VmReport report = t->vm->Snapshot();
  report.label = spec_.label + " / " + t->trace.label;
  const std::string text =
      RenderVmReport(report, Describe(t->vm->characteristics()), t->name);
  if (auto status = WriteFileAtomic(&io_, ReportPath(*t), text); !status.has_value()) {
    return status;
  }
  t->done = true;
  return Ok();
}

Status<SnapshotError> ServiceLoop::AppendPendingEvents(Tenant* t) {
  const std::vector<TraceEvent> events = t->tracer.Snapshot();
  if (events.empty()) {
    return Ok();
  }
  std::string lines;
  for (const TraceEvent& event : events) {
    lines += EventToJson(event);
    lines += '\n';
  }
  // Append at the published watermark: Fs::Append truncates to that offset
  // first, so a torn or retried append lands these bytes exactly once —
  // the committed cut records the returned (64-bit) offset, and the bytes
  // are fsynced before the manifest rename makes that offset authoritative.
  auto size = io_.Append(EventsPath(*t), t->jsonl_bytes, lines);
  if (!size.has_value()) {
    return MakeUnexpected(IoError("cannot append to " + EventsPath(*t) + ": " +
                                  size.error().Describe()));
  }
  t->jsonl_bytes = *size;
  t->events_published += events.size();
  t->tracer.Clear();
  return Ok();
}

Status<SnapshotError> ServiceLoop::CommitCut() {
  for (auto& t : tenants_) {
    if (auto status = AppendPendingEvents(t.get()); !status.has_value()) {
      return status;
    }
  }
  // Full/delta cadence: commit_seq_ counts successful commits of THIS
  // process, so the first commit after a start or restore is always full
  // and a delta link never lacks an on-disk base chain.  The svc member is
  // small and always staged full.
  const bool delta_cut =
      config_.checkpoint_full_every > 1 &&
      commit_seq_ % static_cast<std::uint64_t>(config_.checkpoint_full_every) != 0;
  const bool track_baselines = config_.checkpoint_full_every > 1;
  store_.Stage("svc", BuildSvcMember());
  std::map<std::string, SectionBaseline> digests;
  for (const auto& t : tenants_) {
    if (t->done) {
      continue;
    }
    TenantCheckpointMeta meta;
    meta.tenant = t->name;
    meta.spec_fingerprint = spec_fingerprint_;
    meta.trace_fingerprint = t->trace_fingerprint;
    meta.trace_size = t->trace.size();
    meta.next_ref = t->next_ref;
    meta.events_published = t->events_published;
    meta.jsonl_bytes = t->jsonl_bytes;
    const bool as_delta = delta_cut && !t->baseline.empty();
    SectionBaseline digest;
    std::string sealed = SealTenantCheckpointSections(
        meta, *t->vm, as_delta ? &t->baseline : nullptr,
        track_baselines ? &digest : nullptr);
    const std::string member = "tenant." + t->name;
    if (as_delta) {
      store_.StageDelta(member, std::move(sealed));
    } else {
      store_.Stage(member, std::move(sealed));
    }
    if (track_baselines) {
      digests[t->name] = std::move(digest);
    }
  }
  if (auto status = store_.Commit(delta_cut ? CutKind::kDelta : CutKind::kFull);
      !status.has_value()) {
    return status;
  }
  // Baselines advance only once the cut is durably committed: a failed
  // commit must leave the next attempt diffing against the last cut that
  // actually exists on disk.
  for (auto& t : tenants_) {
    auto it = digests.find(t->name);
    if (it != digests.end()) {
      t->baseline = std::move(it->second);
    }
  }
  ++commit_seq_;
  last_commit_clock_ = service_clock_;
  ++outcome_.commits;
  return Ok();
}

void ServiceLoop::DecideConcurrency(const std::vector<Tenant*>& steppable) {
  // `steppable` excludes done tenants AND simulation-complete tenants whose
  // report is still pending under degraded IO — those occupy no slot, so a
  // stuck report can never starve the tenants that still have work.  In a
  // healthy run the two sets are identical.
  const std::vector<Tenant*>& incomplete = steppable;
  if (incomplete.size() <= 1) {
    concurrency_ = std::max<std::size_t>(concurrency_, 1);
    return;
  }
  const std::size_t active = std::min(concurrency_, incomplete.size());
  WordCount active_ws = 0;
  for (std::size_t i = 0; i < active; ++i) {
    active_ws += incomplete[i]->vm->pager().ResidentWords();
  }
  if (concurrency_ > 1 && controller_.ShouldShed(active, active_ws, service_clock_)) {
    controller_.NoteShed(active, service_clock_);
    --concurrency_;
    shed_since_start_ = true;
    return;
  }
  if (concurrency_ < incomplete.size() &&
      controller_.MayActivate(active, active_ws, spec_.page_words, shed_since_start_,
                              service_clock_)) {
    if (shed_since_start_) {
      controller_.NoteReactivation(service_clock_);
    } else {
      controller_.NoteDecision(service_clock_);
    }
    ++concurrency_;
  }
}

Status<SnapshotError> ServiceLoop::WriteServiceReport() {
  const std::uint64_t references = aggregate_.CounterValue("vm/references");
  const std::uint64_t faults = aggregate_.CounterValue("vm/faults");
  char buf[128];
  std::string text;
  std::snprintf(buf, sizeof(buf), "== service: %zu tenants, %zu rejected ==\n",
                tenants_.size(), outcome_.tenants_rejected);
  text += buf;
  std::snprintf(buf, sizeof(buf), "references       %" PRIu64 "\n", references);
  text += buf;
  std::snprintf(buf, sizeof(buf), "faults           %" PRIu64 "  (rate %.5f)\n", faults,
                references == 0
                    ? 0.0
                    : static_cast<double>(faults) / static_cast<double>(references));
  text += buf;
  std::snprintf(buf, sizeof(buf), "write-backs      %" PRIu64 "\n",
                aggregate_.CounterValue("vm/writebacks"));
  text += buf;
  std::snprintf(buf, sizeof(buf), "total cycles     %" PRIu64 "\n",
                aggregate_.CounterValue("vm/total_cycles"));
  text += buf;
  std::snprintf(buf, sizeof(buf), "wait cycles      %" PRIu64 "\n",
                aggregate_.CounterValue("vm/wait_cycles"));
  text += buf;
  return WriteFileAtomic(&io_, config_.out_dir + "/SERVICE.txt", text);
}

void ServiceLoop::NoteIoFailure(const SnapshotError& error) {
  (void)error;  // the typed detail already reached the caller's diagnostics
  if (degraded_) {
    return;  // one episode, however many cadences it spans
  }
  degraded_ = true;
  degraded_since_ = service_clock_;
  io_tracer_.AdvanceClock(service_clock_);
  io_tracer_.Emit(EventKind::kServiceDegraded, io_stats_.giveups, outcome_.commits, 0);
}

void ServiceLoop::NoteIoRecovered() {
  const Cycles episode = service_clock_ - degraded_since_;
  degraded_cycles_ += episode;
  degraded_ = false;
  io_tracer_.AdvanceClock(service_clock_);
  io_tracer_.Emit(EventKind::kServiceRecovered, episode, outcome_.commits, 0);
}

bool ServiceLoop::AttemptFlush() {
  last_flush_attempt_clock_ = service_clock_;
  // Pending reports first (completion order is admission order), then the
  // cut — the same durable-op order a healthy run produces, so a recovered
  // run's op sequence converges with an undisturbed one.
  for (auto& t : tenants_) {
    if (t->done || t->next_ref != t->trace.size() || t->vm == nullptr) {
      continue;
    }
    if (auto status = FinishTenant(t.get()); !status.has_value()) {
      NoteIoFailure(status.error());
      return false;
    }
  }
  if (!tenants_.empty()) {
    if (auto status = CommitCut(); !status.has_value()) {
      NoteIoFailure(status.error());
      return false;
    }
  }
  if (degraded_) {
    NoteIoRecovered();
  }
  return true;
}

void ServiceLoop::FillIoOutcome() {
  outcome_.degraded = degraded_;
  outcome_.io_retries = io_stats_.retries;
  outcome_.io_giveups = io_stats_.giveups;
  outcome_.degraded_cycles =
      degraded_cycles_ + (degraded_ ? service_clock_ - degraded_since_ : 0);
  outcome_.reports_unwritten = 0;
  for (const auto& t : tenants_) {
    if (!t->done && t->next_ref == t->trace.size()) {
      ++outcome_.reports_unwritten;
    }
  }
}

void ServiceLoop::WriteIoReport() {
  // Written only when IO was ever disturbed: a zero-fault run's output tree
  // must stay byte-for-byte what the pre-seam service produced.
  const std::vector<TraceEvent> events = io_tracer_.Snapshot();
  const Cycles degraded_total =
      degraded_cycles_ + (degraded_ ? service_clock_ - degraded_since_ : 0);
  if (io_stats_.retries == 0 && io_stats_.giveups == 0 && degraded_total == 0 &&
      events.empty()) {
    return;
  }
  char buf[96];
  std::string text = "== durable io ==\n";
  std::snprintf(buf, sizeof(buf), "io_retries       %" PRIu64 "\n", io_stats_.retries);
  text += buf;
  std::snprintf(buf, sizeof(buf), "io_giveups       %" PRIu64 "\n", io_stats_.giveups);
  text += buf;
  std::snprintf(buf, sizeof(buf), "degraded_cycles  %" PRIu64 "\n", degraded_total);
  text += buf;
  std::snprintf(buf, sizeof(buf), "degraded_at_exit %d\n", degraded_ ? 1 : 0);
  text += buf;
  // Best effort on a possibly-still-broken disk: the report is diagnostic,
  // never part of the byte-identity contract (the soak diffs exclude it).
  (void)WriteFileAtomic(&io_, config_.out_dir + "/IO.txt", text);
  if (!events.empty()) {
    std::string lines;
    for (const TraceEvent& event : events) {
      lines += EventToJson(event);
      lines += '\n';
    }
    (void)WriteFileAtomic(&io_, config_.out_dir + "/IO.events.jsonl", lines);
  }
}

Expected<ServeOutcome, SnapshotError> ServiceLoop::Run() {
  if (!SpecIsPagedLinear(spec_)) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kBadValue,
        "service mode checkpoints the paged linear family only; pick a linear "
        "name space with page units"});
  }
  if (auto created = io_.CreateDirs(config_.out_dir); !created.has_value()) {
    return MakeUnexpected(IoError("cannot create out dir " + config_.out_dir + ": " +
                                  created.error().Describe()));
  }

  // Startup (recovery + first admission) has no state worth limping along
  // with: an unreadable store or spool stays an environment error and the
  // supervisor restarts us.  Degraded mode begins once tenants exist.
  auto recovered = store_.Recover();
  if (!recovered.has_value()) {
    return MakeUnexpected(recovered.error());
  }
  for (const auto& record : recovered->quarantined) {
    outcome_.quarantined.push_back(record.file + ": " + record.error.Describe());
  }
  RestoreCut(&recovered.value());

  if (auto status = AdmitTenants(); !status.has_value()) {
    return MakeUnexpected(status.error());
  }

  while (true) {
    // Steppable: simulation still in progress.  A completed tenant whose
    // report is stuck behind degraded IO is NOT steppable — it holds no
    // concurrency slot and is retried by the flush path, not the scheduler.
    std::vector<Tenant*> steppable;
    for (const auto& t : tenants_) {
      if (!t->done && t->next_ref < t->trace.size()) {
        steppable.push_back(t.get());
      }
    }
    if (steppable.empty()) {
      break;
    }
    DecideConcurrency(steppable);
    const std::size_t active = std::min(concurrency_, steppable.size());
    const bool concurrent_round = lanes_ > 1 && active > 1;
    if (concurrent_round) {
      // Deal the active tenants to lanes round-robin; each lane steps its
      // share through its own arena, then the barrier.  Block identity never
      // feeds back into the simulation, so any interleaving of heap CASes
      // leaves every tenant's trajectory bit-identical to the serial round.
      const std::size_t width = std::min<std::size_t>(lanes_, active);
      pool_->ParallelFor(width, [&](std::size_t lane) {
        for (std::size_t i = lane; i < active; i += width) {
          Tenant* t = steppable[i];
          t->binder->SetArena(&arenas_[lane]);
          StepSlice(t);
          t->binder->SetArena(nullptr);
        }
      });
    }
    bool force_flush = false;
    for (std::size_t i = 0; i < active; ++i) {
      Tenant* t = steppable[i];
      if (concurrent_round) {
        ReplayFeed(t);
      } else {
        RunSlice(t);
      }
      if (t->next_ref == t->trace.size()) {
        // Simulation complete.  Fold the metrics into the aggregate NOW
        // (exactly once — this branch cannot re-fire for a tenant), so the
        // very cut that records next_ref == size also carries its metrics;
        // the report write and the done flag belong to the flush path.
        VmReport report = t->vm->Snapshot();
        report.label = spec_.label + " / " + t->trace.label;
        MetricsRegistry metrics;
        FillVmMetrics(report, &metrics);
        MergeRegistryInto(&aggregate_, metrics);
        ++outcome_.tenants_completed;
        force_flush = true;
      }
    }
    const bool cadence =
        config_.checkpoint_every > 0 &&
        service_clock_ - last_flush_attempt_clock_ >= config_.checkpoint_every;
    if (force_flush || cadence) {
      if (AttemptFlush() && config_.stop_after_commits >= 0 &&
          outcome_.commits >= static_cast<std::uint64_t>(config_.stop_after_commits)) {
        // Abandon mid-run without flushing anything further — the on-disk
        // state is exactly what a hard kill at this instant leaves behind.
        FillIoOutcome();
        return outcome_;
      }
      if (io_.halted()) {
        return MakeUnexpected(IoError("durable IO halted by a simulated crash"));
      }
    }
    if (config_.rescan_spool) {
      if (auto status = AdmitTenants(); !status.has_value()) {
        return MakeUnexpected(status.error());
      }
    }
  }

  // Every tenant has been stepped to completion; what remains is durable
  // publication.  Re-attempt a bounded number of times (each attempt burns
  // ops, so a transient fault window traversed here heals), then exit —
  // degraded but alive — if IO stays down.
  bool flushed = false;
  const int attempts = std::max(1, config_.final_flush_attempts);
  for (int attempt = 0; attempt < attempts && !flushed; ++attempt) {
    if (io_.halted()) {
      return MakeUnexpected(IoError("durable IO halted by a simulated crash"));
    }
    flushed = tenants_.empty() || AttemptFlush();
    if (flushed) {
      if (auto status = WriteServiceReport(); !status.has_value()) {
        NoteIoFailure(status.error());
        flushed = false;
      } else if (degraded_) {
        // The flush path had nothing pending (no tenants) but the service
        // report itself just proved IO healed.
        NoteIoRecovered();
      }
    }
  }
  if (io_.halted()) {
    return MakeUnexpected(IoError("durable IO halted by a simulated crash"));
  }
  FillIoOutcome();
  WriteIoReport();
  outcome_.finished = true;
  return outcome_;
}

}  // namespace dsa
