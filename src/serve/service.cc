#include "src/serve/service.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "src/obs/export.h"
#include "src/obs/merge.h"
#include "src/obs/vm_metrics.h"
#include "src/trace/trace_io.h"

namespace dsa {

namespace fs = std::filesystem;

namespace {

SnapshotError IoError(std::string detail) {
  return SnapshotError{SnapshotErrorKind::kIo, std::move(detail)};
}

bool UsableTenantName(const std::string& name) {
  if (name.empty() || name[0] == '.') {
    return false;
  }
  // Member names travel through the whitespace-delimited manifest.
  return name.find_first_of(" \t\n") == std::string::npos;
}

}  // namespace

ServiceLoop::ServiceLoop(SystemSpec base_spec, ServeConfig config)
    : spec_(std::move(base_spec)),
      config_(std::move(config)),
      spec_fingerprint_(SpecFingerprint(spec_)),
      store_(config_.checkpoint_dir),
      controller_(config_.load_control, spec_.core_words, spec_.page_words),
      lanes_(std::max(1u, config_.lanes == 0 ? HardwareJobs() : config_.lanes)),
      tenant_frames_(static_cast<std::size_t>(
          spec_.page_words == 0 ? 0 : spec_.core_words / spec_.page_words)),
      heap_({HeapClassSpec{static_cast<std::size_t>(std::max<WordCount>(1, spec_.page_words)),
                           lanes_ * LaneArena::kDefaultHighWatermark}}) {
  spec_.tracer = nullptr;  // tenants own their tracers
  for (unsigned lane = 0; lane < lanes_; ++lane) {
    arenas_.emplace_back(&heap_);
  }
  if (lanes_ > 1) {
    pool_ = std::make_unique<ThreadPool>(lanes_);
  }
}

std::string ServiceLoop::EventsPath(const Tenant& t) const {
  return config_.out_dir + "/" + t.name + ".events.jsonl";
}

std::string ServiceLoop::ReportPath(const Tenant& t) const {
  return config_.out_dir + "/" + t.name + ".report.txt";
}

std::unique_ptr<PagedLinearVm> ServiceLoop::BuildVm(Tenant* t) {
  PagedVmConfig config = PagedConfigFromSpec(spec_);
  config.tracer = &t->tracer;
  if (t->binder == nullptr) {
    // First incarnation of this tenant: grow the shared heap by its exact
    // worst-case frame demand.  This is a serial point (admission/restore),
    // which GrowSerial's quiescence contract requires.
    t->binder = std::make_unique<LaneFrameBinder>(
        &heap_, static_cast<std::size_t>(spec_.page_words));
    heap_.GrowSerial(0, tenant_frames_);
  }
  config.frame_binder = t->binder.get();
  return std::make_unique<PagedLinearVm>(config);
}

Status<SnapshotError> ServiceLoop::AdmitTenants() {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.spool_dir, ec)) {
    if (entry.is_regular_file()) {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return MakeUnexpected(
        IoError("cannot read spool dir " + config_.spool_dir + ": " + ec.message()));
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    const std::string name = path.filename().string();
    if (std::find(seen_.begin(), seen_.end(), name) != seen_.end()) {
      continue;
    }
    seen_.push_back(name);
    auto reject = [&](const std::string& reason) {
      outcome_.rejected.push_back(name + ": " + reason);
      ++outcome_.tenants_rejected;
    };
    if (!UsableTenantName(name)) {
      reject("unusable file name (hidden or whitespace)");
      continue;
    }
    auto bytes = ReadFileBytes(path.string());
    if (!bytes.has_value()) {
      reject(bytes.error().Describe());
      continue;
    }
    std::istringstream in(*bytes);
    auto parsed = ReadReferenceTrace(&in);
    if (!parsed.has_value()) {
      reject("line " + std::to_string(parsed.error().line) + ": " + parsed.error().message);
      continue;
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->trace_fingerprint = Fnv64(*bytes);
    tenant->trace = std::move(parsed.value());
    tenant->vm = BuildVm(tenant.get());
    // A fresh tenant's event log starts empty; a crash may have left
    // uncommitted bytes from a previous incarnation.
    if (std::FILE* f = std::fopen(EventsPath(*tenant).c_str(), "wb")) {
      std::fclose(f);
    } else {
      return MakeUnexpected(IoError("cannot create " + EventsPath(*tenant)));
    }
    tenants_.push_back(std::move(tenant));
  }
  return Ok();
}

std::string ServiceLoop::BuildSvcMember() const {
  SnapshotWriter w;
  w.U64(spec_fingerprint_);
  w.U64(service_clock_);
  w.U64(last_commit_clock_);
  w.U64(concurrency_);
  w.Bool(shed_since_start_);
  controller_.SaveState(&w);
  aggregate_.SaveState(&w);
  w.U64(tenants_.size());
  for (const auto& t : tenants_) {
    w.Str(t->name);
    w.Bool(t->done);
  }
  return w.Seal();
}

bool ServiceLoop::LoadSvcMember(std::string_view sealed, std::string* reason) {
  SnapshotReader r(sealed);
  const std::uint64_t fingerprint = r.U64();
  if (r.ok() && fingerprint != spec_fingerprint_) {
    *reason = "checkpoint was taken under a different system spec";
    return false;
  }
  const Cycles service_clock = r.U64();
  const Cycles last_commit_clock = r.U64();
  const std::uint64_t concurrency = r.U64();
  const bool shed_since_start = r.Bool();
  controller_.LoadState(&r);
  aggregate_.LoadState(&r);
  const std::uint64_t count = r.Count(1u << 20);
  if (!r.ok()) {
    *reason = r.error().Describe();
    return false;
  }
  if (concurrency == 0) {
    *reason = "service concurrency of zero";
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = r.Str();
    const bool done = r.Bool();
    if (!r.ok()) {
      *reason = r.error().Describe();
      return false;
    }
    auto bytes = ReadFileBytes(config_.spool_dir + "/" + name);
    if (!bytes.has_value()) {
      *reason = "tenant " + name + " vanished from the spool";
      return false;
    }
    std::istringstream in(*bytes);
    auto parsed = ReadReferenceTrace(&in);
    if (!parsed.has_value()) {
      *reason = "tenant " + name + " no longer parses";
      return false;
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->trace_fingerprint = Fnv64(*bytes);
    tenant->trace = std::move(parsed.value());
    tenant->done = done;
    if (done) {
      // Outputs are already final; no VM state exists or is needed.
      tenant->next_ref = tenant->trace.size();
    }
    tenants_.push_back(std::move(tenant));
    seen_.push_back(name);
  }
  if (!r.AtEnd()) {
    *reason = "trailing bytes after the service state";
    return false;
  }
  service_clock_ = service_clock;
  last_commit_clock_ = last_commit_clock;
  concurrency_ = static_cast<std::size_t>(concurrency);
  shed_since_start_ = shed_since_start;
  return true;
}

void ServiceLoop::RestoreCut(CheckpointStore::Recovered* recovered) {
  auto fresh_start = [&](const std::string& reason) {
    outcome_.quarantined.push_back("cut discarded: " + reason);
    tenants_.clear();
    seen_.clear();
    outcome_.tenants_resumed = 0;
    service_clock_ = 0;
    last_commit_clock_ = 0;
    concurrency_ = 1;
    shed_since_start_ = false;
    controller_ = LoadController(config_.load_control, spec_.core_words, spec_.page_words);
    aggregate_ = MetricsRegistry{};
  };

  auto svc = recovered->members.find("svc");
  if (svc == recovered->members.end()) {
    if (!recovered->members.empty()) {
      fresh_start("committed cut lacks the svc member");
    }
    return;
  }
  std::string reason;
  if (!LoadSvcMember(svc->second, &reason)) {
    fresh_start(reason);
    return;
  }
  for (auto& t : tenants_) {
    if (t->done) {
      continue;
    }
    auto member = recovered->members.find("tenant." + t->name);
    if (member == recovered->members.end()) {
      fresh_start("committed cut lacks tenant " + t->name);
      return;
    }
    t->vm = BuildVm(t.get());
    auto meta = OpenTenantCheckpoint(member->second, spec_fingerprint_,
                                     t->trace_fingerprint, t->trace.size(), t->vm.get());
    if (!meta.has_value()) {
      fresh_start("tenant " + t->name + ": " + meta.error().Describe());
      return;
    }
    t->next_ref = meta->next_ref;
    t->events_published = meta->events_published;
    t->jsonl_bytes = meta->jsonl_bytes;
    t->last_space_time = t->vm->Snapshot().space_time;
    // Discard event bytes appended after the committed cut; the resumed
    // steps regenerate them identically.
    std::error_code ec;
    const auto actual = fs::exists(EventsPath(*t), ec)
                            ? fs::file_size(EventsPath(*t), ec)
                            : std::uintmax_t{0};
    if (ec || actual < t->jsonl_bytes) {
      fresh_start("tenant " + t->name + ": event log shorter than the committed prefix");
      return;
    }
    if (actual > t->jsonl_bytes) {
      fs::resize_file(EventsPath(*t), t->jsonl_bytes, ec);
      if (ec) {
        fresh_start("tenant " + t->name + ": cannot truncate event log");
        return;
      }
    }
    ++outcome_.tenants_resumed;
  }
}

void ServiceLoop::StepSlice(Tenant* t) {
  const std::vector<Reference>& refs = t->trace.refs;
  const std::uint64_t end =
      std::min<std::uint64_t>(t->next_ref + config_.slice_references, refs.size());
  t->feed.clear();
  while (t->next_ref < end) {
    const Cycles before = t->vm->clock().now();
    const Cycles stall = t->vm->Step(refs[static_cast<std::size_t>(t->next_ref)]);
    ++t->next_ref;
    t->feed.emplace_back(t->vm->clock().now() - before, stall);
  }
}

void ServiceLoop::ReplayFeed(Tenant* t) {
  ThrashingDetector& detector = controller_.detector();
  for (const auto& [delta, stall] : t->feed) {
    service_clock_ += delta;
    detector.RecordReference(service_clock_);
    if (stall > 0) {
      detector.RecordFault(service_clock_, stall);
    }
  }
  t->feed.clear();
  const SpaceTime now_product = t->vm->Snapshot().space_time;
  detector.RecordSpaceTime(service_clock_, now_product.active - t->last_space_time.active,
                           now_product.waiting - t->last_space_time.waiting);
  t->last_space_time = now_product;
}

void ServiceLoop::RunSlice(Tenant* t) {
  // The serial composition is step-for-step the pre-lanes loop: the feed is
  // generated and immediately replayed, so the detector sees each reference
  // at the same service-clock instant it always did.
  StepSlice(t);
  ReplayFeed(t);
}

Status<SnapshotError> ServiceLoop::FinishTenant(Tenant* t) {
  VmReport report = t->vm->Snapshot();
  report.label = spec_.label + " / " + t->trace.label;
  const std::string text =
      RenderVmReport(report, Describe(t->vm->characteristics()), t->name);
  if (auto status = WriteFileAtomic(ReportPath(*t), text); !status.has_value()) {
    return status;
  }
  MetricsRegistry metrics;
  FillVmMetrics(report, &metrics);
  MergeRegistryInto(&aggregate_, metrics);
  t->done = true;
  ++outcome_.tenants_completed;
  return Ok();
}

Status<SnapshotError> ServiceLoop::AppendPendingEvents(Tenant* t) {
  const std::vector<TraceEvent> events = t->tracer.Snapshot();
  if (events.empty()) {
    return Ok();
  }
  std::FILE* f = std::fopen(EventsPath(*t).c_str(), "ab");
  if (f == nullptr) {
    return MakeUnexpected(IoError("cannot append to " + EventsPath(*t)));
  }
  for (const TraceEvent& event : events) {
    const std::string line = EventToJson(event) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return MakeUnexpected(IoError("short write to " + EventsPath(*t)));
    }
  }
  // The committed cut will record this byte offset; the bytes must be
  // durable before the manifest rename makes the offset authoritative.
  if (std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    std::fclose(f);
    return MakeUnexpected(IoError("cannot flush " + EventsPath(*t)));
  }
  const long size = std::ftell(f);
  std::fclose(f);
  if (size < 0) {
    return MakeUnexpected(IoError("cannot size " + EventsPath(*t)));
  }
  t->jsonl_bytes = static_cast<std::uint64_t>(size);
  t->events_published += events.size();
  t->tracer.Clear();
  return Ok();
}

Status<SnapshotError> ServiceLoop::CommitCut() {
  for (auto& t : tenants_) {
    if (auto status = AppendPendingEvents(t.get()); !status.has_value()) {
      return status;
    }
  }
  store_.Stage("svc", BuildSvcMember());
  for (const auto& t : tenants_) {
    if (t->done) {
      continue;
    }
    TenantCheckpointMeta meta;
    meta.tenant = t->name;
    meta.spec_fingerprint = spec_fingerprint_;
    meta.trace_fingerprint = t->trace_fingerprint;
    meta.trace_size = t->trace.size();
    meta.next_ref = t->next_ref;
    meta.events_published = t->events_published;
    meta.jsonl_bytes = t->jsonl_bytes;
    store_.Stage("tenant." + t->name, SealTenantCheckpoint(meta, *t->vm));
  }
  if (auto status = store_.Commit(); !status.has_value()) {
    return status;
  }
  last_commit_clock_ = service_clock_;
  ++outcome_.commits;
  return Ok();
}

void ServiceLoop::DecideConcurrency() {
  std::vector<Tenant*> incomplete;
  for (const auto& t : tenants_) {
    if (!t->done) {
      incomplete.push_back(t.get());
    }
  }
  if (incomplete.size() <= 1) {
    concurrency_ = std::max<std::size_t>(concurrency_, 1);
    return;
  }
  const std::size_t active = std::min(concurrency_, incomplete.size());
  WordCount active_ws = 0;
  for (std::size_t i = 0; i < active; ++i) {
    active_ws += incomplete[i]->vm->pager().ResidentWords();
  }
  if (concurrency_ > 1 && controller_.ShouldShed(active, active_ws, service_clock_)) {
    controller_.NoteShed(active, service_clock_);
    --concurrency_;
    shed_since_start_ = true;
    return;
  }
  if (concurrency_ < incomplete.size() &&
      controller_.MayActivate(active, active_ws, spec_.page_words, shed_since_start_,
                              service_clock_)) {
    if (shed_since_start_) {
      controller_.NoteReactivation(service_clock_);
    } else {
      controller_.NoteDecision(service_clock_);
    }
    ++concurrency_;
  }
}

Status<SnapshotError> ServiceLoop::WriteServiceReport() const {
  const std::uint64_t references = aggregate_.CounterValue("vm/references");
  const std::uint64_t faults = aggregate_.CounterValue("vm/faults");
  char buf[128];
  std::string text;
  std::snprintf(buf, sizeof(buf), "== service: %zu tenants, %zu rejected ==\n",
                tenants_.size(), outcome_.tenants_rejected);
  text += buf;
  std::snprintf(buf, sizeof(buf), "references       %" PRIu64 "\n", references);
  text += buf;
  std::snprintf(buf, sizeof(buf), "faults           %" PRIu64 "  (rate %.5f)\n", faults,
                references == 0
                    ? 0.0
                    : static_cast<double>(faults) / static_cast<double>(references));
  text += buf;
  std::snprintf(buf, sizeof(buf), "write-backs      %" PRIu64 "\n",
                aggregate_.CounterValue("vm/writebacks"));
  text += buf;
  std::snprintf(buf, sizeof(buf), "total cycles     %" PRIu64 "\n",
                aggregate_.CounterValue("vm/total_cycles"));
  text += buf;
  std::snprintf(buf, sizeof(buf), "wait cycles      %" PRIu64 "\n",
                aggregate_.CounterValue("vm/wait_cycles"));
  text += buf;
  return WriteFileAtomic(config_.out_dir + "/SERVICE.txt", text);
}

Expected<ServeOutcome, SnapshotError> ServiceLoop::Run() {
  if (!SpecIsPagedLinear(spec_)) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kBadValue,
        "service mode checkpoints the paged linear family only; pick a linear "
        "name space with page units"});
  }
  std::error_code ec;
  fs::create_directories(config_.out_dir, ec);
  if (ec) {
    return MakeUnexpected(
        IoError("cannot create out dir " + config_.out_dir + ": " + ec.message()));
  }

  auto recovered = store_.Recover();
  if (!recovered.has_value()) {
    return MakeUnexpected(recovered.error());
  }
  for (const auto& record : recovered->quarantined) {
    outcome_.quarantined.push_back(record.file + ": " + record.error.Describe());
  }
  RestoreCut(&recovered.value());

  if (auto status = AdmitTenants(); !status.has_value()) {
    return MakeUnexpected(status.error());
  }

  while (true) {
    std::vector<Tenant*> incomplete;
    for (const auto& t : tenants_) {
      if (!t->done) {
        incomplete.push_back(t.get());
      }
    }
    if (incomplete.empty()) {
      break;
    }
    DecideConcurrency();
    const std::size_t active = std::min(concurrency_, incomplete.size());
    const bool concurrent_round = lanes_ > 1 && active > 1;
    if (concurrent_round) {
      // Deal the active tenants to lanes round-robin; each lane steps its
      // share through its own arena, then the barrier.  Block identity never
      // feeds back into the simulation, so any interleaving of heap CASes
      // leaves every tenant's trajectory bit-identical to the serial round.
      const std::size_t width = std::min<std::size_t>(lanes_, active);
      pool_->ParallelFor(width, [&](std::size_t lane) {
        for (std::size_t i = lane; i < active; i += width) {
          Tenant* t = incomplete[i];
          t->binder->SetArena(&arenas_[lane]);
          StepSlice(t);
          t->binder->SetArena(nullptr);
        }
      });
    }
    bool force_commit = false;
    for (std::size_t i = 0; i < active; ++i) {
      Tenant* t = incomplete[i];
      if (concurrent_round) {
        ReplayFeed(t);
      } else {
        RunSlice(t);
      }
      if (t->next_ref == t->trace.size()) {
        if (auto status = FinishTenant(t); !status.has_value()) {
          return MakeUnexpected(status.error());
        }
        force_commit = true;
      }
    }
    if (force_commit || (config_.checkpoint_every > 0 &&
                         service_clock_ - last_commit_clock_ >= config_.checkpoint_every)) {
      if (auto status = CommitCut(); !status.has_value()) {
        return MakeUnexpected(status.error());
      }
      if (config_.stop_after_commits >= 0 &&
          outcome_.commits >= static_cast<std::uint64_t>(config_.stop_after_commits)) {
        // Abandon mid-run without flushing anything further — the on-disk
        // state is exactly what a hard kill at this instant leaves behind.
        return outcome_;
      }
    }
    if (config_.rescan_spool) {
      if (auto status = AdmitTenants(); !status.has_value()) {
        return MakeUnexpected(status.error());
      }
    }
  }

  if (!tenants_.empty()) {
    if (auto status = CommitCut(); !status.has_value()) {
      return MakeUnexpected(status.error());
    }
  }
  if (auto status = WriteServiceReport(); !status.has_value()) {
    return MakeUnexpected(status.error());
  }
  outcome_.finished = true;
  return outcome_;
}

}  // namespace dsa
