// CheckpointStore: a directory of checkpoint members committed as one
// consistent cut through a manifest, with incremental (delta) cuts chained
// onto periodic full cuts.
//
// Layout:
//
//   <dir>/<member>.<gen>.ckpt   one sealed snapshot per member per link
//   <dir>/MANIFEST              the commit point (text, written atomically)
//
// The MANIFEST names the current generation N, the base generation F of the
// last FULL cut, and for every member every live chain link — generation,
// kind (f full | d delta), file size, fnv64 content checksum:
//
//   DSAMANIFEST 2
//   gen <N>
//   base <F>
//   member <name> <gen> <f|d> <bytes> <fnv64-hex>
//   ...
//   end
//
// A member's restore chain is the suffix of its entries starting at its
// last `f` link; a delta commit appends a `d` link per staged member while
// re-listing (not rewriting) the untouched earlier links.  Entries pinned
// at gen F survive even for members no longer in the current cut — they are
// the FALLBACK cut recovery retreats to when a newer link is damaged.  A
// full commit re-seals every member, advances F to N, and lets the old
// chain files become removable orphans.
//
// Commit protocol (unchanged from v1): every new member file is written
// first (each via write-temp-then-rename + parent fsync through the Fs
// seam), then the manifest is rewritten atomically, then files no longer
// referenced are deleted.  A crash anywhere leaves either the old cut or
// the new cut fully intact.
//
// Recovery discipline: the manifest is the sole source of truth.  A damaged
// link (missing file, wrong length, checksum mismatch, bad container
// header) invalidates the WHOLE CHAIN it belongs to, which invalidates the
// whole current cut — restoring a partial cut or a partial chain would
// break bit-identical resume.  Damaged current-cut files newer than F are
// renamed to *.quarantine (uniquified when a previous incident already left
// evidence at that name) and recovery falls back to the gen-F full cut; if
// the fallback is damaged too — or the current cut IS the full cut — the
// whole store is quarantined and service starts fresh.  Falling back
// atomically rewrites the MANIFEST to name the fallback cut, so a crash
// mid-recovery re-runs the same decision.  Nothing in this layer aborts.

#ifndef SRC_SERVE_CHECKPOINT_STORE_H_
#define SRC_SERVE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/fsio.h"
#include "src/core/snapshot.h"

namespace dsa {

enum class CutKind : std::uint8_t {
  kFull,   // every staged member is a complete snapshot; advances the base
  kDelta,  // delta-staged members append to their chains; base stays put
};

class CheckpointStore {
 public:
  // Every durable op goes through `fs` (null: the process-wide RealFs) —
  // the seam the fault-point sweep injects failures into.
  explicit CheckpointStore(std::string dir, Fs* fs = nullptr)
      : dir_(std::move(dir)), fs_(fs != nullptr ? fs : &SystemFs()) {}

  struct QuarantineRecord {
    std::string file;  // path moved aside as *.quarantine evidence
    SnapshotError error;
  };

  struct Recovered {
    std::uint64_t generation{0};       // 0: no committed cut
    std::uint64_t base_generation{0};  // gen of the last full cut (<= generation)
    // name -> validated chain link bytes, full link first then deltas in
    // commit order.  Single-element chains for full cuts.
    std::map<std::string, std::vector<std::string>> members;
    std::vector<QuarantineRecord> quarantined;  // damaged files, if any
    // True when the current cut was damaged and the store retreated to the
    // last intact full cut (generation == base_generation afterwards).
    bool fell_back{false};
  };

  // Scans the directory: validates the committed cut against the manifest,
  // quarantines damage, falls back to the last full cut when a newer link
  // is hurt, deletes uncommitted orphan member files.  Only
  // unreadable-directory class failures are errors; a damaged cut is
  // recovered-as-older-or-empty with the quarantine records explaining why.
  // Must be called before Stage/Commit.
  Expected<Recovered, SnapshotError> Recover();

  // Stages `name` as a FULL member of the next commit (its chain restarts
  // at the new generation).  Every commit publishes a complete cut: members
  // not re-staged are NOT carried over.
  void Stage(const std::string& name, std::string sealed);

  // Stages `name` as a DELTA link appended to its existing chain.  Only
  // meaningful for Commit(kDelta); committing a delta link for a member
  // with no committed chain is a typed error at Commit time.
  void StageDelta(const std::string& name, std::string sealed);

  // Publishes the staged cut as the next generation (see the protocol
  // above) and clears the staging area.  kDelta with no committed base yet
  // is promoted to a full cut (the first commit seeds the chains).
  Status<SnapshotError> Commit(CutKind kind = CutKind::kFull);

  std::uint64_t generation() const { return generation_; }
  std::uint64_t base_generation() const { return base_generation_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Link {
    std::uint64_t gen{0};
    bool delta{false};
    std::uint64_t bytes{0};
    std::uint64_t checksum{0};
  };
  struct StagedMember {
    std::string sealed;
    bool delta{false};
  };

  std::string ManifestPath() const;
  std::string MemberPath(const std::string& name, std::uint64_t gen) const;
  // Renames `path` aside as quarantine evidence, probing `<path>.quarantine`,
  // `<path>.quarantine.1`, ... so an earlier incident's evidence at the same
  // name is never clobbered.  Failures (already gone, IO trouble) are
  // ignored — quarantine is best-effort evidence preservation.
  void QuarantineFile(const std::string& path);
  // Removes every .ckpt file in the store not named in `keep` (orphans of a
  // crashed or superseded commit).  `strict` reports list failures;
  // post-commit cleanup passes false because the commit itself already
  // happened.
  Status<SnapshotError> RemoveOrphans(const std::set<std::string>& keep, bool strict);

  std::string dir_;
  Fs* fs_;
  std::uint64_t generation_{0};
  std::uint64_t base_generation_{0};
  bool recovered_{false};
  // Committed state mirrored from the manifest: per-member chain links of
  // the current cut, plus the gen-F fallback entries (which include members
  // that have since completed and left the current cut).
  std::map<std::string, std::vector<Link>> chains_;
  std::map<std::string, Link> fallback_;
  std::map<std::string, StagedMember> staged_;
};

}  // namespace dsa

#endif  // SRC_SERVE_CHECKPOINT_STORE_H_
