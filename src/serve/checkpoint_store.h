// CheckpointStore: a directory of checkpoint members committed as one
// consistent cut through a manifest.
//
// Layout:
//
//   <dir>/<member>.<gen>.ckpt   one sealed snapshot per member
//   <dir>/MANIFEST              the commit point (text, written atomically)
//
// The MANIFEST names one generation and, for every member of that cut, the
// member's file size and fnv64 content checksum:
//
//   DSAMANIFEST 1
//   gen <N>
//   member <name> <bytes> <fnv64-hex>
//   ...
//   end
//
// Commit protocol: every member file of generation N+1 is written first
// (each via write-temp-then-rename), then the manifest is rewritten
// atomically to name generation N+1, then the generation-N files are
// deleted.  A crash anywhere leaves either the old cut or the new cut fully
// intact: member files of an uncommitted generation are orphans that
// Recover() removes, and a torn manifest is impossible because rename is
// the only way MANIFEST changes.
//
// Recovery discipline: the manifest is the sole source of truth.  A member
// file that is missing, the wrong length, mismatches its manifest checksum,
// or fails the snapshot container's own header verification invalidates the
// WHOLE cut — every member plus the manifest is renamed to *.quarantine and
// the store reports the typed reasons.  (Restoring a partial cut would
// break the bit-identical-resume guarantee, so a damaged cut is treated as
// no cut at all.)  Nothing in this layer aborts.

#ifndef SRC_SERVE_CHECKPOINT_STORE_H_
#define SRC_SERVE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/fsio.h"
#include "src/core/snapshot.h"

namespace dsa {

class CheckpointStore {
 public:
  // Every durable op goes through `fs` (null: the process-wide RealFs) —
  // the seam the fault-point sweep injects failures into.
  explicit CheckpointStore(std::string dir, Fs* fs = nullptr)
      : dir_(std::move(dir)), fs_(fs != nullptr ? fs : &SystemFs()) {}

  struct QuarantineRecord {
    std::string file;  // path moved to <file>.quarantine
    SnapshotError error;
  };

  struct Recovered {
    std::uint64_t generation{0};                  // 0: no committed cut
    std::map<std::string, std::string> members;   // name -> validated sealed bytes
    std::vector<QuarantineRecord> quarantined;    // damaged cut, if any
  };

  // Scans the directory: validates the committed cut against the manifest,
  // quarantines a damaged cut, deletes uncommitted orphan member files.
  // Only unreadable-directory class failures are errors; a damaged cut is
  // recovered-as-empty with the quarantine records explaining why.  Must be
  // called before Stage/Commit.
  Expected<Recovered, SnapshotError> Recover();

  // Stages `name` -> sealed bytes for the next Commit.  Every commit writes
  // a complete cut: members not re-staged are NOT carried over.
  void Stage(const std::string& name, std::string sealed);

  // Publishes the staged cut as the next generation (see the protocol
  // above) and clears the staging area.
  Status<SnapshotError> Commit();

  std::uint64_t generation() const { return generation_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string ManifestPath() const;
  std::string MemberPath(const std::string& name, std::uint64_t gen) const;
  // Renames `path` to `<path>.quarantine`; a failure (already gone, IO
  // trouble) is ignored — quarantine is best-effort evidence preservation.
  void QuarantineFile(const std::string& path);
  // Removes every .ckpt file in the store not named in `keep` (orphans of a
  // crashed or superseded commit).  `strict` reports list failures;
  // post-commit cleanup passes false because the commit itself already
  // happened.
  Status<SnapshotError> RemoveOrphans(const std::set<std::string>& keep, bool strict);

  std::string dir_;
  Fs* fs_;
  std::uint64_t generation_{0};
  bool recovered_{false};
  std::map<std::string, std::string> staged_;
};

}  // namespace dsa

#endif  // SRC_SERVE_CHECKPOINT_STORE_H_
