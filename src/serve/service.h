// The resident service loop: a multi-tenant daemon over per-tenant
// PagedLinearVm instances with crash-consistent checkpoint/restore.
//
// Tenants are reference-trace files dropped into a spool directory; each is
// admitted (sorted-name order, rescanned between rounds so tenants can
// stream in mid-run), given its own isolated system instance built from the
// shared SystemSpec, and stepped in round-robin slices.  A LoadController
// watches the aggregate fault/wait signals across every active tenant on
// the service's virtual clock and adapts how many tenants run concurrently
// — the paper's integrated storage-and-scheduling decision applied across
// tenants instead of across jobs.
//
// Crash consistency (the whole point of this module):
//
//   * On a simulated-cycle cadence the loop commits a CUT: every tenant's
//     pending trace events are appended to its JSONL file, then every
//     incomplete tenant's full VM state plus one global "svc" member
//     (service clock, controller state, admission order, aggregate
//     metrics) is staged and committed through the CheckpointStore
//     manifest protocol.
//   * Each tenant checkpoint records the byte length of its published
//     JSONL prefix; restore truncates the file to that offset, discarding
//     bytes appended after the committed cut.
//   * Restore rebuilds each tenant from its spool file and checkpoint and
//     continues stepping; because every component serializes its complete
//     state, the resumed run's reports, metrics, and event JSONL are
//     byte-identical to an uninterrupted run (tests/test_checkpoint_resume
//     and scripts/soak_resume.sh enforce this).
//   * Damaged checkpoints are quarantined by the store, reported as typed
//     errors, and the service restarts the affected work from scratch —
//     it never aborts and never resumes a partial cut.
//
// A malformed spool file is rejected and reported, never fatal.  The spec
// must select the paged linear family (SpecIsPagedLinear) — the family
// whose complete state is checkpointable.

#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/fsio.h"
#include "src/core/snapshot.h"
#include "src/exec/concurrent_heap.h"
#include "src/exec/lane_binder.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/sched/load_control.h"
#include "src/serve/checkpoint.h"
#include "src/serve/checkpoint_store.h"
#include "src/trace/reference.h"
#include "src/vm/paged_vm.h"
#include "src/vm/system_builder.h"

namespace dsa {

struct ServeConfig {
  std::string spool_dir;       // tenant trace files
  std::string out_dir;         // per-tenant reports + event JSONL + SERVICE.txt
  std::string checkpoint_dir;  // the CheckpointStore directory

  // Simulated service-clock cycles between checkpoint commits (0: commit
  // only at tenant completions and shutdown).
  Cycles checkpoint_every{200000};
  // Every Nth commit is a FULL cut; the commits between are DELTA cuts that
  // re-seal only the sections whose content hash changed since the tenant's
  // last committed cut (see SealTenantCheckpointSections).  1 (the default)
  // makes every commit full — the pre-delta behavior.  The first commit
  // after process start or restore is always full, so a delta chain never
  // lacks an on-disk base.  The cadence changes only what is written to the
  // store, never the simulation: resumed output stays byte-identical at
  // every value.
  int checkpoint_full_every{1};
  // References each tenant executes per scheduling slice.
  std::size_t slice_references{256};
  // Cross-tenant admission policy; max_active caps concurrency, the
  // adaptive policies shed it when the aggregate signals say thrashing.
  LoadControlConfig load_control{};
  // Abandon the loop (without flushing) after this many commits — the
  // deterministic kill point the resume tests drive.  Negative: run to
  // completion.
  int stop_after_commits{-1};
  // Rescan the spool between rounds for streaming admission; false is the
  // --drain mode (serve only what was spooled at startup, then exit).
  bool rescan_spool{true};
  // Scheduler lanes: how many threads step active tenants concurrently
  // within one round (0: hardware width).  Every tenant's frames draw
  // backing blocks from one shared lock-free heap through per-lane arenas;
  // the detector feed is buffered per tenant and replayed serially in
  // admission order after the round's barrier, so output is byte-identical
  // at every lane count — lanes=1 runs the pre-lanes serial loop verbatim.
  // Checkpoint commits sit between rounds and stay the natural barrier.
  unsigned lanes{1};
  // Durable-IO seam: every file op the service performs (spool admission,
  // event appends, report writes, checkpoint commits) goes through this Fs
  // (null: the process-wide RealFs).  Tests pass a FaultInjectingFs here.
  Fs* fs{nullptr};
  // Transient IO errors retry with bounded exponential backoff; the backoff
  // burns SERVICE VIRTUAL cycles, so a retried run replays deterministically.
  RetryPolicyConfig io_retry{};
  // When the loop ends with unflushed state (degraded mode), how many times
  // the final flush is re-attempted before exiting degraded-but-alive.
  // Each attempt burns ops, so a transient window that opened during the
  // last round still heals before the daemon gives up.
  int final_flush_attempts{8};
};

struct ServeOutcome {
  bool finished{false};  // false: stopped at stop_after_commits
  std::size_t tenants_completed{0};
  std::size_t tenants_rejected{0};
  std::size_t tenants_resumed{0};
  std::uint64_t commits{0};
  std::vector<std::string> rejected;     // "name: reason", admission order
  std::vector<std::string> quarantined;  // store-recovery reasons

  // Durable-IO health.  A run can finish with degraded=true: every tenant
  // was stepped to completion but the final durable publications never
  // landed (persistent ENOSPC/EIO) — alive, just unable to checkpoint.
  bool degraded{false};
  std::uint64_t io_retries{0};            // transient errors that retried
  std::uint64_t io_giveups{0};            // retry budgets exhausted
  Cycles degraded_cycles{0};              // virtual cycles spent degraded
  std::size_t reports_unwritten{0};       // completed tenants lacking reports
};

class ServiceLoop {
 public:
  // `base_spec.tracer` is ignored: every tenant gets its own tracer.
  ServiceLoop(SystemSpec base_spec, ServeConfig config);

  // Admits, steps, checkpoints, and (unless stopped early) finishes every
  // tenant.  Errors are reserved for environment failures (unwritable
  // output or checkpoint directories); malformed tenants and damaged
  // checkpoints surface in the outcome instead.
  Expected<ServeOutcome, SnapshotError> Run();

 private:
  struct Tenant {
    std::string name;                    // spool file name
    std::uint64_t trace_fingerprint{0};  // fnv64 of the raw spool bytes
    ReferenceTrace trace;
    EventTracer tracer{0};  // unbounded: drained at every commit
    std::unique_ptr<PagedLinearVm> vm;
    std::uint64_t next_ref{0};
    std::uint64_t events_published{0};
    std::uint64_t jsonl_bytes{0};
    SpaceTime last_space_time;  // detector feed watermark
    bool done{false};
    // Shared-storage binding: one block per resident frame, drawn from the
    // service's ConcurrentFixedHeap (through the stepping lane's arena
    // during parallel rounds, directly otherwise).
    std::unique_ptr<LaneFrameBinder> binder;
    // Per-step (cycle delta, stall) pairs buffered by StepSlice on the
    // stepping lane and replayed into the thrashing detector serially, in
    // admission order — the trick that keeps the controller's view, and so
    // every downstream decision, independent of the lane count.
    std::vector<std::pair<Cycles, Cycles>> feed;
    // Section digest of this tenant's last COMMITTED checkpoint — the
    // baseline the next delta cut diffs against.  Empty (no baseline) until
    // the first successful commit, and after restore: the first commit of a
    // process is always full.
    SectionBaseline baseline;
  };

  std::string EventsPath(const Tenant& t) const;
  std::string ReportPath(const Tenant& t) const;

  // Sorted spool scan; admits unseen files, records rejections.
  Status<SnapshotError> AdmitTenants();
  // Builds the tenant's VM (fresh) from the shared spec.
  std::unique_ptr<PagedLinearVm> BuildVm(Tenant* t);
  // Applies the recovered cut; on semantic mismatch falls back to a fresh
  // start (recording why) rather than resuming a partial state.
  void RestoreCut(CheckpointStore::Recovered* recovered);

  void RunSlice(Tenant* t);
  // The two halves of RunSlice for concurrent rounds: StepSlice is
  // parallel-safe (touches only tenant-owned state plus the lock-free
  // heap), ReplayFeed is serial-only (service clock + detector).
  void StepSlice(Tenant* t);
  void ReplayFeed(Tenant* t);
  Status<SnapshotError> FinishTenant(Tenant* t);
  Status<SnapshotError> AppendPendingEvents(Tenant* t);
  Status<SnapshotError> CommitCut();
  void DecideConcurrency(const std::vector<Tenant*>& steppable);
  Status<SnapshotError> WriteServiceReport();

  // Degraded-mode machinery.  AttemptFlush tries every pending durable
  // publication — reports of simulation-complete tenants, then the
  // checkpoint cut.  A failure enters degraded mode (kServiceDegraded,
  // tenants keep stepping, the next cadence re-attempts); a success while
  // degraded re-arms (kServiceRecovered, degraded_cycles folded).
  bool AttemptFlush();
  void NoteIoFailure(const SnapshotError& error);
  void NoteIoRecovered();
  // Copies the IO health counters into outcome_; called before every return.
  void FillIoOutcome();
  // IO.txt + IO.events.jsonl, written only when IO was ever disturbed so a
  // zero-fault run's output tree stays byte-identical to the pre-seam one.
  void WriteIoReport();

  std::string BuildSvcMember() const;
  // Parses the svc member against the current spool; false (with reason)
  // demands a fresh start.
  bool LoadSvcMember(std::string_view sealed, std::string* reason);

  SystemSpec spec_;
  ServeConfig config_;
  std::uint64_t spec_fingerprint_;
  // The IO chain, declared before store_ so the store can commit through
  // it: raw seam (config or RealFs) wrapped by the retry decorator, whose
  // backoff advances service_clock_ and whose counts land in io_stats_.
  IoStats io_stats_;
  RetryingFs io_;
  CheckpointStore store_;
  LoadController controller_;

  // Shared storage for every tenant's frames; declared before tenants_ so
  // tenant binders release their blocks before the heap dies.  The heap
  // grows by one tenant's frame demand at each admission (a serial point),
  // seeded with the slack lanes can strand in arena caches.
  unsigned lanes_;
  std::size_t tenant_frames_;
  ConcurrentFixedHeap heap_;
  std::deque<LaneArena> arenas_;  // one per lane; pinned in place
  std::unique_ptr<ThreadPool> pool_;  // created when lanes_ > 1

  std::vector<std::unique_ptr<Tenant>> tenants_;  // admission order
  std::vector<std::string> seen_;                 // admitted + rejected names
  ServeOutcome outcome_;
  MetricsRegistry aggregate_;

  Cycles service_clock_{0};
  Cycles last_commit_clock_{0};
  // Successful commits this PROCESS (deliberately not checkpointed): the
  // full/delta cadence counts from process start, so commit 0 — the first
  // after a start or restore — is always a full cut.
  std::uint64_t commit_seq_{0};
  std::size_t concurrency_{1};
  bool shed_since_start_{false};

  // Degraded-mode state.  degraded_ itself is never checkpointed: a restart
  // begins healthy and re-degrades on its own evidence if IO is still down.
  bool degraded_{false};
  Cycles degraded_since_{0};
  Cycles degraded_cycles_{0};
  // Cadence watermark for flush ATTEMPTS (successes move last_commit_clock_
  // as before) — a degraded service re-attempts once per cadence, not once
  // per round.
  Cycles last_flush_attempt_clock_{0};
  EventTracer io_tracer_{0};  // kServiceDegraded / kServiceRecovered stream
};

}  // namespace dsa

#endif  // SRC_SERVE_SERVICE_H_
