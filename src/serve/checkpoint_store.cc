#include "src/serve/checkpoint_store.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "src/core/assert.h"

namespace dsa {

namespace {

struct ManifestEntry {
  std::string name;
  std::uint64_t gen{0};
  bool delta{false};
  std::uint64_t bytes{0};
  std::uint64_t checksum{0};
};

struct Manifest {
  std::uint64_t generation{0};
  std::uint64_t base_generation{0};
  // name -> entries in ascending generation order (the manifest's own order).
  std::map<std::string, std::vector<ManifestEntry>> entries;
};

Expected<std::uint64_t, SnapshotError> ParseCountLine(const std::string& line,
                                                      const char* prefix,
                                                      const char* what) {
  const std::size_t n = std::strlen(prefix);
  if (line.rfind(prefix, 0) != 0) {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                        std::string("manifest ") + what + " line missing"});
  }
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(line.c_str() + n, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0) {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                        std::string("manifest ") + what + " unparseable"});
  }
  return value;
}

// Strict parse of the store's own format; anything else is a typed error.
// Structural invariants enforced here so Recover can trust the shape: per
// member, generations strictly increase, everything older than the last
// full link sits exactly at the base generation (the fallback entry), the
// base-generation entry is a full link, and the last link is either at the
// current generation (a current-cut member) or the lone fallback entry (a
// member that has since left the cut).
Expected<Manifest, SnapshotError> ParseManifest(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "DSAMANIFEST 2") {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadMagic,
                                        "manifest header is not DSAMANIFEST 2"});
  }
  Manifest manifest;
  if (!std::getline(in, line)) {
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kBadValue, "manifest generation line missing"});
  }
  if (auto gen = ParseCountLine(line, "gen ", "generation"); !gen.has_value()) {
    return MakeUnexpected(gen.error());
  } else {
    manifest.generation = gen.value();
  }
  if (!std::getline(in, line)) {
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kBadValue, "manifest base line missing"});
  }
  if (auto base = ParseCountLine(line, "base ", "base generation"); !base.has_value()) {
    return MakeUnexpected(base.error());
  } else {
    manifest.base_generation = base.value();
  }
  if (manifest.base_generation > manifest.generation) {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                        "manifest base generation exceeds generation"});
  }
  bool sealed = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      sealed = true;
      break;
    }
    std::istringstream fields(line);
    std::string tag;
    ManifestEntry entry;
    std::string kind;
    std::string checksum_hex;
    if (!(fields >> tag >> entry.name >> entry.gen >> kind >> entry.bytes >> checksum_hex) ||
        tag != "member" || (kind != "f" && kind != "d")) {
      return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                          "manifest member line unparseable: " + line});
    }
    entry.delta = kind == "d";
    char* end = nullptr;
    entry.checksum = std::strtoull(checksum_hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || checksum_hex.size() != 16) {
      return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                          "manifest checksum unparseable: " + line});
    }
    if (entry.gen < manifest.base_generation || entry.gen > manifest.generation) {
      return MakeUnexpected(SnapshotError{
          SnapshotErrorKind::kBadValue, "manifest entry generation out of range: " + line});
    }
    manifest.entries[entry.name].push_back(std::move(entry));
  }
  if (!sealed) {
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kTruncated, "manifest missing its end marker"});
  }
  for (const auto& [name, links] : manifest.entries) {
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (i > 0 && links[i].gen <= links[i - 1].gen) {
        return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                            "manifest chain out of order for " + name});
      }
      if (links[i].gen == manifest.base_generation && links[i].delta) {
        return MakeUnexpected(SnapshotError{
            SnapshotErrorKind::kBadValue, "base-generation entry is a delta for " + name});
      }
    }
    std::size_t last_full = links.size();
    for (std::size_t i = links.size(); i-- > 0;) {
      if (!links[i].delta) {
        last_full = i;
        break;
      }
    }
    if (last_full == links.size()) {
      return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                          "manifest chain has no full link for " + name});
    }
    for (std::size_t i = 0; i < last_full; ++i) {
      if (links[i].gen != manifest.base_generation) {
        return MakeUnexpected(
            SnapshotError{SnapshotErrorKind::kBadValue,
                          "pre-chain entry off the base generation for " + name});
      }
    }
    const bool current = links.back().gen == manifest.generation;
    const bool fallback_only = links.size() == 1 && !links[0].delta &&
                               links[0].gen == manifest.base_generation;
    if (!current && !fallback_only) {
      return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                          "manifest chain neither current nor fallback for " +
                                              name});
    }
  }
  return manifest;
}

std::string RenderMemberLine(const std::string& name, std::uint64_t gen, bool delta,
                             std::uint64_t bytes, std::uint64_t checksum) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 " %c %" PRIu64 " %016" PRIx64 "\n", gen,
                delta ? 'd' : 'f', bytes, checksum);
  return "member " + name + buf;
}

// Validates one committed member file against its manifest record AND the
// snapshot container's own header, so a mismatch is caught whichever record
// was damaged.
Status<SnapshotError> ValidateMember(Fs* fs, const std::string& path, std::uint64_t bytes,
                                     std::uint64_t checksum, std::string* bytes_out) {
  auto content = ReadFileBytes(fs, path);
  if (!content.has_value()) {
    return MakeUnexpected(content.error());
  }
  if (content->size() != bytes) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kTruncated, "member size disagrees with the manifest: " + path});
  }
  if (Fnv64(*content) != checksum) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kBadChecksum,
        "member content does not hash to the manifest checksum: " + path});
  }
  SnapshotReader reader(*content);
  if (!reader.ok()) {
    SnapshotError error = reader.error();
    error.detail += ": " + path;
    return MakeUnexpected(error);
  }
  *bytes_out = std::move(*content);
  return Ok();
}

}  // namespace

std::string CheckpointStore::ManifestPath() const { return dir_ + "/MANIFEST"; }

std::string CheckpointStore::MemberPath(const std::string& name, std::uint64_t gen) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".%" PRIu64 ".ckpt", gen);
  return dir_ + "/" + name + buf;
}

void CheckpointStore::QuarantineFile(const std::string& path) {
  // Probe for a free evidence name: an earlier damaged cut may already hold
  // `<path>.quarantine`, and clobbering it would destroy the one artifact a
  // post-mortem needs.  Bounded probe; on a pathologically full directory
  // the last candidate wins (best-effort, like the rename itself).
  std::string target = path + ".quarantine";
  for (int suffix = 1; suffix <= 64; ++suffix) {
    auto existing = fs_->FileSize(target);
    if (!existing.has_value() && existing.error().err == ENOENT) {
      break;
    }
    target = path + ".quarantine." + std::to_string(suffix);
  }
  (void)fs_->Rename(path, target);
}

Status<SnapshotError> CheckpointStore::RemoveOrphans(const std::set<std::string>& keep,
                                                     bool strict) {
  auto names = fs_->ListDir(dir_);
  if (!names.has_value()) {
    if (!strict) {
      return Ok();  // the commit already happened; orphans die next Recover
    }
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kIo,
        "cannot scan checkpoint dir " + dir_ + ": " + names.error().Describe()});
  }
  for (const std::string& name : *names) {
    const std::string path = dir_ + "/" + name;
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".ckpt") == 0 &&
        keep.find(path) == keep.end()) {
      (void)fs_->Remove(path);
    }
  }
  return Ok();
}

Expected<CheckpointStore::Recovered, SnapshotError> CheckpointStore::Recover() {
  if (auto created = fs_->CreateDirs(dir_); !created.has_value()) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kIo,
        "cannot create checkpoint dir " + dir_ + ": " + created.error().Describe()});
  }

  Recovered recovered;
  std::set<std::string> keep;  // full paths of files the manifest still owns
  chains_.clear();
  fallback_.clear();

  auto manifest_bytes = fs_->ReadFile(ManifestPath());
  if (!manifest_bytes.has_value() && manifest_bytes.error().err != ENOENT) {
    // A missing manifest means "no committed cut yet"; anything else means
    // the store is unreadable right now — an environment error.
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kIo, manifest_bytes.error().Describe()});
  }
  if (manifest_bytes.has_value()) {
    auto parsed = ParseManifest(*manifest_bytes);
    if (!parsed.has_value()) {
      recovered.quarantined.push_back({ManifestPath(), parsed.error()});
      QuarantineFile(ManifestPath());
    } else {
      const Manifest& manifest = parsed.value();
      const std::uint64_t base = manifest.base_generation;

      // Validate every manifest entry's file exactly once.
      struct CheckedEntry {
        const ManifestEntry* entry{nullptr};
        bool valid{false};
        std::string bytes;
        SnapshotError error;
      };
      std::map<std::pair<std::string, std::uint64_t>, CheckedEntry> checked;
      for (const auto& [name, links] : manifest.entries) {
        for (const ManifestEntry& entry : links) {
          CheckedEntry c;
          c.entry = &entry;
          const std::string path = MemberPath(name, entry.gen);
          if (auto status =
                  ValidateMember(fs_, path, entry.bytes, entry.checksum, &c.bytes);
              !status.has_value()) {
            c.error = status.error();
          } else {
            c.valid = true;
          }
          checked.emplace(std::make_pair(name, entry.gen), std::move(c));
        }
      }
      auto entry_path = [&](const std::string& name, std::uint64_t gen) {
        return MemberPath(name, gen);
      };

      // The current cut: every member whose chain ends at the manifest
      // generation; its restore chain is the suffix from the last full link.
      bool current_ok = true;
      for (const auto& [name, links] : manifest.entries) {
        if (links.back().gen != manifest.generation) {
          continue;  // fallback-only entry, not part of the current cut
        }
        std::size_t head = 0;
        for (std::size_t i = links.size(); i-- > 0;) {
          if (!links[i].delta) {
            head = i;
            break;
          }
        }
        for (std::size_t i = head; i < links.size(); ++i) {
          const CheckedEntry& c = checked.at({name, links[i].gen});
          if (!c.valid) {
            recovered.quarantined.push_back({entry_path(name, links[i].gen), c.error});
            current_ok = false;
          }
        }
      }

      if (current_ok) {
        recovered.generation = manifest.generation;
        recovered.base_generation = base;
        for (const auto& [name, links] : manifest.entries) {
          const bool current = links.back().gen == manifest.generation;
          std::size_t head = 0;
          for (std::size_t i = links.size(); i-- > 0;) {
            if (!links[i].delta) {
              head = i;
              break;
            }
          }
          for (std::size_t i = 0; i < links.size(); ++i) {
            const CheckedEntry& c = checked.at({name, links[i].gen});
            if (i < head || !current) {
              // Fallback insurance (gen-base entries).  A damaged one does
              // not hurt the current cut, but it IS evidence and it means a
              // future fallback will (correctly) refuse; move it aside.
              if (!c.valid) {
                recovered.quarantined.push_back({entry_path(name, links[i].gen), c.error});
                QuarantineFile(entry_path(name, links[i].gen));
                continue;
              }
              fallback_[name] =
                  Link{links[i].gen, false, links[i].bytes, links[i].checksum};
              keep.insert(entry_path(name, links[i].gen));
              continue;
            }
            recovered.members[name].push_back(c.bytes);
            chains_[name].push_back(
                Link{links[i].gen, links[i].delta, links[i].bytes, links[i].checksum});
            keep.insert(entry_path(name, links[i].gen));
            if (links[i].gen == base && !links[i].delta) {
              fallback_[name] =
                  Link{links[i].gen, false, links[i].bytes, links[i].checksum};
            }
          }
        }
      } else if (manifest.generation == base) {
        // The damaged cut IS the last full cut: nothing to fall back to.
        // Quarantine everything the manifest names, plus the manifest.
        recovered.members.clear();
        for (const auto& [name, links] : manifest.entries) {
          for (const ManifestEntry& entry : links) {
            QuarantineFile(entry_path(name, entry.gen));
          }
        }
        QuarantineFile(ManifestPath());
        recovered.generation = 0;
        recovered.base_generation = 0;
      } else {
        // A link newer than the base is damaged: the whole chain — the
        // whole cut — is suspect.  Quarantine every post-base file and
        // retreat to the base full cut, whose entries must all validate.
        for (const auto& [name, links] : manifest.entries) {
          for (const ManifestEntry& entry : links) {
            if (entry.gen != base) {
              QuarantineFile(entry_path(name, entry.gen));
            }
          }
        }
        bool fallback_ok = true;
        for (const auto& [name, links] : manifest.entries) {
          for (const ManifestEntry& entry : links) {
            if (entry.gen != base) {
              continue;
            }
            const CheckedEntry& c = checked.at({name, entry.gen});
            if (!c.valid) {
              recovered.quarantined.push_back({entry_path(name, entry.gen), c.error});
              fallback_ok = false;
            }
          }
        }
        if (fallback_ok) {
          recovered.generation = base;
          recovered.base_generation = base;
          recovered.fell_back = true;
          for (const auto& [name, links] : manifest.entries) {
            for (const ManifestEntry& entry : links) {
              if (entry.gen != base) {
                continue;
              }
              const CheckedEntry& c = checked.at({name, entry.gen});
              recovered.members[name].push_back(c.bytes);
              const Link link{base, false, entry.bytes, entry.checksum};
              chains_[name] = {link};
              fallback_[name] = link;
              keep.insert(entry_path(name, entry.gen));
            }
          }
          // Re-point the manifest at the fallback cut atomically, so the
          // decision is durable: a crash right here re-runs the same
          // recovery, a crash after sees a plain full cut at gen `base`.
          std::string text = "DSAMANIFEST 2\n";
          char buf[64];
          std::snprintf(buf, sizeof(buf), "gen %" PRIu64 "\nbase %" PRIu64 "\n", base, base);
          text += buf;
          for (const auto& [name, link] : fallback_) {
            text += RenderMemberLine(name, link.gen, link.delta, link.bytes, link.checksum);
          }
          text += "end\n";
          if (auto status = WriteFileAtomic(fs_, ManifestPath(), text); !status.has_value()) {
            return MakeUnexpected(status.error());
          }
        } else {
          // Fallback damaged too: the store holds nothing restorable.
          recovered.members.clear();
          chains_.clear();
          fallback_.clear();
          for (const auto& [name, links] : manifest.entries) {
            for (const ManifestEntry& entry : links) {
              if (entry.gen == base) {
                QuarantineFile(entry_path(name, entry.gen));
              }
            }
          }
          QuarantineFile(ManifestPath());
          recovered.generation = 0;
          recovered.base_generation = 0;
        }
      }
    }
  }

  // Member files outside the committed cut are leftovers of a crashed
  // commit (written before the manifest rename) — remove them.
  if (auto status = RemoveOrphans(keep, /*strict=*/true); !status.has_value()) {
    return MakeUnexpected(status.error());
  }

  generation_ = recovered.generation;
  base_generation_ = recovered.base_generation;
  if (recovered.generation == 0) {
    chains_.clear();
    fallback_.clear();
  }
  recovered_ = true;
  return recovered;
}

void CheckpointStore::Stage(const std::string& name, std::string sealed) {
  staged_[name] = StagedMember{std::move(sealed), /*delta=*/false};
}

void CheckpointStore::StageDelta(const std::string& name, std::string sealed) {
  staged_[name] = StagedMember{std::move(sealed), /*delta=*/true};
}

Status<SnapshotError> CheckpointStore::Commit(CutKind kind) {
  DSA_ASSERT(recovered_, "CheckpointStore::Commit before Recover");
  const std::uint64_t new_gen = generation_ + 1;
  // The very first commit has no chains to extend: promote to full.
  const bool delta_cut = kind == CutKind::kDelta && base_generation_ > 0;
  for (const auto& [name, member] : staged_) {
    if (!member.delta) {
      continue;
    }
    if (!delta_cut) {
      return MakeUnexpected(
          SnapshotError{SnapshotErrorKind::kBadValue,
                        "delta-staged member '" + name + "' outside a delta cut"});
    }
    if (chains_.find(name) == chains_.end()) {
      return MakeUnexpected(
          SnapshotError{SnapshotErrorKind::kBadValue,
                        "delta staged for '" + name + "' with no committed chain"});
    }
  }
  for (const auto& [name, member] : staged_) {
    if (auto status = WriteFileAtomic(fs_, MemberPath(name, new_gen), member.sealed);
        !status.has_value()) {
      return status;
    }
  }

  std::map<std::string, std::vector<Link>> chains;
  std::map<std::string, Link> fallback;
  std::uint64_t base = 0;
  if (!delta_cut) {
    base = new_gen;
    for (const auto& [name, member] : staged_) {
      const Link link{new_gen, false, member.sealed.size(), Fnv64(member.sealed)};
      chains[name] = {link};
      fallback[name] = link;
    }
  } else {
    base = base_generation_;
    fallback = fallback_;
    for (const auto& [name, member] : staged_) {
      const Link link{new_gen, member.delta, member.sealed.size(), Fnv64(member.sealed)};
      if (member.delta) {
        chains[name] = chains_.at(name);
        chains[name].push_back(link);
      } else {
        chains[name] = {link};
      }
    }
  }

  // Render: per member, the union of its fallback entry and chain links,
  // deduplicated by generation (a chain head at the base IS the fallback).
  std::string text = "DSAMANIFEST 2\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "gen %" PRIu64 "\nbase %" PRIu64 "\n", new_gen, base);
  text += buf;
  std::set<std::string> keep;
  std::set<std::string> names;
  for (const auto& [name, link] : fallback) {
    names.insert(name);
  }
  for (const auto& [name, links] : chains) {
    names.insert(name);
  }
  for (const std::string& name : names) {
    std::map<std::uint64_t, Link> by_gen;
    if (auto it = fallback.find(name); it != fallback.end()) {
      by_gen[it->second.gen] = it->second;
    }
    if (auto it = chains.find(name); it != chains.end()) {
      for (const Link& link : it->second) {
        by_gen[link.gen] = link;
      }
    }
    for (const auto& [gen, link] : by_gen) {
      text += RenderMemberLine(name, gen, link.delta, link.bytes, link.checksum);
      keep.insert(MemberPath(name, gen));
    }
  }
  text += "end\n";

  // The manifest rename is the commit point: before it the new files are
  // orphans, after it the no-longer-referenced old links are.
  if (auto status = WriteFileAtomic(fs_, ManifestPath(), text); !status.has_value()) {
    return status;
  }
  (void)RemoveOrphans(keep, /*strict=*/false);
  generation_ = new_gen;
  base_generation_ = base;
  chains_ = std::move(chains);
  fallback_ = std::move(fallback);
  staged_.clear();
  return Ok();
}

}  // namespace dsa
