#include "src/serve/checkpoint_store.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "src/core/assert.h"

namespace dsa {

namespace {

struct ManifestEntry {
  std::string name;
  std::uint64_t bytes{0};
  std::uint64_t checksum{0};
};

struct Manifest {
  std::uint64_t generation{0};
  std::vector<ManifestEntry> entries;
};

// Strict parse of the store's own format; anything else is a typed error.
Expected<Manifest, SnapshotError> ParseManifest(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "DSAMANIFEST 1") {
    return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadMagic,
                                        "manifest header is not DSAMANIFEST 1"});
  }
  if (!std::getline(in, line) || line.rfind("gen ", 0) != 0) {
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kBadValue, "manifest generation line missing"});
  }
  Manifest manifest;
  char* end = nullptr;
  manifest.generation = std::strtoull(line.c_str() + 4, &end, 10);
  if (end == nullptr || *end != '\0' || manifest.generation == 0) {
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kBadValue, "manifest generation unparseable"});
  }
  bool sealed = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      sealed = true;
      break;
    }
    std::istringstream fields(line);
    std::string tag;
    ManifestEntry entry;
    std::string checksum_hex;
    if (!(fields >> tag >> entry.name >> entry.bytes >> checksum_hex) || tag != "member") {
      return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                          "manifest member line unparseable: " + line});
    }
    entry.checksum = std::strtoull(checksum_hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || checksum_hex.size() != 16) {
      return MakeUnexpected(SnapshotError{SnapshotErrorKind::kBadValue,
                                          "manifest checksum unparseable: " + line});
    }
    manifest.entries.push_back(std::move(entry));
  }
  if (!sealed) {
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kTruncated, "manifest missing its end marker"});
  }
  return manifest;
}

std::string RenderManifest(std::uint64_t generation,
                           const std::map<std::string, std::string>& members) {
  std::string text = "DSAMANIFEST 1\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "gen %" PRIu64 "\n", generation);
  text += buf;
  for (const auto& [name, sealed] : members) {
    std::snprintf(buf, sizeof(buf), " %zu %016" PRIx64 "\n", sealed.size(), Fnv64(sealed));
    text += "member " + name + buf;
  }
  text += "end\n";
  return text;
}

// Validates one committed member against its manifest entry AND the
// snapshot container's own header, so a mismatch is caught whichever record
// was damaged.
Status<SnapshotError> ValidateMember(Fs* fs, const std::string& path,
                                     const ManifestEntry& entry, std::string* bytes_out) {
  auto bytes = ReadFileBytes(fs, path);
  if (!bytes.has_value()) {
    return MakeUnexpected(bytes.error());
  }
  if (bytes->size() != entry.bytes) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kTruncated, "member size disagrees with the manifest: " + path});
  }
  if (Fnv64(*bytes) != entry.checksum) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kBadChecksum,
        "member content does not hash to the manifest checksum: " + path});
  }
  SnapshotReader reader(*bytes);
  if (!reader.ok()) {
    SnapshotError error = reader.error();
    error.detail += ": " + path;
    return MakeUnexpected(error);
  }
  *bytes_out = std::move(*bytes);
  return Ok();
}

}  // namespace

std::string CheckpointStore::ManifestPath() const { return dir_ + "/MANIFEST"; }

std::string CheckpointStore::MemberPath(const std::string& name, std::uint64_t gen) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".%" PRIu64 ".ckpt", gen);
  return dir_ + "/" + name + buf;
}

void CheckpointStore::QuarantineFile(const std::string& path) {
  (void)fs_->Rename(path, path + ".quarantine");
}

Status<SnapshotError> CheckpointStore::RemoveOrphans(const std::set<std::string>& keep,
                                                     bool strict) {
  auto names = fs_->ListDir(dir_);
  if (!names.has_value()) {
    if (!strict) {
      return Ok();  // the commit already happened; orphans die next Recover
    }
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kIo,
        "cannot scan checkpoint dir " + dir_ + ": " + names.error().Describe()});
  }
  for (const std::string& name : *names) {
    const std::string path = dir_ + "/" + name;
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".ckpt") == 0 &&
        keep.find(path) == keep.end()) {
      (void)fs_->Remove(path);
    }
  }
  return Ok();
}

Expected<CheckpointStore::Recovered, SnapshotError> CheckpointStore::Recover() {
  if (auto created = fs_->CreateDirs(dir_); !created.has_value()) {
    return MakeUnexpected(SnapshotError{
        SnapshotErrorKind::kIo,
        "cannot create checkpoint dir " + dir_ + ": " + created.error().Describe()});
  }

  Recovered recovered;
  bool cut_valid = false;
  std::set<std::string> keep;  // full paths of validated current-gen members

  auto manifest_bytes = fs_->ReadFile(ManifestPath());
  if (!manifest_bytes.has_value() && manifest_bytes.error().err != ENOENT) {
    // A missing manifest means "no committed cut yet"; anything else means
    // the store is unreadable right now — an environment error.
    return MakeUnexpected(
        SnapshotError{SnapshotErrorKind::kIo, manifest_bytes.error().Describe()});
  }
  if (manifest_bytes.has_value()) {
    auto manifest = ParseManifest(*manifest_bytes);
    if (!manifest.has_value()) {
      recovered.quarantined.push_back({ManifestPath(), manifest.error()});
    } else {
      cut_valid = true;
      for (const ManifestEntry& entry : manifest->entries) {
        const std::string path = MemberPath(entry.name, manifest->generation);
        std::string bytes;
        if (auto status = ValidateMember(fs_, path, entry, &bytes); !status.has_value()) {
          recovered.quarantined.push_back({path, status.error()});
          cut_valid = false;
        } else {
          recovered.members[entry.name] = std::move(bytes);
        }
      }
      if (cut_valid) {
        recovered.generation = manifest->generation;
        for (const ManifestEntry& entry : manifest->entries) {
          keep.insert(MemberPath(entry.name, manifest->generation));
        }
      } else {
        // One damaged member invalidates the whole cut: restoring a partial
        // cut would desynchronize the tenants from the service state.
        recovered.members.clear();
        for (const ManifestEntry& entry : manifest->entries) {
          QuarantineFile(MemberPath(entry.name, manifest->generation));
        }
      }
    }
    if (!cut_valid) {
      QuarantineFile(ManifestPath());
      recovered.generation = 0;
    }
  }

  // Member files outside the committed cut are leftovers of a crashed
  // commit (written before the manifest rename) — remove them.
  if (auto status = RemoveOrphans(keep, /*strict=*/true); !status.has_value()) {
    return MakeUnexpected(status.error());
  }

  generation_ = recovered.generation;
  recovered_ = true;
  return recovered;
}

void CheckpointStore::Stage(const std::string& name, std::string sealed) {
  staged_[name] = std::move(sealed);
}

Status<SnapshotError> CheckpointStore::Commit() {
  DSA_ASSERT(recovered_, "CheckpointStore::Commit before Recover");
  const std::uint64_t new_gen = generation_ + 1;
  for (const auto& [name, sealed] : staged_) {
    if (auto status = WriteFileAtomic(fs_, MemberPath(name, new_gen), sealed);
        !status.has_value()) {
      return status;
    }
  }
  // The manifest rename is the commit point: before it the new files are
  // orphans, after it the old files are.
  if (auto status =
          WriteFileAtomic(fs_, ManifestPath(), RenderManifest(new_gen, staged_));
      !status.has_value()) {
    return status;
  }
  std::set<std::string> keep;
  for (const auto& [name, sealed] : staged_) {
    keep.insert(MemberPath(name, new_gen));
  }
  (void)RemoveOrphans(keep, /*strict=*/false);
  generation_ = new_gen;
  staged_.clear();
  return Ok();
}

}  // namespace dsa
