// Per-tenant checkpoint sealing: a tenant checkpoint is one snapshot
// container (src/core/snapshot.h) holding the tenant's identity, its
// progress through the trace, the byte offset of its published event JSONL
// prefix, and the complete PagedLinearVm state.
//
// Identity is a pair of fingerprints: one over the system spec (so a
// checkpoint taken under a different configuration is rejected instead of
// silently restored into the wrong machine) and one over the raw trace
// bytes (so a checkpoint cannot resume against an edited workload).  Both
// are fnv64 over canonical renderings, platform-independent by
// construction.

#ifndef SRC_SERVE_CHECKPOINT_H_
#define SRC_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/snapshot.h"
#include "src/vm/paged_vm.h"
#include "src/vm/system_builder.h"

namespace dsa {

// Identity and progress of one tenant at a checkpoint cut.
struct TenantCheckpointMeta {
  std::string tenant;                   // spool file name
  std::uint64_t spec_fingerprint{0};    // SpecFingerprint of the serving spec
  std::uint64_t trace_fingerprint{0};   // fnv64 of the raw spool file bytes
  std::uint64_t trace_size{0};          // reference count (cheap sanity)
  std::uint64_t next_ref{0};            // index of the next reference to step
  std::uint64_t events_published{0};    // events already in the tenant JSONL
  std::uint64_t jsonl_bytes{0};         // byte length of the published prefix
};

// fnv64 over a canonical rendering of every spec field the paged family
// consumes.  Two specs with equal fingerprints build identical systems.
std::uint64_t SpecFingerprint(const SystemSpec& spec);

// Meta + full VM state, sealed into one snapshot container.
std::string SealTenantCheckpoint(const TenantCheckpointMeta& meta, const PagedLinearVm& vm);

// Loads `sealed` into `vm`, which must be freshly Reset() and built from
// the spec whose fingerprint is `spec_fingerprint`.  Rejects (typed, never
// aborts) container corruption, fingerprint or trace-size mismatches, a
// cursor past the trace end, and trailing payload garbage.
Expected<TenantCheckpointMeta, SnapshotError> OpenTenantCheckpoint(
    std::string_view sealed, std::uint64_t spec_fingerprint,
    std::uint64_t trace_fingerprint, std::uint64_t trace_size, PagedLinearVm* vm);

// --- sectioned (delta-capable) tenant checkpoints ---
// The same meta + VM state, framed as sections: a "meta" section followed by
// the VM's sections (see PagedLinearVm::SaveSections).  With a null
// `baseline` every section is inline (a full cut); with a baseline, sections
// whose content hash matches collapse to refs (a delta cut).  `digest_out`,
// when non-null, receives the cut's section hashes — the baseline for the
// next delta once this cut commits.
std::string SealTenantCheckpointSections(const TenantCheckpointMeta& meta,
                                         const PagedLinearVm& vm,
                                         const SectionBaseline* baseline,
                                         SectionBaseline* digest_out);

// Restores a tenant from a checkpoint chain — links[0] a full sectioned
// seal, later links deltas — with OpenTenantCheckpoint's identity checks
// plus whole-chain validation: a mis-chained delta fails kBadChecksum, an
// unconsumed or missing section fails kBadValue.
Expected<TenantCheckpointMeta, SnapshotError> OpenTenantCheckpointChain(
    const std::vector<std::string>& links, std::uint64_t spec_fingerprint,
    std::uint64_t trace_fingerprint, std::uint64_t trace_size, PagedLinearVm* vm);

}  // namespace dsa

#endif  // SRC_SERVE_CHECKPOINT_H_
