// Multi-tenant batch mode (dsa_sim --batch), factored out of the CLI so the
// regression tests can drive it directly.
//
// Every trace file in the directory runs through its own instance of the
// configured system, sharded --jobs wide over the SweepRunner; reports,
// verification, exports, and the aggregate merge happen after the sweep in
// name order, so the output is byte-identical at any worker count.
//
// A malformed or unreadable spool file is a property of the DATA, not a
// harness failure: the cell is skipped and reported (Expected-typed load),
// the remaining cells still run, and the exit code says which of the two
// happened.

#ifndef SRC_SERVE_BATCH_H_
#define SRC_SERVE_BATCH_H_

#include <string>

#include "src/core/expected.h"
#include "src/core/fsio.h"
#include "src/trace/reference.h"
#include "src/vm/system_builder.h"

namespace dsa {

struct BatchOptions {
  std::string dir;                 // directory of trace files
  unsigned jobs{1};                // sweep width
  std::string event_trace_prefix;  // nonempty: capture + verify per cell
  // Durable-IO seam for the JSONL exports (null: the process-wide RealFs).
  // Exports go through Fs::WriteFileAtomic with the status CHECKED — a full
  // disk is a reported skip and exit 2, never a silent empty file.
  Fs* fs{nullptr};
};

// Why one cell could not run (its trace never loaded).
struct BatchCellError {
  std::string reason;
};

// Reads and parses one spool file; the typed-error half of skip-and-report.
Expected<ReferenceTrace, BatchCellError> LoadBatchTrace(const std::string& path);

// Exit-code semantics:
//   0  every cell ran (and verified, when capturing)
//   1  a captured event stream failed the replay verifier
//   2  directory/config errors (nothing ran) or an export could not be written
//   3  some cells were rejected (skipped); every loadable cell still ran
int RunBatch(const SystemSpec& base_spec, const BatchOptions& options);

}  // namespace dsa

#endif  // SRC_SERVE_BATCH_H_
