// The ring-buffered event tracer.
//
// One EventTracer is shared by every component of a system under
// observation (pager, frame table, allocator, scheduler).  The engine
// drivers advance the tracer's clock to the simulated time of the reference
// being executed; components then emit time-free records which the tracer
// stamps.  Because drivers only ever move their clocks forward, a captured
// stream is monotone by construction — the first invariant the
// TraceReplayVerifier checks.
//
// Storage is a fixed-capacity ring (capacity 0 = unbounded, for golden
// captures): when full, the oldest record is overwritten and counted in
// dropped().  A sink callback, when attached, sees every event at emission
// time regardless of ring capacity, so streams longer than memory can be
// exported incrementally.

#ifndef SRC_OBS_TRACER_H_
#define SRC_OBS_TRACER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/obs/event.h"

namespace dsa {

class EventTracer {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  static constexpr std::size_t kDefaultCapacity = 1u << 14;

  // `capacity` bounds the retained ring; 0 retains everything.
  explicit EventTracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {
    if (capacity_ != 0) {
      ring_.reserve(capacity_);
    }
  }

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Forwarded every event at emission time (may be empty).
  void SetSink(Sink sink) { sink_ = std::move(sink); }

  // Moves the stamp clock forward to `now`; never backwards, so interleaved
  // emitters (multiprogrammed jobs) cannot produce a non-monotone stream.
  void AdvanceClock(Cycles now) {
    if (now > now_) {
      now_ = now;
    }
  }
  Cycles now() const { return now_; }

  void Emit(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0);

  // All retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Forgets retained events and counters; the clock keeps its watermark.
  void Clear() {
    ring_.clear();
    head_ = 0;
    emitted_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  bool enabled_{true};
  Cycles now_{0};
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};  // index of the oldest element once the ring wrapped
  std::uint64_t emitted_{0};
  std::uint64_t dropped_{0};
  Sink sink_;
};

}  // namespace dsa

#endif  // SRC_OBS_TRACER_H_
