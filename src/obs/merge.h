// Order-independent merging of per-cell observability outputs.
//
// A parallel sweep gives every cell its own MetricsRegistry and EventTracer
// (shared mutable observers would make the captured streams depend on
// scheduling).  After the sweep, per-cell outputs are folded together by
// these helpers, always in cell-index order — so the merged result is a
// pure function of the per-cell results, and the per-cell results are pure
// functions of their seeds.  Completion order never appears anywhere.

#ifndef SRC_OBS_MERGE_H_
#define SRC_OBS_MERGE_H_

#include <vector>

#include "src/obs/event.h"
#include "src/obs/metrics.h"

namespace dsa {

// Folds `from` into `into`: counters add, histograms add bin-wise, gauges
// take `from`'s value (last merged in index order wins — gauges are
// point-in-time readings with no meaningful sum; merge-order determinism
// comes from the caller folding cells 0..n-1 in order).  Names absent from
// `into` are registered in `from`'s registration order, so folding the
// same cells in the same order always yields a byte-identical RenderTable.
void MergeRegistryInto(MetricsRegistry* into, const MetricsRegistry& from);

// Merges per-cell event streams into one stream ordered by (time, cell
// index), preserving intra-cell order.  Each input must be monotone in
// time (the tracer's watermark clock guarantees this); the tiebreak on the
// cell index makes the merge a pure function of the inputs, independent of
// how the cells were scheduled.
std::vector<TraceEvent> MergeEventStreams(const std::vector<std::vector<TraceEvent>>& streams);

}  // namespace dsa

#endif  // SRC_OBS_MERGE_H_
