// Order-independent merging of per-cell observability outputs.
//
// A parallel sweep gives every cell its own MetricsRegistry and EventTracer
// (shared mutable observers would make the captured streams depend on
// scheduling).  After the sweep, per-cell outputs are folded together by
// these helpers, always in cell-index order — so the merged result is a
// pure function of the per-cell results, and the per-cell results are pure
// functions of their seeds.  Completion order never appears anywhere.

#ifndef SRC_OBS_MERGE_H_
#define SRC_OBS_MERGE_H_

#include <vector>

#include "src/obs/event.h"
#include "src/obs/metrics.h"

namespace dsa {

// Folds `from` into `into`: counters add, histograms add bin-wise, gauges
// take `from`'s value (last merged in index order wins — gauges are
// point-in-time readings with no meaningful sum; merge-order determinism
// comes from the caller folding cells 0..n-1 in order).  Names absent from
// `into` are registered in `from`'s registration order, so folding the
// same cells in the same order always yields a byte-identical RenderTable.
void MergeRegistryInto(MetricsRegistry* into, const MetricsRegistry& from);

// Merges per-cell event streams into one stream ordered by (time, cell
// index), preserving intra-cell order.  Each input must be monotone in
// time (the tracer's watermark clock guarantees this); the tiebreak on the
// cell index makes the merge a pure function of the inputs, independent of
// how the cells were scheduled.
std::vector<TraceEvent> MergeEventStreams(const std::vector<std::vector<TraceEvent>>& streams);

// Renames the entities of one lane-group's stream into a global namespace
// before a cross-group merge: frame ids shift by `frame_offset`, job ids by
// `job_offset`, and page ids — which pack their owning job above
// `page_job_shift` (MultiprogrammingSimulator::kJobShift) — have the job
// half of the key shifted the same way.  With disjoint offsets per group,
// the merged stream describes one large system (summed frame count,
// concatenated job space) and replays through TraceReplayVerifier as such:
// transfer matching, frame conservation, and the deactivated-job rule all
// see globally unique entities.  Sentinels (kNoJob) are preserved.
struct StreamOffsets {
  std::uint64_t frame_offset{0};
  std::uint64_t job_offset{0};
  unsigned page_job_shift{0};  // 0: page ids carry no job tag; left untouched
};
std::vector<TraceEvent> OffsetEventStream(std::vector<TraceEvent> events,
                                          const StreamOffsets& offsets);

}  // namespace dsa

#endif  // SRC_OBS_MERGE_H_
