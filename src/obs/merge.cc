#include "src/obs/merge.h"

#include <cstddef>

namespace dsa {

void MergeRegistryInto(MetricsRegistry* into, const MetricsRegistry& from) {
  for (const MetricsRegistry::Entry& entry : from.Entries()) {
    switch (entry.kind) {
      case MetricsRegistry::Entry::Kind::kCounter:
        into->GetCounter(entry.name)->Increment(entry.counter->value());
        break;
      case MetricsRegistry::Entry::Kind::kGauge:
        into->GetGauge(entry.name)->Set(entry.gauge->value());
        break;
      case MetricsRegistry::Entry::Kind::kHistogram:
        into->GetHistogram(entry.name)->MergeFrom(*entry.histogram);
        break;
    }
  }
}

std::vector<TraceEvent> MergeEventStreams(
    const std::vector<std::vector<TraceEvent>>& streams) {
  std::size_t total = 0;
  for (const auto& stream : streams) {
    total += stream.size();
  }
  std::vector<TraceEvent> merged;
  merged.reserve(total);

  // K-way merge with the lowest stream index winning ties: K is the cell
  // count of a sweep (small), so a linear scan per output event is fine
  // and keeps the tiebreak rule impossible to get wrong.
  std::vector<std::size_t> cursor(streams.size(), 0);
  while (merged.size() < total) {
    std::size_t best = streams.size();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] >= streams[s].size()) {
        continue;
      }
      if (best == streams.size() ||
          streams[s][cursor[s]].time < streams[best][cursor[best]].time) {
        best = s;
      }
    }
    merged.push_back(streams[best][cursor[best]]);
    ++cursor[best];
  }
  return merged;
}

std::vector<TraceEvent> OffsetEventStream(std::vector<TraceEvent> events,
                                          const StreamOffsets& offsets) {
  const auto page = [&](std::uint64_t p) {
    if (offsets.page_job_shift == 0) {
      return p;
    }
    const std::uint64_t job = p >> offsets.page_job_shift;
    const std::uint64_t low = p & ((std::uint64_t{1} << offsets.page_job_shift) - 1);
    return ((job + offsets.job_offset) << offsets.page_job_shift) | low;
  };
  const auto job = [&](std::uint64_t j) {
    return j == kNoJob ? j : j + offsets.job_offset;
  };
  const auto frame = [&](std::uint64_t f) { return f + offsets.frame_offset; };

  for (TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kPageFault:
      case EventKind::kTransferStart:
      case EventKind::kTransferComplete:
      case EventKind::kPageDemoted:
      case EventKind::kFaultRecovery:
        e.a = page(e.a);
        break;
      case EventKind::kVictimChosen:
      case EventKind::kFrameLoad:
      case EventKind::kFrameEvict:
        e.a = page(e.a);
        e.b = frame(e.b);
        break;
      case EventKind::kFrameRetire:
        e.a = frame(e.a);
        break;
      case EventKind::kScheduleSwitch:
        e.a = job(e.a);
        e.b = job(e.b);
        break;
      case EventKind::kJobDeactivate:
      case EventKind::kJobReactivate:
        e.a = job(e.a);
        break;
      case EventKind::kLoadControl:
        e.b = job(e.b);
        break;
      case EventKind::kSegmentFault:
      case EventKind::kAlloc:
      case EventKind::kFree:
      case EventKind::kCompaction:
      case EventKind::kSizeClassMiss:
      case EventKind::kDeferredCoalesce:
      case EventKind::kServiceDegraded:
      case EventKind::kServiceRecovered:
        // No frame/page/job entities in the payload.
        break;
    }
  }
  return events;
}

}  // namespace dsa
