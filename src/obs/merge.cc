#include "src/obs/merge.h"

#include <cstddef>

namespace dsa {

void MergeRegistryInto(MetricsRegistry* into, const MetricsRegistry& from) {
  for (const MetricsRegistry::Entry& entry : from.Entries()) {
    switch (entry.kind) {
      case MetricsRegistry::Entry::Kind::kCounter:
        into->GetCounter(entry.name)->Increment(entry.counter->value());
        break;
      case MetricsRegistry::Entry::Kind::kGauge:
        into->GetGauge(entry.name)->Set(entry.gauge->value());
        break;
      case MetricsRegistry::Entry::Kind::kHistogram:
        into->GetHistogram(entry.name)->MergeFrom(*entry.histogram);
        break;
    }
  }
}

std::vector<TraceEvent> MergeEventStreams(
    const std::vector<std::vector<TraceEvent>>& streams) {
  std::size_t total = 0;
  for (const auto& stream : streams) {
    total += stream.size();
  }
  std::vector<TraceEvent> merged;
  merged.reserve(total);

  // K-way merge with the lowest stream index winning ties: K is the cell
  // count of a sweep (small), so a linear scan per output event is fine
  // and keeps the tiebreak rule impossible to get wrong.
  std::vector<std::size_t> cursor(streams.size(), 0);
  while (merged.size() < total) {
    std::size_t best = streams.size();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] >= streams[s].size()) {
        continue;
      }
      if (best == streams.size() ||
          streams[s][cursor[s]].time < streams[best][cursor[best]].time) {
        best = s;
      }
    }
    merged.push_back(streams[best][cursor[best]]);
    ++cursor[best];
  }
  return merged;
}

}  // namespace dsa
