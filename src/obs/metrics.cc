#include "src/obs/metrics.h"

#include "src/core/assert.h"
#include "src/stats/table.h"

namespace dsa {

MetricsRegistry::Slot* MetricsRegistry::FindOrCreate(const std::string& name,
                                                     Entry::Kind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Slot& slot = entries_[it->second];
    DSA_ASSERT(slot.kind == kind, "metric re-registered as a different kind");
    return &slot;
  }
  index_.emplace(name, entries_.size());
  entries_.push_back(Slot{kind, name, {}, {}, {}});
  return &entries_.back();
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name) {
  return &FindOrCreate(name, Entry::Kind::kCounter)->counter;
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &FindOrCreate(name, Entry::Kind::kGauge)->gauge;
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return &FindOrCreate(name, Entry::Kind::kHistogram)->histogram;
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return 0;
  }
  const Slot& slot = entries_[it->second];
  DSA_ASSERT(slot.kind == Entry::Kind::kCounter, "metric is not a counter");
  return slot.counter.value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return 0.0;
  }
  const Slot& slot = entries_[it->second];
  DSA_ASSERT(slot.kind == Entry::Kind::kGauge, "metric is not a gauge");
  return slot.gauge.value();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const Slot& slot : entries_) {
    Entry entry;
    entry.kind = slot.kind;
    entry.name = slot.name;
    switch (slot.kind) {
      case Entry::Kind::kCounter:
        entry.counter = &slot.counter;
        break;
      case Entry::Kind::kGauge:
        entry.gauge = &slot.gauge;
        break;
      case Entry::Kind::kHistogram:
        entry.histogram = &slot.histogram;
        break;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::string MetricsRegistry::RenderTable(int gauge_digits) const {
  Table table({"metric", "value"});
  for (const Slot& slot : entries_) {
    switch (slot.kind) {
      case Entry::Kind::kCounter:
        table.AddRow().AddCell(slot.name).AddCell(slot.counter.value());
        break;
      case Entry::Kind::kGauge:
        table.AddRow().AddCell(slot.name).AddCell(slot.gauge.value(), gauge_digits);
        break;
      case Entry::Kind::kHistogram:
        break;  // multi-line; rendered via LogHistogram::Render by callers
    }
  }
  return table.Render();
}

}  // namespace dsa
