#include "src/obs/metrics.h"

#include "src/core/assert.h"
#include "src/stats/table.h"

namespace dsa {

MetricsRegistry::Slot* MetricsRegistry::FindOrCreate(const std::string& name,
                                                     Entry::Kind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Slot& slot = entries_[it->second];
    DSA_ASSERT(slot.kind == kind, "metric re-registered as a different kind");
    return &slot;
  }
  index_.emplace(name, entries_.size());
  entries_.push_back(Slot{kind, name, {}, {}, {}});
  return &entries_.back();
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name) {
  return &FindOrCreate(name, Entry::Kind::kCounter)->counter;
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &FindOrCreate(name, Entry::Kind::kGauge)->gauge;
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return &FindOrCreate(name, Entry::Kind::kHistogram)->histogram;
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return 0;
  }
  const Slot& slot = entries_[it->second];
  DSA_ASSERT(slot.kind == Entry::Kind::kCounter, "metric is not a counter");
  return slot.counter.value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return 0.0;
  }
  const Slot& slot = entries_[it->second];
  DSA_ASSERT(slot.kind == Entry::Kind::kGauge, "metric is not a gauge");
  return slot.gauge.value();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const Slot& slot : entries_) {
    Entry entry;
    entry.kind = slot.kind;
    entry.name = slot.name;
    switch (slot.kind) {
      case Entry::Kind::kCounter:
        entry.counter = &slot.counter;
        break;
      case Entry::Kind::kGauge:
        entry.gauge = &slot.gauge;
        break;
      case Entry::Kind::kHistogram:
        entry.histogram = &slot.histogram;
        break;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

void MetricsRegistry::SaveState(SnapshotWriter* w) const {
  w->U64(entries_.size());
  for (const Slot& slot : entries_) {
    w->U8(static_cast<std::uint8_t>(slot.kind));
    w->Str(slot.name);
    switch (slot.kind) {
      case Entry::Kind::kCounter:
        w->U64(slot.counter.value());
        break;
      case Entry::Kind::kGauge:
        w->F64(slot.gauge.value());
        break;
      case Entry::Kind::kHistogram:
        slot.histogram.SaveState(w);
        break;
    }
  }
}

void MetricsRegistry::LoadState(SnapshotReader* r) {
  const std::uint64_t count = r->Count(std::uint64_t{1} << 24);
  for (std::uint64_t i = 0; i < count && r->ok(); ++i) {
    const std::uint8_t raw_kind = r->U8();
    const std::string name = r->Str();
    if (!r->ok()) {
      return;
    }
    if (raw_kind > static_cast<std::uint8_t>(Entry::Kind::kHistogram)) {
      r->Fail(SnapshotErrorKind::kBadValue, "unknown metric kind");
      return;
    }
    const auto kind = static_cast<Entry::Kind>(raw_kind);
    auto it = index_.find(name);
    if (it != index_.end() && entries_[it->second].kind != kind) {
      r->Fail(SnapshotErrorKind::kBadValue, "metric " + name + " changed kind");
      return;
    }
    Slot* slot = FindOrCreate(name, kind);
    switch (kind) {
      case Entry::Kind::kCounter:
        slot->counter.Set(r->U64());
        break;
      case Entry::Kind::kGauge:
        slot->gauge.Set(r->F64());
        break;
      case Entry::Kind::kHistogram:
        slot->histogram.LoadState(r);
        break;
    }
  }
}

std::string MetricsRegistry::RenderTable(int gauge_digits) const {
  Table table({"metric", "value"});
  for (const Slot& slot : entries_) {
    switch (slot.kind) {
      case Entry::Kind::kCounter:
        table.AddRow().AddCell(slot.name).AddCell(slot.counter.value());
        break;
      case Entry::Kind::kGauge:
        table.AddRow().AddCell(slot.name).AddCell(slot.gauge.value(), gauge_digits);
        break;
      case Entry::Kind::kHistogram:
        break;  // multi-line; rendered via LogHistogram::Render by callers
    }
  }
  return table.Render();
}

}  // namespace dsa
