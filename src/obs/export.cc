#include "src/obs/export.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace dsa {

namespace {

void AppendField(std::string* out, const char* name, std::uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", \"%s\": %llu", name,
                static_cast<unsigned long long>(value));
  out->append(buf);
}

}  // namespace

std::string EventToJson(const TraceEvent& event) {
  std::string line;
  char head[96];
  std::snprintf(head, sizeof(head), "{\"t\": %llu, \"kind\": \"%s\"",
                static_cast<unsigned long long>(event.time), ToString(event.kind));
  line.append(head);
  const EventFieldNames names = FieldNamesFor(event.kind);
  if (names.a != nullptr) {
    AppendField(&line, names.a, event.a);
  }
  if (names.b != nullptr) {
    AppendField(&line, names.b, event.b);
  }
  if (names.c != nullptr) {
    AppendField(&line, names.c, event.c);
  }
  line.append("}");
  return line;
}

void WriteEventsJsonl(const std::vector<TraceEvent>& events, std::ostream* out) {
  for (const TraceEvent& event : events) {
    *out << EventToJson(event) << '\n';
  }
}

std::string EventsToJsonl(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  WriteEventsJsonl(events, &out);
  return out.str();
}

void WriteEventsCsv(const std::vector<TraceEvent>& events, std::ostream* out) {
  *out << "t,kind,a,b,c\n";
  for (const TraceEvent& event : events) {
    *out << event.time << ',' << ToString(event.kind) << ',' << event.a << ',' << event.b
         << ',' << event.c << '\n';
  }
}

namespace {

// Minimal scanner for the exporter's own line format.
struct LineScanner {
  const char* p;

  void SkipSpace() {
    while (*p == ' ') {
      ++p;
    }
  }
  bool Literal(char c) {
    SkipSpace();
    if (*p != c) {
      return false;
    }
    ++p;
    return true;
  }
  bool Number(std::uint64_t* out) {
    SkipSpace();
    if (*p < '0' || *p > '9') {
      return false;
    }
    std::uint64_t value = 0;
    while (*p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(*p - '0');
      ++p;
    }
    *out = value;
    return true;
  }
  // Reads a quoted string into `buf` (bounded; the wire names are short).
  bool QuotedString(char* buf, std::size_t cap) {
    SkipSpace();
    if (*p != '"') {
      return false;
    }
    ++p;
    std::size_t n = 0;
    while (*p != '"' && *p != '\0') {
      if (n + 1 >= cap) {
        return false;
      }
      buf[n++] = *p++;
    }
    if (*p != '"') {
      return false;
    }
    ++p;
    buf[n] = '\0';
    return true;
  }
  // Matches `"name":` with the exact expected name.
  bool Key(const char* name) {
    char buf[64];
    if (!QuotedString(buf, sizeof(buf))) {
      return false;
    }
    const char* a = buf;
    const char* b = name;
    while (*a != '\0' && *a == *b) {
      ++a;
      ++b;
    }
    if (*a != *b) {
      return false;
    }
    return Literal(':');
  }
};

Expected<TraceEvent, std::string> ParseLine(const std::string& line) {
  LineScanner s{line.c_str()};
  TraceEvent event;
  if (!s.Literal('{') || !s.Key("t") || !s.Number(&event.time) || !s.Literal(',') ||
      !s.Key("kind")) {
    return MakeUnexpected(std::string("malformed event header"));
  }
  char kind_name[48];
  if (!s.QuotedString(kind_name, sizeof(kind_name))) {
    return MakeUnexpected(std::string("malformed kind string"));
  }
  if (!EventKindFromString(kind_name, &event.kind)) {
    return MakeUnexpected("unknown event kind '" + std::string(kind_name) + "'");
  }
  const EventFieldNames names = FieldNamesFor(event.kind);
  const char* field_names[] = {names.a, names.b, names.c};
  std::uint64_t* slots[] = {&event.a, &event.b, &event.c};
  for (int i = 0; i < 3 && field_names[i] != nullptr; ++i) {
    if (!s.Literal(',') || !s.Key(field_names[i]) || !s.Number(slots[i])) {
      return MakeUnexpected("missing field '" + std::string(field_names[i]) + "'");
    }
  }
  if (!s.Literal('}')) {
    return MakeUnexpected(std::string("trailing content in event"));
  }
  s.SkipSpace();
  if (*s.p != '\0') {
    return MakeUnexpected(std::string("trailing content after event"));
  }
  return event;
}

}  // namespace

Expected<std::vector<TraceEvent>, EventParseError> ReadEventsJsonl(std::istream* in) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    auto parsed = ParseLine(line);
    if (!parsed.has_value()) {
      return MakeUnexpected(EventParseError{line_number, parsed.error()});
    }
    events.push_back(*parsed);
  }
  return events;
}

Expected<std::vector<TraceEvent>, EventParseError> ParseEventsJsonl(const std::string& text) {
  std::istringstream in(text);
  return ReadEventsJsonl(&in);
}

}  // namespace dsa
