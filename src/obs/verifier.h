// TraceReplayVerifier: re-checks engine invariants over any captured event
// stream, independent of the engine that produced it.
//
// A golden trace pins *what* happened; the verifier pins *that what
// happened was lawful*.  It replays the stream through a small state
// machine and reports every violation of:
//
//   * monotone clock — event times never decrease (drivers only advance
//     their clocks, and the tracer's stamp clock is monotone by
//     construction, so a violation means a corrupted or spliced stream);
//   * balanced transfers — every transfer-complete closes a matching open
//     transfer-start (same page, level, direction), no transfer is started
//     twice without completing, and no start dangles at end of stream;
//   * no retired-frame traffic — once a frame-retire is recorded, no later
//     frame-load, frame-evict, or victim-chosen may name that frame, and a
//     frame is retired at most once;
//   * frame conservation — loads only into vacant frames, evictions only of
//     the page actually resident there, and (when the stream's frame count
//     is known) occupied + retired never exceeds it;
//   * deactivated jobs hold no frames — when `page_job_shift` names how a
//     multiprogramming stream packs the job id into its page ids, a
//     job-deactivate must find every frame of that job already evicted, no
//     frame-load may name a deactivated job's page until the matching
//     job-reactivate, and deactivate/reactivate must alternate per job.
//
// The verifier assumes a complete stream from a cold start — capture with
// an unbounded tracer (capacity 0); a ring that dropped its head will
// legitimately fail conservation.

#ifndef SRC_OBS_VERIFIER_H_
#define SRC_OBS_VERIFIER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/event.h"

namespace dsa {

struct TraceViolation {
  std::size_t index{0};  // position of the offending event in the stream
  std::string message;
};

struct TraceVerifierConfig {
  // Total frames of the captured system; enables the capacity bound of the
  // conservation check when known.
  std::optional<std::size_t> frame_count{};
  // How a multiprogramming stream packs the owning job into a page id
  // (job = page >> shift); enables the deactivated-job-holds-no-frames
  // rule.  The MultiprogrammingSimulator uses 40.
  std::optional<unsigned> page_job_shift{};
  // Stop after this many violations (a corrupt stream otherwise reports
  // one violation per event).
  std::size_t max_violations{64};
};

class TraceReplayVerifier {
 public:
  explicit TraceReplayVerifier(TraceVerifierConfig config = {}) : config_(config) {}

  // Replays the stream; an empty result means every invariant held.
  std::vector<TraceViolation> Verify(const std::vector<TraceEvent>& events) const;

  // Convenience: formats violations one per line (empty string when clean).
  static std::string Describe(const std::vector<TraceViolation>& violations);

 private:
  TraceVerifierConfig config_;
};

}  // namespace dsa

#endif  // SRC_OBS_VERIFIER_H_
