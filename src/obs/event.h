// The event taxonomy of the observability layer.
//
// The paper reasons entirely about observable behaviour — fault counts,
// transfer timings, fragmentation, space-time products — so the simulator
// records its decisions as typed events that can be exported, replayed, and
// re-checked after the fact.  Every event is stamped with the simulated
// Clock at the reference that triggered it (payload fields carry durations),
// which keeps a captured stream monotone even when transfers overlap under
// multiprogramming.
//
// Emission sites compile out entirely with -DDSA_TRACE=0 (the CMake
// `DSA_TRACE` option), so hot paths measured by bench_throughput carry no
// tracing cost when the layer is disabled at build time; at run time a null
// or disabled tracer costs one predictable branch.

#ifndef SRC_OBS_EVENT_H_
#define SRC_OBS_EVENT_H_

#include <cstdint>

#include "src/core/types.h"

#ifndef DSA_TRACE
#define DSA_TRACE 1
#endif

namespace dsa {

// One kind per decision the engines make.  Payload fields `a`, `b`, `c` are
// generic 64-bit slots whose meaning is per-kind (listed right, in export
// order); unused slots are zero.
enum class EventKind : std::uint8_t {
  kPageFault,         // a=page
  kSegmentFault,      // a=segment, b=extent
  kTransferStart,     // a=page, b=level, c=direction (0 fetch, 1 write-back)
  kTransferComplete,  // a=page, b=level, c=wait cycles of the transfer
  kVictimChosen,      // a=page (the victim's), b=frame
  kFrameLoad,         // a=page, b=frame
  kFrameEvict,        // a=page, b=frame
  kFrameRetire,       // a=frame
  kPageDemoted,       // a=page, b=destination level
  kAlloc,             // a=address, b=size
  kFree,              // a=address, b=size
  kCompaction,        // a=blocks moved, b=words moved
  kFaultRecovery,     // a=page, b=RecoveryAction
  kScheduleSwitch,    // a=from job (kNoJob when idle), b=to job
  kJobDeactivate,     // a=job, b=frames released by the swap-out
  kJobReactivate,     // a=job
  kLoadControl,       // a=LoadControlDecision, b=job (kNoJob), c=fault rate (ppm)
  kSizeClassMiss,     // a=size class, b=requested words (quick + class lists both empty)
  kDeferredCoalesce,  // a=parked blocks drained, b=words drained, c=boundary-tag merges
  kServiceDegraded,   // a=io giveups so far, b=commits so far (durable IO down)
  kServiceRecovered,  // a=cycles spent degraded this episode, b=commits so far
};

// Payload `b` of kFaultRecovery.
enum class RecoveryAction : std::uint64_t {
  kRetry = 0,        // transient transfer error, re-issued
  kRelocation = 1,   // page re-homed to a spare backing slot
  kFrameParity = 2,  // core frame took a parity hit while landing a page
  kPageLost = 3,     // every recovery exhausted; contents unrecoverable
};

// Payload `a` of kLoadControl: what the load controller decided.
enum class LoadControlDecision : std::uint64_t {
  kShed = 0,   // an active job is being deactivated (swap out, requeue)
  kAdmit = 1,  // a queued or deactivated job is being (re)activated
};

// kScheduleSwitch `a` when no job was previously running.
inline constexpr std::uint64_t kNoJob = ~std::uint64_t{0};

struct TraceEvent {
  Cycles time{0};
  EventKind kind{EventKind::kPageFault};
  std::uint64_t a{0};
  std::uint64_t b{0};
  std::uint64_t c{0};

  bool operator==(const TraceEvent&) const = default;
};

// Stable wire names, shared by the JSONL/CSV exporters and the parser.
const char* ToString(EventKind kind);
// Reverse lookup; false if `name` is not a known kind.
bool EventKindFromString(const char* name, EventKind* out);

// Per-kind export names of the payload slots (nullptr when the slot is
// unused by that kind).  Keeps the JSONL self-describing while the in-memory
// record stays a flat POD.
struct EventFieldNames {
  const char* a;
  const char* b;
  const char* c;
};
EventFieldNames FieldNamesFor(EventKind kind);

}  // namespace dsa

// Emission macro used at every hook site.  With DSA_TRACE=0 the call —
// including evaluation of the payload expressions — vanishes at compile
// time.  `tracer` is an EventTracer* and may be null.
#if DSA_TRACE
// The no-tracer case is the production default, so the guard is annotated
// unlikely: the compiler sinks the emission (argument materialisation and
// the call) into a cold block, keeping hot functions compact.
#define DSA_TRACE_EMIT(tracer, ...)                                              \
  do {                                                                           \
    auto* dsa_trace_t_ = (tracer);                                               \
    if (__builtin_expect(dsa_trace_t_ != nullptr && dsa_trace_t_->enabled(), 0)) \
      dsa_trace_t_->Emit(__VA_ARGS__);                                           \
  } while (0)
#define DSA_TRACE_CLOCK(tracer, now)                    \
  do {                                                  \
    auto* dsa_trace_t_ = (tracer);                      \
    if (__builtin_expect(dsa_trace_t_ != nullptr, 0))   \
      dsa_trace_t_->AdvanceClock(now);                  \
  } while (0)
#else
#define DSA_TRACE_EMIT(tracer, ...) do {} while (0)
#define DSA_TRACE_CLOCK(tracer, now) do {} while (0)
#endif

#endif  // SRC_OBS_EVENT_H_
