// The metrics registry: named counters, gauges, and histograms that the
// report renderers are built on.
//
// Registration order is deterministic (first GetX wins the slot), so a
// rendered table is byte-stable for a fixed sequence of registrations —
// the property the golden formatting tests pin.  Handles returned by GetX
// stay valid for the registry's lifetime.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/stats/histogram.h"

namespace dsa {

class MetricCounter {
 public:
  void Increment(std::uint64_t by = 1) { value_ += by; }
  void Set(std::uint64_t value) { value_ = value; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

class MetricGauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_{0.0};
};

class MetricsRegistry {
 public:
  // Create-on-first-use lookups.  A name denotes exactly one metric kind;
  // asking for an existing name as a different kind asserts.
  MetricCounter* GetCounter(const std::string& name);
  MetricGauge* GetGauge(const std::string& name);
  LogHistogram* GetHistogram(const std::string& name);

  bool Has(const std::string& name) const { return index_.contains(name); }
  std::size_t size() const { return entries_.size(); }

  // Convenience readers (0 when absent — a metric never incremented and a
  // metric never registered render identically).
  std::uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  // Two-column "metric | value" rendering of every counter and gauge in
  // registration order (histograms render separately, being multi-line).
  // Gauges print with `gauge_digits` decimals through FormatFixed, so the
  // output matches the legacy printf("%.Nf") reports digit for digit.
  std::string RenderTable(int gauge_digits = 3) const;

  // Visits counters and gauges in registration order.
  struct Entry {
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind;
    std::string name;
    const MetricCounter* counter{nullptr};  // set when kind == kCounter
    const MetricGauge* gauge{nullptr};      // set when kind == kGauge
    const LogHistogram* histogram{nullptr}; // set when kind == kHistogram
  };
  std::vector<Entry> Entries() const;

  // Checkpoint serialization, in registration order (names included, so a
  // restored registry renders the identical table).  LoadState merges into
  // the registry: an existing name must agree on kind (mismatch is reported
  // through the reader, never an assert), a new name is registered in the
  // serialized order.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  struct Slot {
    Entry::Kind kind;
    std::string name;
    MetricCounter counter;
    MetricGauge gauge;
    LogHistogram histogram;
  };

  Slot* FindOrCreate(const std::string& name, Entry::Kind kind);

  std::deque<Slot> entries_;  // deque: stable addresses for handed-out handles
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace dsa

#endif  // SRC_OBS_METRICS_H_
