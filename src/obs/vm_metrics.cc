#include "src/obs/vm_metrics.h"

#include <cstdio>

#include "src/stats/table.h"

namespace dsa {

void FillReliabilityMetrics(const ReliabilityStats& stats, const std::string& prefix,
                            MetricsRegistry* registry) {
  registry->GetCounter(prefix + "transient_errors")->Set(stats.transient_errors);
  registry->GetCounter(prefix + "retries")->Set(stats.retries);
  registry->GetCounter(prefix + "retry_cycles")->Set(stats.retry_cycles);
  registry->GetCounter(prefix + "slot_failures")->Set(stats.slot_failures);
  registry->GetCounter(prefix + "relocations")->Set(stats.relocations);
  registry->GetCounter(prefix + "spill_relocations")->Set(stats.spill_relocations);
  registry->GetCounter(prefix + "frame_failures")->Set(stats.frame_failures);
  registry->GetCounter(prefix + "retired_frames")->Set(stats.retired_frames);
  registry->GetCounter(prefix + "residual_frames")->Set(stats.residual_frames);
  registry->GetCounter(prefix + "failed_accesses")->Set(stats.failed_accesses);
  registry->GetCounter(prefix + "lost_pages")->Set(stats.lost_pages);
}

void FillPagerMetrics(const PagerStats& stats, MetricsRegistry* registry) {
  registry->GetCounter("pager/accesses")->Set(stats.accesses);
  registry->GetCounter("pager/faults")->Set(stats.faults);
  registry->GetCounter("pager/demand_fetches")->Set(stats.demand_fetches);
  registry->GetCounter("pager/extra_fetches")->Set(stats.extra_fetches);
  registry->GetCounter("pager/writebacks")->Set(stats.writebacks);
  registry->GetCounter("pager/evictions")->Set(stats.evictions);
  registry->GetCounter("pager/advised_releases")->Set(stats.advised_releases);
  registry->GetCounter("pager/policy_releases")->Set(stats.policy_releases);
  registry->GetCounter("pager/wait_cycles")->Set(stats.wait_cycles);
  registry->GetCounter("pager/transfer_cycles")->Set(stats.transfer_cycles);
  registry->GetGauge("pager/fault_rate")->Set(stats.FaultRate());
  FillReliabilityMetrics(stats.reliability, "pager/reliability/", registry);
}

void FillMultiprogramMetrics(const MultiprogramReport& report, MetricsRegistry* registry) {
  registry->GetCounter("sched/degree")->Set(report.degree);
  registry->GetCounter("sched/total_cycles")->Set(report.total_cycles);
  registry->GetCounter("sched/cpu_busy_cycles")->Set(report.cpu_busy_cycles);
  registry->GetCounter("sched/cpu_idle_cycles")->Set(report.cpu_idle_cycles);
  registry->GetCounter("sched/context_switch_cycles")->Set(report.context_switch_cycles);
  registry->GetCounter("sched/faults")->Set(report.faults);
  registry->GetCounter("sched/deactivations")->Set(report.deactivations);
  registry->GetCounter("sched/reactivations")->Set(report.reactivations);
  registry->GetCounter("sched/controller_decisions")->Set(report.controller_decisions);
  registry->GetGauge("sched/cpu_utilization")->Set(report.CpuUtilization());
  registry->GetGauge("sched/throughput")->Set(report.Throughput());
  registry->GetGauge("sched/space_time_total")->Set(report.TotalSpaceTime());
  std::uint64_t blocked_fault = 0;
  std::uint64_t queued = 0;
  for (const JobReport& job : report.jobs) {
    blocked_fault += job.blocked_cycles;
    queued += job.queued_cycles;
  }
  registry->GetCounter("sched/blocked_fault_cycles")->Set(blocked_fault);
  registry->GetCounter("sched/queued_cycles")->Set(queued);
  FillReliabilityMetrics(report.reliability, "sched/reliability/", registry);
}

void FillVmMetrics(const VmReport& report, MetricsRegistry* registry) {
  registry->GetCounter("vm/references")->Set(report.references);
  registry->GetCounter("vm/faults")->Set(report.faults);
  registry->GetCounter("vm/bounds_violations")->Set(report.bounds_violations);
  registry->GetCounter("vm/writebacks")->Set(report.writebacks);
  registry->GetCounter("vm/total_cycles")->Set(report.total_cycles);
  registry->GetCounter("vm/compute_cycles")->Set(report.compute_cycles);
  registry->GetCounter("vm/translation_cycles")->Set(report.translation_cycles);
  registry->GetCounter("vm/wait_cycles")->Set(report.wait_cycles);
  registry->GetCounter("vm/peak_resident_words")->Set(report.peak_resident_words);
  registry->GetGauge("vm/fault_rate")->Set(report.FaultRate());
  registry->GetGauge("vm/mean_translation_cost")->Set(report.MeanTranslationCost());
  registry->GetGauge("vm/wait_fraction")->Set(report.WaitFraction());
  registry->GetGauge("vm/space_time_active")->Set(report.space_time.active);
  registry->GetGauge("vm/space_time_waiting")->Set(report.space_time.waiting);
  registry->GetGauge("vm/space_time_waiting_fraction")->Set(report.space_time.WaitingFraction());
  registry->GetGauge("vm/tlb_hit_rate")->Set(report.tlb_hit_rate);
  FillReliabilityMetrics(report.reliability, "vm/reliability/", registry);
}

std::string RenderVmMetricsReport(const MetricsRegistry& registry, const std::string& system,
                                  const std::string& workload) {
  char buf[256];
  std::string out;
  auto line = [&](const char* label, const std::string& value) {
    std::snprintf(buf, sizeof(buf), "%-16s %s\n", label, value.c_str());
    out.append(buf);
  };
  auto count = [&](const std::string& name) {
    return std::to_string(registry.CounterValue(name));
  };

  line("system", system);
  line("workload", workload + " (" + count("vm/references") + " references)");
  line("faults", count("vm/faults") + "  (rate " +
                     FormatFixed(registry.GaugeValue("vm/fault_rate"), 5) + ")");
  line("bounds traps", count("vm/bounds_violations"));
  line("write-backs", count("vm/writebacks"));
  line("total cycles", count("vm/total_cycles"));
  line("mean map cost",
       FormatFixed(registry.GaugeValue("vm/mean_translation_cost"), 2) + " cycles/ref");
  line("wait fraction", FormatFixed(registry.GaugeValue("vm/wait_fraction"), 3));
  line("space-time",
       "active " + FormatScientific(registry.GaugeValue("vm/space_time_active"), 3) +
           ", waiting " + FormatScientific(registry.GaugeValue("vm/space_time_waiting"), 3) +
           " (waiting " +
           FormatFixed(100.0 * registry.GaugeValue("vm/space_time_waiting_fraction"), 1) +
           "%)");
  line("peak residency", count("vm/peak_resident_words") + " words");
  if (registry.GaugeValue("vm/tlb_hit_rate") > 0.0) {
    line("assoc hit rate", FormatFixed(registry.GaugeValue("vm/tlb_hit_rate"), 3));
  }
  return out;
}

std::string RenderVmReport(const VmReport& report, const std::string& system,
                           const std::string& workload) {
  MetricsRegistry registry;
  FillVmMetrics(report, &registry);
  return RenderVmMetricsReport(registry, system, workload);
}

}  // namespace dsa
