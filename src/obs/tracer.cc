#include "src/obs/tracer.h"

namespace dsa {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kPageFault:
      return "page-fault";
    case EventKind::kSegmentFault:
      return "segment-fault";
    case EventKind::kTransferStart:
      return "transfer-start";
    case EventKind::kTransferComplete:
      return "transfer-complete";
    case EventKind::kVictimChosen:
      return "victim-chosen";
    case EventKind::kFrameLoad:
      return "frame-load";
    case EventKind::kFrameEvict:
      return "frame-evict";
    case EventKind::kFrameRetire:
      return "frame-retire";
    case EventKind::kPageDemoted:
      return "page-demoted";
    case EventKind::kAlloc:
      return "alloc";
    case EventKind::kFree:
      return "free";
    case EventKind::kCompaction:
      return "compaction";
    case EventKind::kFaultRecovery:
      return "fault-recovery";
    case EventKind::kScheduleSwitch:
      return "schedule-switch";
    case EventKind::kJobDeactivate:
      return "job-deactivate";
    case EventKind::kJobReactivate:
      return "job-reactivate";
    case EventKind::kLoadControl:
      return "load-control";
    case EventKind::kSizeClassMiss:
      return "size-class-miss";
    case EventKind::kDeferredCoalesce:
      return "deferred-coalesce";
    case EventKind::kServiceDegraded:
      return "service-degraded";
    case EventKind::kServiceRecovered:
      return "service-recovered";
  }
  return "?";
}

namespace {

constexpr EventKind kAllKinds[] = {
    EventKind::kPageFault,     EventKind::kSegmentFault,    EventKind::kTransferStart,
    EventKind::kTransferComplete, EventKind::kVictimChosen, EventKind::kFrameLoad,
    EventKind::kFrameEvict,    EventKind::kFrameRetire,     EventKind::kPageDemoted,
    EventKind::kAlloc,         EventKind::kFree,            EventKind::kCompaction,
    EventKind::kFaultRecovery, EventKind::kScheduleSwitch,  EventKind::kJobDeactivate,
    EventKind::kJobReactivate, EventKind::kLoadControl,  EventKind::kSizeClassMiss,
    EventKind::kDeferredCoalesce, EventKind::kServiceDegraded, EventKind::kServiceRecovered,
};

bool Equals(const char* a, const char* b) {
  while (*a != '\0' && *a == *b) {
    ++a;
    ++b;
  }
  return *a == *b;
}

}  // namespace

bool EventKindFromString(const char* name, EventKind* out) {
  for (const EventKind kind : kAllKinds) {
    if (Equals(name, ToString(kind))) {
      *out = kind;
      return true;
    }
  }
  return false;
}

EventFieldNames FieldNamesFor(EventKind kind) {
  switch (kind) {
    case EventKind::kPageFault:
      return {"page", nullptr, nullptr};
    case EventKind::kSegmentFault:
      return {"segment", "extent", nullptr};
    case EventKind::kTransferStart:
      return {"page", "level", "dir"};
    case EventKind::kTransferComplete:
      return {"page", "level", "wait"};
    case EventKind::kVictimChosen:
    case EventKind::kFrameLoad:
    case EventKind::kFrameEvict:
      return {"page", "frame", nullptr};
    case EventKind::kFrameRetire:
      return {"frame", nullptr, nullptr};
    case EventKind::kPageDemoted:
      return {"page", "level", nullptr};
    case EventKind::kAlloc:
    case EventKind::kFree:
      return {"addr", "size", nullptr};
    case EventKind::kCompaction:
      return {"moved", "words", nullptr};
    case EventKind::kFaultRecovery:
      return {"page", "action", nullptr};
    case EventKind::kScheduleSwitch:
      return {"from", "to", nullptr};
    case EventKind::kJobDeactivate:
      return {"job", "frames", nullptr};
    case EventKind::kJobReactivate:
      return {"job", nullptr, nullptr};
    case EventKind::kLoadControl:
      return {"decision", "job", "fault_ppm"};
    case EventKind::kSizeClassMiss:
      return {"class", "size", nullptr};
    case EventKind::kDeferredCoalesce:
      return {"drained", "words", "merges"};
    case EventKind::kServiceDegraded:
      return {"giveups", "commits", nullptr};
    case EventKind::kServiceRecovered:
      return {"cycles", "commits", nullptr};
  }
  return {nullptr, nullptr, nullptr};
}

void EventTracer::Emit(EventKind kind, std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  if (!enabled_) {
    return;
  }
  const TraceEvent event{now_, kind, a, b, c};
  ++emitted_;
  if (sink_) {
    sink_(event);
  }
  if (capacity_ == 0 || ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Ring is full: overwrite the oldest record.
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> EventTracer::Snapshot() const {
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return events;
}

}  // namespace dsa
