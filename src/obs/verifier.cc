#include "src/obs/verifier.h"

#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace dsa {

namespace {

std::string Format(const char* what, const TraceEvent& event) {
  std::ostringstream out;
  out << what << " (kind=" << ToString(event.kind) << " t=" << event.time << " a=" << event.a
      << " b=" << event.b << " c=" << event.c << ")";
  return out.str();
}

}  // namespace

std::vector<TraceViolation> TraceReplayVerifier::Verify(
    const std::vector<TraceEvent>& events) const {
  std::vector<TraceViolation> violations;
  auto report = [&](std::size_t index, std::string message) {
    if (violations.size() < config_.max_violations) {
      violations.push_back(TraceViolation{index, std::move(message)});
    }
  };

  Cycles last_time = 0;
  // Open transfers keyed by (page, level, direction) -> count.
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>, std::size_t> open_transfers;
  std::unordered_map<std::uint64_t, std::uint64_t> frame_page;  // occupied frame -> page
  std::unordered_set<std::uint64_t> retired;
  std::unordered_set<std::uint64_t> deactivated_jobs;

  auto check_not_retired = [&](std::size_t i, const TraceEvent& event, std::uint64_t frame) {
    if (retired.contains(frame)) {
      report(i, Format("traffic on a retired frame", event));
      return false;
    }
    return true;
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (event.time < last_time) {
      report(i, Format("clock moved backwards", event));
    }
    last_time = event.time > last_time ? event.time : last_time;

    switch (event.kind) {
      case EventKind::kTransferStart: {
        auto key = std::make_tuple(event.a, event.b, event.c);
        if (open_transfers[key] > 0) {
          report(i, Format("transfer started while already in flight", event));
        }
        ++open_transfers[key];
        break;
      }
      case EventKind::kTransferComplete: {
        // Completes carry the wait in slot c; match on (page, level) against
        // either direction, preferring the exact fetch/write distinction to
        // stay representation-independent: a complete closes one open start
        // with the same page and level.
        bool closed = false;
        for (std::uint64_t dir = 0; dir < 2 && !closed; ++dir) {
          auto key = std::make_tuple(event.a, event.b, dir);
          auto it = open_transfers.find(key);
          if (it != open_transfers.end() && it->second > 0) {
            --it->second;
            closed = true;
          }
        }
        if (!closed) {
          report(i, Format("transfer-complete without a matching start", event));
        }
        break;
      }
      case EventKind::kFrameLoad: {
        if (!check_not_retired(i, event, event.b)) {
          break;
        }
        if (config_.page_job_shift.has_value() &&
            deactivated_jobs.contains(event.a >> *config_.page_job_shift)) {
          report(i, Format("frame loaded for a deactivated job", event));
        }
        if (frame_page.contains(event.b)) {
          report(i, Format("load into an occupied frame", event));
          break;
        }
        frame_page.emplace(event.b, event.a);
        if (config_.frame_count.has_value() &&
            frame_page.size() + retired.size() > *config_.frame_count) {
          report(i, Format("occupied + retired frames exceed the frame count", event));
        }
        break;
      }
      case EventKind::kFrameEvict: {
        if (!check_not_retired(i, event, event.b)) {
          break;
        }
        auto it = frame_page.find(event.b);
        if (it == frame_page.end()) {
          report(i, Format("eviction of a vacant frame", event));
        } else if (it->second != event.a) {
          report(i, Format("eviction names a page not resident in the frame", event));
        } else {
          frame_page.erase(it);
        }
        break;
      }
      case EventKind::kVictimChosen: {
        if (!check_not_retired(i, event, event.b)) {
          break;
        }
        auto it = frame_page.find(event.b);
        if (it == frame_page.end() || it->second != event.a) {
          report(i, Format("victim chosen from a frame not holding that page", event));
        }
        break;
      }
      case EventKind::kFrameRetire: {
        if (retired.contains(event.a)) {
          report(i, Format("frame retired twice", event));
          break;
        }
        if (frame_page.contains(event.a)) {
          report(i, Format("frame retired while still occupied", event));
          frame_page.erase(event.a);
        }
        retired.insert(event.a);
        if (config_.frame_count.has_value() && retired.size() > *config_.frame_count) {
          report(i, Format("more frames retired than exist", event));
        }
        break;
      }
      case EventKind::kJobDeactivate: {
        if (!deactivated_jobs.insert(event.a).second) {
          report(i, Format("job deactivated twice without a reactivation", event));
          break;
        }
        if (config_.page_job_shift.has_value()) {
          for (const auto& [frame, page] : frame_page) {
            if (page >> *config_.page_job_shift == event.a) {
              report(i, Format("deactivated job still holds a frame", event));
              break;
            }
          }
        }
        break;
      }
      case EventKind::kJobReactivate: {
        if (deactivated_jobs.erase(event.a) == 0) {
          report(i, Format("reactivation of a job that was not deactivated", event));
        }
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [key, count] : open_transfers) {
    if (count > 0) {
      TraceEvent ghost{last_time, EventKind::kTransferStart, std::get<0>(key),
                       std::get<1>(key), std::get<2>(key)};
      report(events.size(), Format("transfer still open at end of stream", ghost));
    }
  }
  return violations;
}

std::string TraceReplayVerifier::Describe(const std::vector<TraceViolation>& violations) {
  std::ostringstream out;
  for (const TraceViolation& v : violations) {
    out << "event " << v.index << ": " << v.message << '\n';
  }
  return out.str();
}

}  // namespace dsa
