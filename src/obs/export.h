// Zero-dependency JSONL / CSV export of captured event streams, and the
// matching JSONL parser used by the golden-trace tests and the replay
// verifier's file mode.
//
// The wire format is one JSON object per line with the fields
//   {"t": <cycles>, "kind": "<name>", <per-kind payload fields>}
// in fixed key order, all values unsigned integers.  Because every field is
// integral, export is byte-deterministic across platforms — the property
// the golden-trace byte comparison relies on.

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/expected.h"
#include "src/obs/event.h"

namespace dsa {

// One event as one JSONL line (no trailing newline).
std::string EventToJson(const TraceEvent& event);

// Writes one line per event.
void WriteEventsJsonl(const std::vector<TraceEvent>& events, std::ostream* out);
std::string EventsToJsonl(const std::vector<TraceEvent>& events);

// CSV with a fixed header `t,kind,a,b,c` (payload slots stay positional so
// every kind fits one schema).
void WriteEventsCsv(const std::vector<TraceEvent>& events, std::ostream* out);

struct EventParseError {
  std::size_t line{0};  // 1-based
  std::string message;
};

// Parses a stream previously written by WriteEventsJsonl.  Accepts the
// exporter's own format (fixed key order, integer values); a malformed line
// stops the parse and reports its number.  Blank lines are skipped.
Expected<std::vector<TraceEvent>, EventParseError> ReadEventsJsonl(std::istream* in);
Expected<std::vector<TraceEvent>, EventParseError> ParseEventsJsonl(const std::string& text);

}  // namespace dsa

#endif  // SRC_OBS_EXPORT_H_
