// Rebuilds the simulator's end-of-run reports on the MetricsRegistry.
//
// FillVmMetrics flattens a VmReport (and its embedded ReliabilityStats)
// into named counters and gauges; RenderVmMetricsReport renders the legacy
// dsa_sim report block *from the registry*, byte-identical to the printf
// output it replaces — the formatting-parity test pins this.  Keeping the
// derived rates as gauges (rather than recomputing at print time) means a
// dashboard scraping the registry and a human reading the report always see
// the same rounded values.

#ifndef SRC_OBS_VM_METRICS_H_
#define SRC_OBS_VM_METRICS_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/paging/pager.h"
#include "src/sched/multiprogramming.h"
#include "src/stats/reliability.h"
#include "src/vm/system.h"

namespace dsa {

// Registers/overwrites the report's fields under "vm/..." names.
void FillVmMetrics(const VmReport& report, MetricsRegistry* registry);

// Registers/overwrites pager counters under "pager/..." names.
void FillPagerMetrics(const PagerStats& stats, MetricsRegistry* registry);

// Registers/overwrites reliability counters under `prefix` + names.
void FillReliabilityMetrics(const ReliabilityStats& stats, const std::string& prefix,
                            MetricsRegistry* registry);

// Registers/overwrites a multiprogramming run's report — including the
// load-control activity counters — under "sched/..." names.
void FillMultiprogramMetrics(const MultiprogramReport& report, MetricsRegistry* registry);

// The legacy dsa_sim report block (trailing newline included), rendered
// from a registry populated by FillVmMetrics.  `workload` is the trace
// label.  The TLB line appears only when the hit rate is positive, exactly
// like the printf it replaces.
std::string RenderVmMetricsReport(const MetricsRegistry& registry, const std::string& system,
                                  const std::string& workload);

// Convenience: fill + render in one step.
std::string RenderVmReport(const VmReport& report, const std::string& system,
                           const std::string& workload);

}  // namespace dsa

#endif  // SRC_OBS_VM_METRICS_H_
