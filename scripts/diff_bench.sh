#!/usr/bin/env bash
# Regenerates the quick bench results and diffs their deterministic fields
# against the committed references (BENCH_*.quick.json).
#
# The simulator is a pure function of its seeds, so fault counts, wait
# cycles, and space-time products must be bit-identical on every machine;
# only wall-clock fields (seconds, refs_per_sec, speedup) vary and are
# stripped before the diff.  CI runs this to catch silent behaviour drift
# that the unit suites are too narrow to see.
#
#   scripts/diff_bench.sh          # build, run --quick, diff
#   scripts/diff_bench.sh --regen  # rewrite the committed references
set -euo pipefail

cd "$(dirname "$0")/.."

strip_timing() {
  # Drops machine-dependent fields; everything left must be deterministic.
  # (strip_timing.py handles a timing key at any position in the object,
  # which the old field-order-sensitive sed pipeline did not.)
  python3 scripts/strip_timing.py "$1"
}

cmake -B build -S . > /dev/null
cmake --build build -j --target bench_throughput bench_degradation bench_overload \
  bench_alloc bench_resume bench_concurrent bench_parallel > /dev/null

mkdir -p build/bench_diff
./build/bench/bench_throughput --quick --out build/bench_diff/throughput.json > /dev/null
./build/bench/bench_degradation --quick --out build/bench_diff/degradation.json > /dev/null
./build/bench/bench_overload --quick --out build/bench_diff/overload.json > /dev/null
# bench_alloc runs 2-wide here on purpose: its committed reference was
# generated at --jobs 1, so this diff also proves the grid is byte-identical
# across sweep widths.
./build/bench/bench_alloc --quick --jobs 2 --out build/bench_diff/alloc.json > /dev/null
# bench_resume exits non-zero if a checkpointed VM fails to restore to the
# identical bytes or diverges when stepped past the restore point.
./build/bench/bench_resume --quick --out build/bench_diff/resume.json > /dev/null
# bench_concurrent exits non-zero if any lane width diverges from the serial
# bytes or the shared heap leaks blocks; its quick lane list {1,2,4} is fixed
# so the stripped output is a cross-machine value-diff reference.
./build/bench/bench_concurrent --quick --out build/bench_diff/concurrent.json > /dev/null
./build/bench/bench_parallel --quick --out build/bench_diff/parallel.json > /dev/null

if [[ "${1:-}" == "--regen" ]]; then
  strip_timing build/bench_diff/throughput.json > BENCH_throughput.quick.json
  strip_timing build/bench_diff/degradation.json > BENCH_degradation.quick.json
  strip_timing build/bench_diff/overload.json > BENCH_overload.quick.json
  strip_timing build/bench_diff/alloc.json > BENCH_alloc.quick.json
  strip_timing build/bench_diff/resume.json > BENCH_resume.quick.json
  strip_timing build/bench_diff/concurrent.json > BENCH_concurrent.quick.json
  echo "rewrote BENCH_{throughput,degradation,overload,alloc,resume,concurrent}.quick.json"
  exit 0
fi

status=0
for name in throughput degradation overload alloc resume concurrent; do
  strip_timing "build/bench_diff/${name}.json" > "build/bench_diff/${name}.stripped.json"
  if ! diff -u "BENCH_${name}.quick.json" "build/bench_diff/${name}.stripped.json"; then
    echo "bench_${name}: deterministic results drifted from BENCH_${name}.quick.json" >&2
    echo "(if intentional, refresh with scripts/diff_bench.sh --regen)" >&2
    status=1
  fi
done

# The committed FULL curves (BENCH_parallel.json, BENCH_concurrent.json) are
# machine-dependent down to their row counts — the worker/lane lists include
# the recording host's hardware width — so their values cannot be diffed on
# an arbitrary host.  Their SCHEMA can: compare the JSON skeleton of the
# committed file against a fresh quick run of the same writer, so a bench
# change that reshapes the output without refreshing the committed full
# curve fails here even on a 1-core CI container.
for name in parallel concurrent; do
  committed="BENCH_${name}.json"
  python3 scripts/strip_timing.py --structure "$committed" > "build/bench_diff/${name}.committed.skel"
  python3 scripts/strip_timing.py --structure "build/bench_diff/${name}.json" > "build/bench_diff/${name}.fresh.skel"
  if ! diff -u "build/bench_diff/${name}.committed.skel" "build/bench_diff/${name}.fresh.skel"; then
    echo "bench_${name}: ${committed} no longer matches the writer's schema" >&2
    echo "(regenerate the full curve: ./build/bench/bench_${name} --out ${committed})" >&2
    status=1
  fi
done
exit $status
