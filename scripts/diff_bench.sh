#!/usr/bin/env bash
# Regenerates the quick bench results and diffs their deterministic fields
# against the committed references (BENCH_*.quick.json).
#
# The simulator is a pure function of its seeds, so fault counts, wait
# cycles, and space-time products must be bit-identical on every machine;
# only wall-clock fields (seconds, refs_per_sec, speedup) vary and are
# stripped before the diff.  CI runs this to catch silent behaviour drift
# that the unit suites are too narrow to see.
#
#   scripts/diff_bench.sh          # build, run --quick, diff
#   scripts/diff_bench.sh --regen  # rewrite the committed references
set -euo pipefail

cd "$(dirname "$0")/.."

strip_timing() {
  # Drops machine-dependent fields; everything left must be deterministic.
  # (strip_timing.py handles a timing key at any position in the object,
  # which the old field-order-sensitive sed pipeline did not.)
  python3 scripts/strip_timing.py "$1"
}

cmake -B build -S . > /dev/null
cmake --build build -j --target bench_throughput bench_degradation bench_overload bench_alloc bench_resume > /dev/null

mkdir -p build/bench_diff
./build/bench/bench_throughput --quick --out build/bench_diff/throughput.json > /dev/null
./build/bench/bench_degradation --quick --out build/bench_diff/degradation.json > /dev/null
./build/bench/bench_overload --quick --out build/bench_diff/overload.json > /dev/null
# bench_alloc runs 2-wide here on purpose: its committed reference was
# generated at --jobs 1, so this diff also proves the grid is byte-identical
# across sweep widths.
./build/bench/bench_alloc --quick --jobs 2 --out build/bench_diff/alloc.json > /dev/null
# bench_resume exits non-zero if a checkpointed VM fails to restore to the
# identical bytes or diverges when stepped past the restore point.
./build/bench/bench_resume --quick --out build/bench_diff/resume.json > /dev/null

if [[ "${1:-}" == "--regen" ]]; then
  strip_timing build/bench_diff/throughput.json > BENCH_throughput.quick.json
  strip_timing build/bench_diff/degradation.json > BENCH_degradation.quick.json
  strip_timing build/bench_diff/overload.json > BENCH_overload.quick.json
  strip_timing build/bench_diff/alloc.json > BENCH_alloc.quick.json
  strip_timing build/bench_diff/resume.json > BENCH_resume.quick.json
  echo "rewrote BENCH_{throughput,degradation,overload,alloc,resume}.quick.json"
  exit 0
fi

status=0
for name in throughput degradation overload alloc resume; do
  strip_timing "build/bench_diff/${name}.json" > "build/bench_diff/${name}.stripped.json"
  if ! diff -u "BENCH_${name}.quick.json" "build/bench_diff/${name}.stripped.json"; then
    echo "bench_${name}: deterministic results drifted from BENCH_${name}.quick.json" >&2
    echo "(if intentional, refresh with scripts/diff_bench.sh --regen)" >&2
    status=1
  fi
done
exit $status
