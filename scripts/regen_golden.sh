#!/usr/bin/env bash
# Regenerates the golden event captures under tests/golden/ from the run
# definitions in tests/golden_runs.h.
#
# Run this after an intentional engine-behaviour change, then review the
# JSONL diff like any other code change — the byte comparison in
# test_golden_traces is only as trustworthy as the review of what gets
# regenerated.  gen_golden refuses to write a stream the replay verifier
# rejects.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . > /dev/null
cmake --build build -j --target gen_golden
./build/tests/gen_golden tests/golden
git --no-pager diff --stat -- tests/golden || true
