#!/usr/bin/env bash
# Chaos soak harness driver: the deterministic seed matrix crossing overload
# degrees x storage-fault schedules x scheduler/load-control configurations
# (tests/test_chaos_soak.cc), plus the overload-degree bench sweep.
#
#   scripts/soak.sh           # quick matrix (CI sizing) + quick bench sweep
#   scripts/soak.sh --full    # long job traces (DSA_SOAK_FULL=1) + full sweep
#
# Every soak run's event stream is replayed through the TraceReplayVerifier
# (frame conservation, transfer pairing, deactivated jobs hold zero frames)
# and re-run from the same seeds to prove bit-identical replay, so a pass
# here is a strong end-to-end statement: no lost jobs, no lost frames, no
# nondeterminism, under every fault schedule in the matrix.
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
if [[ "${1:-}" == "--full" ]]; then
  FULL=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--full]" >&2
  exit 2
fi

cmake -B build -S . > /dev/null
cmake --build build -j --target test_chaos_soak bench_overload > /dev/null

echo "== chaos soak matrix ($([[ $FULL == 1 ]] && echo full || echo quick))"
if [[ $FULL == 1 ]]; then
  (cd build && DSA_SOAK_FULL=1 ctest --output-on-failure -L soak)
else
  (cd build && ctest --output-on-failure -L soak)
fi

echo "== overload sweep"
if [[ $FULL == 1 ]]; then
  ./build/bench/bench_overload --out build/BENCH_overload.json
else
  ./build/bench/bench_overload --quick --out build/BENCH_overload.quick.json
fi
