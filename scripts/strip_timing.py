#!/usr/bin/env python3
"""Strip machine-dependent wall-clock fields from a bench JSON file.

Usage: strip_timing.py FILE   (writes the stripped text to stdout)

The quick bench outputs are deterministic except for three timing fields
and one machine-context line: "seconds" and "refs_per_sec" are dropped,
"speedup" is nulled, and the "host" header object (core count, run mode —
written by bench/bench_meta.h) is removed whole.  Everything left must be
bit-identical on every machine, so diff_bench.sh can compare a fresh run
against the committed BENCH_*.quick.json references.

Unlike the sed pipeline this replaces, the removal does not care where in
the object the field sits: a timing key is stripped whether it is followed
by a comma ("seconds" mid-object), preceded by one ("refs_per_sec" at the
end), or stands alone.  Output is byte-identical to the old sed on the
existing reference files.
"""

import re
import sys

# Matches the numeric literals the bench writers emit (printf %g / %.3f),
# including scientific notation; "null" is accepted so re-stripping an
# already-stripped file is a no-op.
_NUM = r"(?:[0-9.eE+-]+|null)"

_DROPPED = ("seconds", "refs_per_sec", "save_seconds", "load_seconds")
_NULLED = ("speedup",)
# Header objects removed as whole lines (machine context, not results).
_DROPPED_LINES = ("host",)


def strip_timing(text: str) -> str:
    for key in _DROPPED_LINES:
        text = re.sub(rf'^[ \t]*"{key}": \{{[^\n]*\}},?\n', "", text, flags=re.MULTILINE)
    for key in _DROPPED:
        pair = f'"{key}": {_NUM}'
        # Order matters for byte-compatibility with the old sed: consume a
        # trailing comma first, then a leading one, then the bare pair.
        text = re.sub(pair + r", ", "", text)
        text = re.sub(r", " + pair, "", text)
        text = re.sub(pair, "", text)
    for key in _NULLED:
        text = re.sub(f'"{key}": {_NUM}', f'"{key}": null', text)
    return text


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} FILE", file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        sys.stdout.write(strip_timing(handle.read()))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
