#!/usr/bin/env python3
"""Strip machine-dependent wall-clock fields from a bench JSON file.

Usage: strip_timing.py [--structure] FILE   (writes to stdout)

The quick bench outputs are deterministic except for a few timing fields
and two machine-context lines: "seconds" and "refs_per_sec" are dropped,
"speedup" is nulled, and the "host" header object (core count, run mode —
written by bench/bench_meta.h) and the "contention" object (CAS-retry and
escalation telemetry from bench_concurrent — genuine thread-interleaving
measurements, nondeterministic by design) are removed whole.  Everything
left must be bit-identical on every machine, so diff_bench.sh can compare
a fresh run against the committed BENCH_*.quick.json references.

--structure reduces the file to its JSON skeleton instead: every scalar
becomes its type name and every list collapses to the structure of its
first element.  That is the right comparison for the committed FULL curves
(BENCH_parallel.json, BENCH_concurrent.json), whose values and even row
counts are machine-dependent (the lane/worker lists include the hardware
width) — the skeleton pins the schema without pinning the host.

Unlike the sed pipeline this replaces, the removal does not care where in
the object the field sits: a timing key is stripped whether it is followed
by a comma ("seconds" mid-object), preceded by one ("refs_per_sec" at the
end), or stands alone.  Output is byte-identical to the old sed on the
existing reference files.
"""

import json
import re
import sys

# Matches the numeric literals the bench writers emit (printf %g / %.3f),
# including scientific notation; "null" is accepted so re-stripping an
# already-stripped file is a no-op.
_NUM = r"(?:[0-9.eE+-]+|null)"

_DROPPED = ("seconds", "refs_per_sec", "save_seconds", "load_seconds",
            "delta_save_seconds", "delta_load_seconds")
_NULLED = ("speedup",)
# Header objects removed as whole lines (machine context or thread-contention
# telemetry, not results).
_DROPPED_LINES = ("host", "contention")


def strip_timing(text: str) -> str:
    for key in _DROPPED_LINES:
        text = re.sub(rf'^[ \t]*"{key}": \{{[^\n]*\}},?\n', "", text, flags=re.MULTILINE)
    for key in _DROPPED:
        pair = f'"{key}": {_NUM}'
        # Order matters for byte-compatibility with the old sed: consume a
        # trailing comma first, then a leading one, then the bare pair.
        text = re.sub(pair + r", ", "", text)
        text = re.sub(r", " + pair, "", text)
        text = re.sub(pair, "", text)
    for key in _NULLED:
        text = re.sub(f'"{key}": {_NUM}', f'"{key}": null', text)
    return text


def skeleton(value):
    """The structure of a JSON value: scalars -> type names, lists -> the
    structure of their first element (an empty list stays [])."""
    if isinstance(value, dict):
        return {key: skeleton(inner) for key, inner in value.items()}
    if isinstance(value, list):
        return [skeleton(value[0])] if value else []
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--structure"]
    structure = len(args) != len(argv) - 1
    if len(args) != 1:
        print(f"usage: {argv[0]} [--structure] FILE", file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as handle:
        text = handle.read()
    if structure:
        json.dump(skeleton(json.loads(text)), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(strip_timing(text))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
