#!/usr/bin/env bash
# Tier-1 verification plus quick throughput and degradation sanity runs.
#
#   scripts/check.sh              # configure, build, ctest by label, benches
#   DSA_SANITIZE=address scripts/check.sh   # same, under ASan
#
# ctest runs as seven labelled passes (unit, golden, property, soak, resume,
# faultpoint — the durable-IO fault sweep — and stress, which reruns the
# concurrent suites under --gtest_repeat with rotating seeds) so a failure
# names the class of breakage immediately;
# --no-tests=error turns a label with zero registered tests into a failure
# instead of a silent green pass.  The quick bench outputs land in
# build/ — the committed BENCH_*.json files at the repo root are full-run
# references and are only rewritten deliberately.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE_ARGS=()
if [[ -n "${DSA_SANITIZE:-}" ]]; then
  SANITIZE_ARGS+=("-DDSA_SANITIZE=${DSA_SANITIZE}")
fi

cmake -B build -S . "${SANITIZE_ARGS[@]}"
cmake --build build -j
for label in unit golden property soak resume faultpoint stress; do
  echo "== ctest -L ${label}"
  # Note -j needs an explicit count: a bare `-j` makes ctest swallow the
  # following -L flag and run the whole suite unfiltered.
  (cd build && ctest --output-on-failure --no-tests=error -j "$(nproc)" -L "${label}")
done
./build/bench/bench_throughput --quick --out build/BENCH_throughput.quick.json
./build/bench/bench_degradation --quick --out build/BENCH_degradation.quick.json
# bench_overload exits non-zero if the thrashing cliff disappears or the
# adaptive controller stops holding utilisation past it.
./build/bench/bench_overload --quick --out build/BENCH_overload.quick.json
# bench_parallel exits non-zero if any worker count perturbs the sweep
# results (the ISSUE's bit-reproducibility contract); its speedup gate only
# engages on >= 4 hardware threads and in full (non-quick) runs.
(cd build && ./bench/bench_parallel --quick)
# bench_concurrent exits non-zero if any lane width of the multi-lane
# simulator perturbs the output bytes or the shared lock-free heap leaks
# blocks; like bench_parallel, its speedup gate engages only on >= 4
# hardware threads in full runs.
(cd build && ./bench/bench_concurrent --quick)
# bench_alloc exits non-zero if segregated-fit stops beating best-fit on
# mean allocation cycles at equal-or-better external fragmentation on the
# zipf/phase traces.
./build/bench/bench_alloc --quick --out build/BENCH_alloc.quick.json
# bench_resume exits non-zero if checkpoint restore stops being
# byte-identical or the restored VM diverges when stepped onward.
./build/bench/bench_resume --quick --out build/BENCH_resume.quick.json
