#!/usr/bin/env bash
# Tier-1 verification plus quick throughput and degradation sanity runs.
#
#   scripts/check.sh              # configure, build, ctest, benches --quick
#   DSA_SANITIZE=address scripts/check.sh   # same, under ASan
#
# Works from any directory; BENCH_throughput.json and BENCH_degradation.json
# land at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE_ARGS=()
if [[ -n "${DSA_SANITIZE:-}" ]]; then
  SANITIZE_ARGS+=("-DDSA_SANITIZE=${DSA_SANITIZE}")
fi

cmake -B build -S . "${SANITIZE_ARGS[@]}"
cmake --build build -j
(cd build && ctest --output-on-failure -j)
./build/bench/bench_throughput --quick
./build/bench/bench_degradation --quick
