#!/usr/bin/env bash
# Kill-and-resume soak: proves the service mode's crash-consistency claim
# with REAL process kills, not just in-process stop points.
#
#   scripts/soak_resume.sh            # full matrix: deterministic kill
#                                     # points + randomized SIGKILLs
#   scripts/soak_resume.sh --quick    # 3 randomized kill points (CI sizing)
#   scripts/soak_resume.sh --jobs 4   # shard the randomized matrix
#
# Protocol, per kill point:
#   1. run `dsa_sim --serve` against a fixed spool and SIGKILL it (or let
#      --crash-after _Exit(137) at a deterministic commit count),
#   2. restart the same command until it exits 0 (the daemon supervisor
#      loop), re-killing at new random points along the way in full mode,
#   3. byte-compare every per-tenant report, every event JSONL, and
#      SERVICE.txt against a straight-through run that was never killed.
#
# Any surviving difference — a lost event, a doubled metric, a resumed
# replacement decision that diverged — fails the soak.  Randomized kill
# delays come from $RANDOM seeded with a fixed value, so a failure
# reproduces with the same seed.
#
# Cells rotate --lanes 1/2/4 on the killed and resumed runs while the
# reference stays serial, so the matrix also proves the concurrent service
# resumes bit-identically to the serial uninterrupted run — checkpoint
# commits are barriers, never mid-parallel-round cuts.
#
# A third cell kind injects a transient ENOSPC window (--io-fault-at) into
# the first run instead of killing it: the service must retry, degrade if
# the window outlasts the retry budget, heal, and still land byte-identical
# outputs (IO.txt/IO.events.jsonl excepted — they exist only because the
# run was disturbed, and the comparison excludes exactly those two names).
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
JOBS=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--jobs N]" >&2; exit 2 ;;
  esac
done

cmake -B build -S . > /dev/null
cmake --build build -j --target dsa_sim > /dev/null

SIM=build/examples/dsa_sim
WORK=$(mktemp -d /tmp/dsa_soak_resume.XXXXXX)
trap 'rm -rf "$WORK"' EXIT

# Fixed workload: three tenants with different localities.
mkdir -p "$WORK/spool"
"$SIM" --gen loop --dump-trace "$WORK/spool/loop.trace" > /dev/null
"$SIM" --gen zipf --dump-trace "$WORK/spool/zipf.trace" > /dev/null
"$SIM" --gen working-set --dump-trace "$WORK/spool/ws.trace" > /dev/null

SERVE_ARGS=(--serve "$WORK/spool" --checkpoint-every 50000 --drain)

echo "== soak_resume: straight-through reference"
"$SIM" "${SERVE_ARGS[@]}" --out "$WORK/ref" --checkpoint "$WORK/ref.ckpt" > /dev/null

# Runs one kill-and-resume cell in $1 (its private out/ckpt prefix); the
# remaining args are "det <commits> <lanes>" (deterministic --crash-after)
# or "rand <seed> <lanes>" (SIGKILL after a random delay).  The killed AND
# resumed runs both use <lanes> scheduler lanes; the reference is always the
# serial lanes=1 run, so every cell doubles as a concurrent-determinism
# check: a multi-lane service killed cold must resume to the exact bytes the
# serial uninterrupted service produces.
run_cell() {
  local prefix="$1" mode="$2" param="$3" lanes="${4:-1}"
  local out="$prefix.out" ckpt="$prefix.ckpt"
  rm -rf "$out" "$ckpt"

  if [[ "$mode" == det ]]; then
    # Deterministic kill: the process _Exit(137)s itself mid-loop.
    "$SIM" "${SERVE_ARGS[@]}" --lanes "$lanes" --out "$out" --checkpoint "$ckpt" \
      --crash-after "$param" > /dev/null 2>&1 && {
        echo "cell $prefix: --crash-after $param finished instead of dying" >&2
        return 1
      }
  elif [[ "$mode" == enospc ]]; then
    # Injected durable-IO fault: a transient out-of-space window opening at
    # op $param.  The run either heals in place (exit 0, degraded-then-
    # recovered) or dies in startup (no state to limp with) and is
    # restarted clean by the supervisor loop below.
    "$SIM" "${SERVE_ARGS[@]}" --lanes "$lanes" --out "$out" --checkpoint "$ckpt" \
      --io-fault-at "$param" --io-fault-len 24 --io-fault-err enospc \
      > /dev/null 2>&1 || true
  else
    # Randomized SIGKILL: let the service run for a random slice of its
    # runtime, then kill -9 the whole process.
    RANDOM=$param
    local delay_ms=$(( (RANDOM % 400) + 20 ))
    "$SIM" "${SERVE_ARGS[@]}" --lanes "$lanes" --out "$out" --checkpoint "$ckpt" > /dev/null 2>&1 &
    local pid=$!
    local waited=0
    while kill -0 "$pid" 2>/dev/null && (( waited < delay_ms )); do
      sleep 0.01
      waited=$((waited + 10))
    done
    if kill -9 "$pid" 2>/dev/null; then
      wait "$pid" 2>/dev/null || true
    else
      # The run beat the timer; that cell still checks restart-idempotence.
      wait "$pid" 2>/dev/null || true
    fi
  fi

  # Supervisor loop: restart until clean exit (bounded).
  local attempt
  for attempt in 1 2 3 4 5 6; do
    if "$SIM" "${SERVE_ARGS[@]}" --lanes "$lanes" --out "$out" --checkpoint "$ckpt" > /dev/null 2>&1; then
      break
    fi
    if (( attempt == 6 )); then
      echo "cell $prefix: never reached a clean exit" >&2
      return 1
    fi
  done

  # IO.txt / IO.events.jsonl exist exactly when a run was disturbed by
  # injected faults; everything else must match the reference bytes.
  if ! diff -r -x IO.txt -x IO.events.jsonl "$WORK/ref" "$out" > /dev/null; then
    echo "cell $prefix: output tree differs from the uninterrupted run:" >&2
    diff -r -x IO.txt -x IO.events.jsonl "$WORK/ref" "$out" >&2 || true
    return 1
  fi
  return 0
}

# Build the cell list: "mode param lanes" triples.  Lanes rotate through
# 1/2/4 so SIGKILLs land in serial rounds, mid-parallel rounds, and
# wider-than-hardware rounds alike.
CELLS=()
if [[ $QUICK == 1 ]]; then
  CELLS+=("rand 101 1" "rand 202 2" "rand 303 4" "enospc 40 2")
else
  CELLS+=("det 1 1" "det 3 2" "det 10 4" "det 40 2")
  # Injected-ENOSPC windows: one in startup (dies, restarts clean), two
  # mid-run (degrade, heal in place), across lane widths.
  CELLS+=("enospc 4 1" "enospc 40 2" "enospc 150 4")
  lanes_cycle=(1 2 4)
  n=0
  for seed in 101 202 303 404 505 606 707 808; do
    CELLS+=("rand $seed ${lanes_cycle[$((n % 3))]}")
    n=$((n + 1))
  done
fi

echo "== soak_resume: ${#CELLS[@]} kill cells (jobs=$JOBS)"
fail=0
running=0
pids=()
for i in "${!CELLS[@]}"; do
  read -r mode param lanes <<< "${CELLS[$i]}"
  run_cell "$WORK/cell$i" "$mode" "$param" "$lanes" &
  pids+=($!)
  running=$((running + 1))
  if (( running >= JOBS )); then
    wait "${pids[0]}" || fail=1
    pids=("${pids[@]:1}")
    running=$((running - 1))
  fi
done
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done

if (( fail )); then
  echo "soak_resume: FAILED — resumed runs diverged from the reference" >&2
  exit 1
fi
echo "soak_resume: OK — every kill-and-resume run is byte-identical"
